"""Linear nearest-neighbour (LNN) architecture: a line of qubits.

The LNN line is the base case of the paper's whole framework (Section 2.2):
the known linear-depth QFT mapping exists on it, and every other architecture
is handled by reducing to (or extending) the LNN solution.
"""

from __future__ import annotations

from typing import List, Tuple

from .topology import Topology

__all__ = ["LNNTopology"]


class LNNTopology(Topology):
    """A path graph ``0 - 1 - 2 - ... - (n-1)``."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError("LNN line needs at least one qubit")
        edges = [(i, i + 1) for i in range(num_qubits - 1)]
        positions = {i: (float(i), 0.0) for i in range(num_qubits)}
        super().__init__(num_qubits, edges, name=f"lnn_{num_qubits}", positions=positions)

    def line_order(self) -> List[int]:
        """Physical qubits in line order (trivially ``0..n-1``)."""

        return list(range(self.num_qubits))
