"""The architecture registry: names, synonyms, factories, labels.

Architectures are addressed the way the paper's Table 1 does -- by a kind
name and one size parameter:

* ``sycamore`` with parameter ``m``        -> ``m x m`` patch, ``N = m^2``,
* ``heavyhex`` with parameter ``groups``   -> ``5 * groups`` qubits
  (four per group on the main line, one dangling),
* ``lattice`` with parameter ``m``         -> ``m x m`` FT grid, ``N = m^2``,
* ``grid`` with parameter ``m``            -> ``m x m`` uniform-latency grid,
* ``lnn`` with parameter ``n``             -> a line of ``n`` qubits.

Every consumer (``repro.compile``, the evaluation harness, the CLI) resolves
kind spellings through this one table, so a synonym added here is
immediately legal everywhere.  New backends register with::

    @register_architecture("torus", synonyms=("donut",), label="Torus {size}")
    def _torus(size: int) -> Topology:
        return TorusTopology(size)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Tuple

from ..registry import Registry
from .grid import GridTopology
from .heavy_hex import CaterpillarTopology
from .lattice_surgery import LatticeSurgeryTopology
from .lnn import LNNTopology
from .sycamore import SycamoreTopology
from .topology import Topology

__all__ = [
    "ARCHITECTURES",
    "ArchitectureEntry",
    "register_architecture",
    "make_architecture",
    "architecture_key",
    "architecture_label",
    "architecture_names",
]


@dataclass(frozen=True)
class ArchitectureEntry:
    """One registered architecture kind."""

    name: str
    factory: Callable[[int], Topology]
    #: paper-style label template over ``{kind}`` and ``{size}``
    label: str


#: the process-wide architecture registry
ARCHITECTURES: Registry[ArchitectureEntry] = Registry("architecture kind")


def register_architecture(
    name: str, *, synonyms: Iterable[str] = (), label: str = "{kind} {size}"
) -> Callable[[Callable[[int], Topology]], Callable[[int], Topology]]:
    """Decorator registering ``factory(size) -> Topology`` under ``name``."""

    def _register(factory: Callable[[int], Topology]) -> Callable[[int], Topology]:
        ARCHITECTURES.register(
            name, ArchitectureEntry(name, factory, label), synonyms=synonyms
        )
        return factory

    return _register


def make_architecture(kind: str, size: int) -> Topology:
    """Instantiate an architecture by kind and its paper-style size parameter."""

    return ARCHITECTURES.get(kind).factory(size)


def architecture_key(kind: str, size: int) -> Tuple[str, int]:
    """Stable identity of the architecture instance ``(canonical kind, size)``.

    Synonymous kind spellings (``heavyhex`` / ``heavy-hex`` / ``caterpillar``,
    ...) map to the same key, so the parallel harness can group cells that
    share a topology and build it once per worker.  Unknown kinds get their
    lower-cased spelling as the canonical name (the factory raises later,
    per-cell).
    """

    canon = ARCHITECTURES.canonical_or_none(kind)
    return (canon if canon is not None else kind.lower(), size)


def architecture_label(kind: str, size: int) -> str:
    """Paper-style label of the instance (e.g. ``"6*6 Sycamore"``)."""

    canon = ARCHITECTURES.canonical_or_none(kind)
    template = ARCHITECTURES.get(canon).label if canon is not None else "{kind} {size}"
    return template.format(kind=kind.lower(), size=size)


def architecture_names() -> Tuple[str, ...]:
    """Canonical names of every registered architecture kind."""

    return ARCHITECTURES.names()


# ---------------------------------------------------------------------------
# Built-in backends (the paper's Table 1 set)
# ---------------------------------------------------------------------------


@register_architecture("sycamore", label="{size}*{size} Sycamore")
def _sycamore(size: int) -> Topology:
    """Google Sycamore-style diagonal grid patch (Section 2.2)."""

    return SycamoreTopology(size)


@register_architecture(
    "heavyhex", synonyms=("heavy-hex", "caterpillar"), label="Heavy-hex {size}*5"
)
def _heavyhex(size: int) -> Topology:
    """IBM heavy-hex caterpillar of ``size`` regular 5-qubit groups."""

    return CaterpillarTopology.regular_groups(size)


@register_architecture(
    "lattice",
    synonyms=("lattice-surgery", "ft"),
    label="Lattice surgery {size}*{size}",
)
def _lattice(size: int) -> Topology:
    """Fault-tolerant lattice-surgery grid of logical patches."""

    return LatticeSurgeryTopology(size)


@register_architecture("grid", label="Grid {size}*{size}")
def _grid(size: int) -> Topology:
    """Plain square nearest-neighbour grid (the SABRE comparison device)."""

    return GridTopology(size, size)


@register_architecture("lnn", synonyms=("line",), label="{kind} {size}")
def _lnn(size: int) -> Topology:
    """Linear nearest-neighbour chain (Section 2.1's 1-D baseline)."""

    return LNNTopology(size)
