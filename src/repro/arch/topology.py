"""Hardware topology (coupling graph) abstraction.

Every backend in the paper -- the LNN line, the 2-D grid, Google Sycamore,
IBM heavy-hex and the lattice-surgery FT grid -- is modelled as a
:class:`Topology`: a set of physical qubits, an undirected edge set, and a
per-edge cost model.

The cost model is what distinguishes the FT backend: on lattice surgery a
SWAP over a "fast" (green) link has latency 2 while a SWAP over a CNOT-only
link costs three CNOTs and therefore latency 6 (Section 2.3).  On NISQ
backends every op costs one cycle.  Subclasses override
:meth:`Topology.op_latency` accordingly; the ASAP scheduler in
:mod:`repro.circuit.schedule` is cost-model agnostic.

Distances are computed lazily with scipy's sparse BFS (vectorised all-pairs
shortest path), because the SABRE baseline scores candidate SWAPs against the
full distance matrix and pure-Python BFS would dominate its runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
import networkx as nx
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from ..circuit.gates import GateKind, Op
from ..utils import BoundedCache, clear_process_caches

__all__ = ["Topology", "Edge", "clear_distance_cache"]

Edge = Tuple[int, int]

# Process-wide cache of all-pairs distance matrices keyed by the coupling
# graph itself.  Evaluation sweeps (and SABRE seed sweeps in particular)
# rebuild the same Topology object for every cell; sharing the matrix across
# instances means Dijkstra runs once per distinct graph per process.  Matrices
# are marked read-only so shared instances cannot corrupt each other.  The
# cache is LRU-bounded: a paper-profile sweep touches dozens of graphs up to
# 1024 qubits (8 MB of float64 each), and an unbounded dict would pin them
# all for the life of the process.
_DIST_CACHE_MAX = 16
_DIST_CACHE: BoundedCache = BoundedCache(_DIST_CACHE_MAX)


def clear_distance_cache() -> None:
    """Drop every process-wide topology-derived cache (tests / memory
    pressure): distance matrices here, plus the SABRE routing tables and the
    evaluation harness's topology memo (all registered BoundedCaches)."""

    clear_process_caches()


def _norm_edge(a: int, b: int) -> Edge:
    return (a, b) if a < b else (b, a)


@dataclass
class Topology:
    """An undirected coupling graph over ``num_qubits`` physical qubits.

    Parameters
    ----------
    num_qubits:
        Number of physical qubits, indexed ``0..num_qubits-1``.
    edges:
        Iterable of undirected edges.
    name:
        Human-readable backend name.
    positions:
        Optional ``{qubit: (x, y)}`` coordinates used by architecture-specific
        mappers (row/column reasoning) and by plotting helpers.
    """

    num_qubits: int
    edges: Iterable[Edge]
    name: str = "topology"
    positions: Dict[int, Tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValueError("Topology needs at least one qubit")
        edge_set: Set[Edge] = set()
        for a, b in self.edges:
            if a == b:
                raise ValueError(f"self-loop edge ({a}, {b})")
            if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
                raise ValueError(f"edge ({a}, {b}) outside qubit range")
            edge_set.add(_norm_edge(a, b))
        self._edges: FrozenSet[Edge] = frozenset(edge_set)
        self._adj: List[List[int]] = [[] for _ in range(self.num_qubits)]
        for a, b in sorted(self._edges):
            self._adj[a].append(b)
            self._adj[b].append(a)
        for nbrs in self._adj:
            nbrs.sort()
        self._dist: Optional[np.ndarray] = None

    # -- graph accessors -----------------------------------------------------
    def graph_key(self) -> Tuple[int, FrozenSet[Edge]]:
        """Stable, hashable identity of the coupling graph.

        Two topology instances with the same qubit count and edge set share
        every process-wide cache keyed by this (distance matrices here, SABRE
        routing tables in :mod:`repro.baselines.sabre`) and may be grouped
        together by the evaluation harness.  The frozenset caches its hash
        after the first computation, so reusing one Topology instance across
        cells (as the topology-grouped harness does) makes repeat lookups
        O(1).
        """

        return (self.num_qubits, self._edges)

    @property
    def edge_set(self) -> FrozenSet[Edge]:
        return self._edges

    def edge_list(self) -> List[Edge]:
        return sorted(self._edges)

    def num_edges(self) -> int:
        return len(self._edges)

    def has_edge(self, a: int, b: int) -> bool:
        return _norm_edge(a, b) in self._edges

    def neighbors(self, q: int) -> List[int]:
        return list(self._adj[q])

    def degree(self, q: int) -> int:
        return len(self._adj[q])

    def to_networkx(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.num_qubits))
        g.add_edges_from(self._edges)
        return g

    def is_connected(self) -> bool:
        return nx.is_connected(self.to_networkx())

    # -- distances -------------------------------------------------------
    def distance_matrix(self) -> np.ndarray:
        """All-pairs unweighted shortest-path distances (int matrix)."""

        if self._dist is None:
            key = self.graph_key()
            dist = _DIST_CACHE.lookup(key)
            if dist is None:
                rows, cols = [], []
                for a, b in self._edges:
                    rows.extend((a, b))
                    cols.extend((b, a))
                data = np.ones(len(rows), dtype=np.int8)
                mat = csr_matrix(
                    (data, (rows, cols)), shape=(self.num_qubits, self.num_qubits)
                )
                dist = shortest_path(mat, method="D", unweighted=True, directed=False)
                dist.setflags(write=False)
                _DIST_CACHE.store(key, dist)
            self._dist = dist
        return self._dist

    def distance(self, a: int, b: int) -> int:
        return int(self.distance_matrix()[a, b])

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One shortest physical path from ``a`` to ``b`` (BFS)."""

        if a == b:
            return [a]
        prev = {a: None}
        frontier = [a]
        while frontier:
            nxt = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in prev:
                        prev[v] = u
                        if v == b:
                            path = [b]
                            while prev[path[-1]] is not None:
                                path.append(prev[path[-1]])
                            return list(reversed(path))
                        nxt.append(v)
            frontier = nxt
        raise ValueError(f"no path between {a} and {b}; topology is disconnected")

    # -- cost model --------------------------------------------------------
    def op_latency(self, op: Op) -> int:
        """Latency (in cycles) of a mapped op.  NISQ default: 1 cycle."""

        return 1

    def op_latency_array(
        self, kinds: np.ndarray, q0: np.ndarray, q1: np.ndarray
    ) -> Optional[np.ndarray]:
        """Vectorized latency of a packed op stream, or None.

        ``kinds`` holds :data:`~repro.circuit.gates.KIND_CODES` codes; ``q0``
        / ``q1`` the physical operands (``-1`` where absent).  Subclasses
        with a custom cost model override this alongside :meth:`op_latency`
        (they must agree op-for-op); a subclass that overrides only the
        scalar method gets ``None`` here, telling the vectorized metric
        extraction to fall back to the scalar path rather than silently
        using the wrong cost model.
        """

        if type(self).op_latency is not Topology.op_latency:
            return None
        return np.ones(len(kinds), dtype=np.int64)

    def swap_latency(self, a: int, b: int) -> int:
        return self.op_latency(Op(GateKind.SWAP, (a, b), (-1, -1)))

    def cphase_latency(self, a: int, b: int) -> int:
        return self.op_latency(Op(GateKind.CPHASE, (a, b), (-1, -1), 0.0))

    # -- misc ------------------------------------------------------------
    def subtopology(self, qubits: Sequence[int], name: str = "") -> "Topology":
        """Induced sub-topology on ``qubits`` with relabelled indices 0..k-1."""

        index = {q: i for i, q in enumerate(qubits)}
        edges = [
            (index[a], index[b])
            for a, b in self._edges
            if a in index and b in index
        ]
        pos = {index[q]: self.positions[q] for q in qubits if q in self.positions}
        return Topology(len(qubits), edges, name or f"{self.name}_sub", pos)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r}, qubits={self.num_qubits}, edges={self.num_edges()})"
