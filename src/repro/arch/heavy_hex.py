"""IBM heavy-hex architecture and its unrolled "caterpillar" coupling graph.

Section 4 of the paper does not map QFT onto the raw heavy-hex lattice.
Following its Appendix 1 (Fig. 20), some links of the heavy-hex device are
deleted to obtain a simplified coupling graph consisting of one long *main
line* with *dangling points* hanging off it -- a caterpillar tree.  The
mapper (:mod:`repro.core.heavy_hex_mapper`) then works on that caterpillar.

Two classes are provided:

``CaterpillarTopology``
    The simplified coupling graph itself, parameterised by the main-line
    length and the set of main-line positions that carry a dangling qubit.
    The paper's evaluation uses the regular case of one dangling point per
    group of five qubits (four on the main line, one dangling), built by
    :meth:`CaterpillarTopology.regular_groups`.

``HeavyHexTopology``
    A faithful heavy-hex lattice generator (rows of qubits connected by
    bridge qubits every four columns, with alternating offsets, as on IBM
    devices).  Its :meth:`HeavyHexTopology.to_caterpillar` performs the
    link-deletion unrolling of Appendix 1: the main line snakes through the
    row qubits using the end-column bridges, and every other bridge qubit
    becomes a dangling point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .topology import Topology

__all__ = ["CaterpillarTopology", "HeavyHexTopology"]


class CaterpillarTopology(Topology):
    """A main line of ``main_length`` qubits with dangling qubits attached.

    Physical indexing: main-line qubits are ``0 .. main_length-1`` from left
    to right; dangling qubits are ``main_length ..`` in order of their
    junction position.

    Parameters
    ----------
    main_length:
        Number of qubits on the main line.
    dangling_junctions:
        Main-line positions (strictly increasing) that each carry one dangling
        qubit.
    """

    def __init__(self, main_length: int, dangling_junctions: Sequence[int]) -> None:
        if main_length < 1:
            raise ValueError("main line needs at least one qubit")
        junctions = list(dangling_junctions)
        if junctions != sorted(set(junctions)):
            raise ValueError("dangling junctions must be strictly increasing and unique")
        for j in junctions:
            if not (0 <= j < main_length):
                raise ValueError(f"dangling junction {j} outside main line")
        self.main_length = main_length
        self.dangling_junctions: List[int] = junctions
        # physical index of the dangling qubit hanging off main position j
        self.dangling_of: Dict[int, int] = {
            j: main_length + k for k, j in enumerate(junctions)
        }
        self.junction_of: Dict[int, int] = {d: j for j, d in self.dangling_of.items()}

        edges: List[Tuple[int, int]] = [(i, i + 1) for i in range(main_length - 1)]
        positions: Dict[int, Tuple[float, float]] = {
            i: (float(i), 0.0) for i in range(main_length)
        }
        for j, d in self.dangling_of.items():
            edges.append((j, d))
            positions[d] = (float(j), -1.0)
        super().__init__(
            main_length + len(junctions),
            edges,
            name=f"caterpillar_{main_length}+{len(junctions)}",
            positions=positions,
        )

    # -- constructors --------------------------------------------------------
    @classmethod
    def regular_groups(
        cls, num_groups: int, group_size: int = 5, dangling_offset: int = 3
    ) -> "CaterpillarTopology":
        """The paper's evaluation layout: ``num_groups`` groups of
        ``group_size`` qubits, ``group_size - 1`` on the main line and one
        dangling, attached at offset ``dangling_offset`` within the group.
        """

        if num_groups < 1:
            raise ValueError("need at least one group")
        if group_size < 2:
            raise ValueError("group size must be at least 2")
        if not (0 <= dangling_offset < group_size - 1):
            raise ValueError("dangling offset must be inside the group's main segment")
        main_per_group = group_size - 1
        main_length = num_groups * main_per_group
        junctions = [g * main_per_group + dangling_offset for g in range(num_groups)]
        topo = cls(main_length, junctions)
        topo.name = f"heavyhex_caterpillar_{num_groups * group_size}"
        return topo

    # -- structure queries -----------------------------------------------
    @property
    def num_dangling(self) -> int:
        return len(self.dangling_junctions)

    def is_main(self, q: int) -> bool:
        return q < self.main_length

    def is_dangling(self, q: int) -> bool:
        return q >= self.main_length

    def main_qubits(self) -> List[int]:
        return list(range(self.main_length))

    def dangling_qubits(self) -> List[int]:
        return list(range(self.main_length, self.num_qubits))

    def serpentine_order(self) -> List[int]:
        """Physical qubits in the paper's initial-mapping order (Fig. 10).

        The order walks the main line left to right; whenever a main node has
        a dangling neighbour, the dangling qubit immediately follows it (the
        "node below has index i+1, right node has index i+2" rule).
        """

        order: List[int] = []
        for p in range(self.main_length):
            order.append(p)
            d = self.dangling_of.get(p)
            if d is not None:
                order.append(d)
        return order


class HeavyHexTopology(Topology):
    """An IBM-style heavy-hex lattice.

    The lattice consists of ``num_rows`` horizontal rows of ``row_length``
    qubits each; adjacent rows are connected through *bridge* qubits placed
    every four columns, with the column offset alternating between the right
    end (columns ``c % 4 == 2``) and the left end (``c % 4 == 0``) so that the
    boustrophedon unrolling of Appendix 1 is possible.  Choosing
    ``row_length % 4 == 3`` (as on IBM devices, e.g. 15 or 27 columns) makes
    the extreme bridges sit exactly at the row ends.
    """

    def __init__(self, num_rows: int, row_length: int) -> None:
        if num_rows < 1 or row_length < 3:
            raise ValueError("heavy-hex lattice needs >=1 rows and >=3 columns")
        self.num_rows = num_rows
        self.row_length = row_length

        edges: List[Tuple[int, int]] = []
        positions: Dict[int, Tuple[float, float]] = {}
        self._row_qubit: Dict[Tuple[int, int], int] = {}
        idx = 0
        for r in range(num_rows):
            for c in range(row_length):
                self._row_qubit[(r, c)] = idx
                positions[idx] = (float(c), -2.0 * r)
                idx += 1
        for r in range(num_rows):
            for c in range(row_length - 1):
                edges.append((self._row_qubit[(r, c)], self._row_qubit[(r, c + 1)]))

        self._bridges: List[Tuple[int, int, int]] = []  # (row boundary, column, phys)
        for r in range(num_rows - 1):
            offset = 2 if r % 2 == 0 else 0
            for c in range(offset, row_length, 4):
                phys = idx
                idx += 1
                positions[phys] = (float(c), -2.0 * r - 1.0)
                edges.append((self._row_qubit[(r, c)], phys))
                edges.append((phys, self._row_qubit[(r + 1, c)]))
                self._bridges.append((r, c, phys))

        super().__init__(idx, edges, name=f"heavyhex_{num_rows}x{row_length}", positions=positions)

    # -- structure queries -----------------------------------------------
    def row_qubit(self, r: int, c: int) -> int:
        return self._row_qubit[(r, c)]

    def bridges(self) -> List[Tuple[int, int, int]]:
        """All bridge qubits as (row boundary, column, physical index)."""

        return list(self._bridges)

    def to_caterpillar(self) -> Tuple[CaterpillarTopology, List[int]]:
        """Unroll to the simplified coupling graph of Appendix 1.

        The main line snakes through the row qubits: row 0 left-to-right, then
        through the *end-most* bridge of the row boundary down to row 1,
        row 1 right-to-left, and so on.  Bridge qubits not used for turning
        become dangling points attached to the row *above* them (the link to
        the row below is "deleted").

        Returns ``(caterpillar, phys_map)`` where ``phys_map[i]`` is the
        heavy-hex physical qubit corresponding to caterpillar qubit ``i``.
        """

        main_hh: List[int] = []
        dangling_after: Dict[int, int] = {}  # main position -> heavy-hex bridge qubit

        bridges_by_boundary: Dict[int, List[Tuple[int, int]]] = {}
        for r, c, phys in self._bridges:
            bridges_by_boundary.setdefault(r, []).append((c, phys))
        for r in bridges_by_boundary:
            bridges_by_boundary[r].sort()

        for r in range(self.num_rows):
            left_to_right = r % 2 == 0
            cols = range(self.row_length) if left_to_right else range(self.row_length - 1, -1, -1)
            boundary = bridges_by_boundary.get(r, [])
            # Bridge used to turn into the next row: the one closest to the end
            # we finish the row at.
            turn_col: Optional[int] = None
            if r < self.num_rows - 1 and boundary:
                turn_col = boundary[-1][0] if left_to_right else boundary[0][0]
            dangling_cols = {c: phys for c, phys in boundary if c != turn_col}
            # dangling bridges of the boundary *above* attach to this row only
            # through their upper-row edge, which we keep; nothing to do here.
            for c in cols:
                main_hh.append(self._row_qubit[(r, c)])
                pos = len(main_hh) - 1
                if c in dangling_cols:
                    dangling_after[pos] = dangling_cols[c]
            if turn_col is not None:
                turn_phys = dict(boundary)[turn_col]
                main_hh.append(turn_phys)

        # The unrolling is only a subgraph of the device if consecutive main
        # line entries are genuinely coupled (requires the end-column bridges,
        # i.e. row_length % 4 == 3 with the alternating offsets used here).
        for a, b in zip(main_hh, main_hh[1:]):
            if not self.has_edge(a, b):
                raise ValueError(
                    "cannot unroll this heavy-hex lattice into a caterpillar: "
                    f"main-line qubits {a} and {b} are not coupled "
                    "(use row_length % 4 == 3, e.g. 15 or 27 columns)"
                )

        junction_positions = sorted(dangling_after)
        caterpillar = CaterpillarTopology(len(main_hh), junction_positions)
        caterpillar.name = f"{self.name}_unrolled"
        phys_map: List[int] = list(main_hh)
        for j in junction_positions:
            phys_map.append(dangling_after[j])
        return caterpillar, phys_map
