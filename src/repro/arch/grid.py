"""Regular 2-D grid architectures.

Two shapes are used by the paper:

* the general ``rows x cols`` grid (Appendix 7 synthesises inter-unit
  schedules for it, and it is a useful uniform-latency stand-in for the FT
  grid in ablations), and
* the special ``2 x N`` grid of Zhang et al. [43], whose QFT pattern is reused
  inside the lattice-surgery mapper (Section 6).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .topology import Topology

__all__ = ["GridTopology", "TwoRowTopology"]


class GridTopology(Topology):
    """A ``rows x cols`` grid with horizontal and vertical nearest-neighbour links.

    Physical qubit index of cell ``(r, c)`` is ``r * cols + c``.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("grid needs positive dimensions")
        self.rows = rows
        self.cols = cols
        edges: List[Tuple[int, int]] = []
        positions: Dict[int, Tuple[float, float]] = {}
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                positions[q] = (float(c), float(-r))
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        super().__init__(rows * cols, edges, name=f"grid_{rows}x{cols}", positions=positions)

    # -- coordinate helpers --------------------------------------------------
    def index(self, r: int, c: int) -> int:
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValueError(f"cell ({r}, {c}) outside {self.rows}x{self.cols} grid")
        return r * self.cols + c

    def coords(self, q: int) -> Tuple[int, int]:
        if not (0 <= q < self.num_qubits):
            raise ValueError(f"qubit {q} outside grid")
        return divmod(q, self.cols)

    def row_qubits(self, r: int) -> List[int]:
        return [self.index(r, c) for c in range(self.cols)]

    def col_qubits(self, c: int) -> List[int]:
        return [self.index(r, c) for r in range(self.rows)]

    def serpentine_order(self) -> List[int]:
        """Hamiltonian path visiting rows in a boustrophedon (snake) order."""

        order: List[int] = []
        for r in range(self.rows):
            cs = range(self.cols) if r % 2 == 0 else range(self.cols - 1, -1, -1)
            order.extend(self.index(r, c) for c in cs)
        return order


class TwoRowTopology(GridTopology):
    """The ``2 x N`` grid of Zhang et al. [43]."""

    def __init__(self, cols: int) -> None:
        super().__init__(2, cols)
        self.name = f"two_row_{cols}"
