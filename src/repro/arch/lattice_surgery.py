"""Surface-code lattice-surgery FT backend (Section 2.3 / Section 6).

In the lattice-surgery mode logical data qubits tile a 2-D grid, interleaved
with ancilla tiles.  After the rotation/stretching of Fig. 15 the data qubits
form an ``m x m`` grid whose links have *heterogeneous* costs:

* **fast links** (green in Fig. 5) -- the former diagonal ancilla-mediated
  links, drawn horizontally after the rotation.  A SWAP over a fast link uses
  two ancillae at once and has depth 2.
* **CNOT links** (black) -- the former horizontal/vertical links, drawn
  vertically after the rotation.  Only CNOTs are native; a SWAP costs three
  CNOTs and therefore depth 6.  A CNOT (and hence a CPHASE, which the cost
  model charges like a CNOT) has depth 2 on *any* link.

``LatticeSurgeryTopology`` encodes this cost model via ``op_latency`` so the
generic ASAP scheduler produces the weighted depth the paper reports.
No existing SWAP-insertion tool models the heterogeneity (the paper lets
SABRE/SATMAP use all links at uniform cost, which *favours* the baselines);
our evaluation harness reproduces that choice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuit.gates import KIND_CODES, GateKind, Op
from .topology import Topology

__all__ = ["LatticeSurgeryTopology"]


class LatticeSurgeryTopology(Topology):
    """An ``m x m`` lattice-surgery data-qubit grid with heterogeneous links.

    Physical qubit index of cell ``(r, c)`` is ``r * m + c``.  Rows are the
    *units* of Section 6; horizontal links (within a row) are fast SWAP links,
    vertical links (between rows) are CNOT-only links.
    """

    #: depth of a SWAP over a fast (green / intra-row) link
    FAST_SWAP_LATENCY = 2
    #: depth of a SWAP over a CNOT-only (vertical) link: 3 CNOTs x depth 2
    SLOW_SWAP_LATENCY = 6
    #: depth of a CNOT / CPHASE over any link
    CNOT_LATENCY = 2
    #: depth of a transversal single-qubit gate
    SINGLE_QUBIT_LATENCY = 1

    def __init__(self, m: int, rows: int | None = None) -> None:
        cols = m
        rows = m if rows is None else rows
        if rows < 1 or cols < 1:
            raise ValueError("lattice surgery grid needs positive dimensions")
        self.rows = rows
        self.cols = cols
        edges: List[Tuple[int, int]] = []
        positions: Dict[int, Tuple[float, float]] = {}
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                positions[q] = (float(c), float(-r))
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        super().__init__(
            rows * cols, edges, name=f"lattice_surgery_{rows}x{cols}", positions=positions
        )

    # -- coordinates --------------------------------------------------------
    def index(self, r: int, c: int) -> int:
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValueError(f"cell ({r}, {c}) outside {self.rows}x{self.cols} grid")
        return r * self.cols + c

    def coords(self, q: int) -> Tuple[int, int]:
        return divmod(q, self.cols)

    def row_qubits(self, r: int) -> List[int]:
        return [self.index(r, c) for c in range(self.cols)]

    def is_fast_link(self, a: int, b: int) -> bool:
        """True if (a, b) is a fast (intra-row) SWAP link."""

        if not self.has_edge(a, b):
            raise ValueError(f"({a}, {b}) is not a link")
        ra, _ = self.coords(a)
        rb, _ = self.coords(b)
        return ra == rb

    def serpentine_order(self) -> List[int]:
        """A Hamiltonian path (snake through rows); used by the LNN baseline."""

        order: List[int] = []
        for r in range(self.rows):
            cs = range(self.cols) if r % 2 == 0 else range(self.cols - 1, -1, -1)
            order.extend(self.index(r, c) for c in cs)
        return order

    # -- unit structure (Section 6) ------------------------------------------
    @property
    def num_units(self) -> int:
        return self.rows

    @property
    def unit_size(self) -> int:
        return self.cols

    def unit_line(self, u: int) -> List[int]:
        """Unit ``u`` is simply row ``u`` (a line over fast links)."""

        return self.row_qubits(u)

    # -- cost model --------------------------------------------------------
    def op_latency(self, op: Op) -> int:
        if op.kind in (GateKind.H, GateKind.RZ):
            return self.SINGLE_QUBIT_LATENCY
        if op.kind == GateKind.BARRIER:
            return 0
        a, b = op.physical
        if op.kind == GateKind.SWAP:
            return self.FAST_SWAP_LATENCY if self.is_fast_link(a, b) else self.SLOW_SWAP_LATENCY
        # CNOT / CPHASE cost the same on every link
        return self.CNOT_LATENCY

    def op_latency_array(
        self, kinds: np.ndarray, q0: np.ndarray, q1: np.ndarray
    ) -> Optional[np.ndarray]:
        """Vectorized :meth:`op_latency` over a packed op stream.

        Fast-link detection reduces to a same-row test (intra-row links are
        the fast ones), which vectorizes as an integer division; the op
        stream is adjacency-checked by the builder, so every SWAP pair here
        is a real link.
        """

        lat = np.full(len(kinds), self.CNOT_LATENCY, dtype=np.int64)
        single = (kinds == KIND_CODES[GateKind.H]) | (kinds == KIND_CODES[GateKind.RZ])
        lat[single] = self.SINGLE_QUBIT_LATENCY
        lat[kinds == KIND_CODES[GateKind.BARRIER]] = 0
        swap = kinds == KIND_CODES[GateKind.SWAP]
        if swap.any():
            fast = swap & ((q0 // self.cols) == (q1 // self.cols))
            lat[fast] = self.FAST_SWAP_LATENCY
            lat[swap & ~fast] = self.SLOW_SWAP_LATENCY
        return lat
