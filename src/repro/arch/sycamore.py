"""Google-Sycamore-like architecture (Section 5, Fig. 12).

Sycamore couples qubits on a diagonal lattice of degree <= 4.  The paper does
not use the raw edge list directly; it relies on three structural properties
of an ``m x m`` Sycamore patch (m even):

1. every *unit* of two consecutive rows contains a Hamiltonian line through
   its ``2m`` qubits (the zigzag of Fig. 12),
2. two adjacent units can exchange all their qubits with three layers of
   transversal SWAPs ("unit SWAP"),
3. between two adjacent units there are links connecting qubits whose column
   indices differ by one, which is what the synced inter-unit travel pattern
   (Fig. 13) exploits.

``SycamoreTopology`` models exactly these properties: between every pair of
adjacent rows it places the vertical (same-column) links plus one diagonal
link per column, with the diagonal direction chosen so that each unit's two
rows form the zigzag line.  The resulting degree is at most 4, as on the real
device.  (DESIGN.md, "Substitutions", records this modelling choice.)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .topology import Topology

__all__ = ["SycamoreTopology"]


class SycamoreTopology(Topology):
    """An ``m x m`` Sycamore-style patch; ``m`` must be even and >= 2.

    Physical qubit index of cell ``(r, c)`` is ``r * m + c``.
    Unit ``u`` consists of rows ``2u`` and ``2u + 1``.
    """

    def __init__(self, m: int) -> None:
        if m < 2 or m % 2 != 0:
            raise ValueError("Sycamore patch size m must be an even number >= 2")
        self.m = m
        edges: List[Tuple[int, int]] = []
        positions: Dict[int, Tuple[float, float]] = {}

        def idx(r: int, c: int) -> int:
            return r * m + c

        for r in range(m):
            for c in range(m):
                q = idx(r, c)
                # Stagger odd rows by half a cell to hint at the diagonal lattice.
                positions[q] = (c + (0.5 if r % 2 else 0.0), float(-r))
        for r in range(m - 1):
            for c in range(m):
                # Vertical (same-column) link between adjacent rows.
                edges.append((idx(r, c), idx(r + 1, c)))
                # One diagonal link per column pair.  Within a unit (r even)
                # the diagonal goes from the bottom row col c to the top row
                # col c+1, completing the intra-unit zigzag line; across units
                # (r odd) it provides the "column index differs by one" links
                # used by the inter-unit interaction pattern.
                if c + 1 < m:
                    if r % 2 == 0:
                        edges.append((idx(r + 1, c), idx(r, c + 1)))
                    else:
                        edges.append((idx(r, c), idx(r + 1, c + 1)))
        super().__init__(m * m, edges, name=f"sycamore_{m}x{m}", positions=positions)

    # -- coordinates -------------------------------------------------------
    def index(self, r: int, c: int) -> int:
        if not (0 <= r < self.m and 0 <= c < self.m):
            raise ValueError(f"cell ({r}, {c}) outside {self.m}x{self.m} Sycamore patch")
        return r * self.m + c

    def coords(self, q: int) -> Tuple[int, int]:
        return divmod(q, self.m)

    # -- unit structure (Section 5) -----------------------------------------
    @property
    def num_units(self) -> int:
        return self.m // 2

    @property
    def unit_size(self) -> int:
        """Number of qubits per unit (= 2m)."""

        return 2 * self.m

    def unit_rows(self, u: int) -> Tuple[int, int]:
        if not (0 <= u < self.num_units):
            raise ValueError(f"unit {u} outside range")
        return 2 * u, 2 * u + 1

    def unit_line(self, u: int) -> List[int]:
        """The Hamiltonian line through unit ``u`` (zigzag of Fig. 12).

        Order: (top, c0), (bottom, c0), (top, c1), (bottom, c1), ...  Adjacent
        entries are guaranteed to be coupled (vertical then diagonal links).
        """

        top, bottom = self.unit_rows(u)
        line: List[int] = []
        for c in range(self.m):
            line.append(self.index(top, c))
            line.append(self.index(bottom, c))
        return line

    def unit_of(self, q: int) -> int:
        r, _ = self.coords(q)
        return r // 2

    def inter_unit_links(self, u: int) -> List[Tuple[int, int]]:
        """Links between unit ``u``'s bottom row and unit ``u+1``'s top row."""

        if not (0 <= u < self.num_units - 1):
            raise ValueError(f"no unit pair ({u}, {u + 1})")
        _, bottom = self.unit_rows(u)
        top_next, _ = self.unit_rows(u + 1)
        links = []
        for c in range(self.m):
            a = self.index(bottom, c)
            b = self.index(top_next, c)
            if self.has_edge(a, b):
                links.append((a, b))
            if c + 1 < self.m:
                b2 = self.index(top_next, c + 1)
                if self.has_edge(a, b2):
                    links.append((a, b2))
        return links
