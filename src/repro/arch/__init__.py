"""Hardware architectures (coupling graphs and cost models)."""

from .topology import Topology
from .lnn import LNNTopology
from .grid import GridTopology, TwoRowTopology
from .sycamore import SycamoreTopology
from .heavy_hex import CaterpillarTopology, HeavyHexTopology
from .lattice_surgery import LatticeSurgeryTopology

__all__ = [
    "Topology",
    "LNNTopology",
    "GridTopology",
    "TwoRowTopology",
    "SycamoreTopology",
    "CaterpillarTopology",
    "HeavyHexTopology",
    "LatticeSurgeryTopology",
]
