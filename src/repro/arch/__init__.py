"""Hardware architectures (coupling graphs and cost models)."""

from .topology import Topology, clear_distance_cache
from .lnn import LNNTopology
from .grid import GridTopology, TwoRowTopology
from .sycamore import SycamoreTopology
from .heavy_hex import CaterpillarTopology, HeavyHexTopology
from .lattice_surgery import LatticeSurgeryTopology
from .registry import (
    ARCHITECTURES,
    ArchitectureEntry,
    architecture_key,
    architecture_label,
    architecture_names,
    make_architecture,
    register_architecture,
)

__all__ = [
    "Topology",
    "clear_distance_cache",
    "LNNTopology",
    "GridTopology",
    "TwoRowTopology",
    "SycamoreTopology",
    "CaterpillarTopology",
    "HeavyHexTopology",
    "LatticeSurgeryTopology",
    "ARCHITECTURES",
    "ArchitectureEntry",
    "architecture_key",
    "architecture_label",
    "architecture_names",
    "make_architecture",
    "register_architecture",
]
