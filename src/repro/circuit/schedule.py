"""Mapped (hardware) circuits and their scheduling/metric model.

A mapper's output is a :class:`MappedCircuit`: an ordered stream of
:class:`~repro.circuit.gates.Op` objects over *physical* qubits, together with
the initial logical->physical layout.  The stream order is a valid execution
order (a topological order of the hardware dependences); parallelism is
recovered by ASAP scheduling.

Depth model
-----------
The paper measures circuit *depth* in cycles.  On NISQ backends every gate
(H, CPHASE, SWAP) costs one cycle.  On the lattice-surgery FT backend gate
latencies are heterogeneous (Section 2.3): a SWAP on a "fast" (green) link has
depth 2, a SWAP on a CNOT-only link costs 3 CNOTs = depth 6, and a CNOT/CPHASE
costs depth 2 on any link.  The latency of each op is supplied by the
topology's ``op_latency`` method, so the same ASAP scheduler produces both the
uniform NISQ depth and the weighted FT depth.

:class:`MappingBuilder` is the convenience layer used by every mapper: it
tracks the logical<->physical correspondence as SWAPs are emitted and stamps
each op with the logical qubits involved, which is what makes verification
(and logical replay on a statevector) straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .gates import GateKind, Op, count_kinds

__all__ = ["MappedCircuit", "MappingBuilder", "asap_layers", "asap_depth"]


def asap_depth(ops: Sequence[Op], latency_fn) -> int:
    """Weighted ASAP depth of an op stream.

    ``latency_fn(op) -> int`` supplies per-op latency.  Each op starts at the
    max busy-time of its qubits and occupies them for its latency; the depth is
    the max finish time over all qubits.
    """

    busy: Dict[int, int] = {}
    fence = 0
    depth = 0
    for op in ops:
        if op.kind == GateKind.BARRIER:
            # A barrier is a global fence: nothing after it may start before
            # everything before it has finished.
            if busy:
                fence = max(fence, max(busy.values()))
            continue
        start = max((busy.get(q, fence) for q in op.physical), default=fence)
        start = max(start, fence)
        end = start + latency_fn(op)
        for q in op.physical:
            busy[q] = end
        if end > depth:
            depth = end
    return depth


def asap_layers(ops: Sequence[Op]) -> List[List[Op]]:
    """Unit-latency ASAP layering (each layer holds qubit-disjoint ops)."""

    busy: Dict[int, int] = {}
    fence = 0
    layers: List[List[Op]] = []
    for op in ops:
        if op.kind == GateKind.BARRIER:
            if busy:
                fence = max(fence, max(busy.values()))
            continue
        start = max((busy.get(q, fence) for q in op.physical), default=fence)
        start = max(start, fence)
        while len(layers) <= start:
            layers.append([])
        layers[start].append(op)
        for q in op.physical:
            busy[q] = start + 1
    return layers


@dataclass
class MappedCircuit:
    """A hardware-compliant circuit produced by a mapper.

    Attributes
    ----------
    topology:
        The :class:`repro.arch.topology.Topology` the circuit targets.
    num_logical:
        Number of logical (program) qubits.
    initial_layout:
        ``initial_layout[logical] = physical`` placement before the first gate.
    ops:
        Ordered op stream (a valid sequential execution order).
    name:
        Optional provenance string (mapper name).
    metadata:
        Free-form dict for mapper-specific extras (e.g. fallback statistics).
    """

    topology: object
    num_logical: int
    initial_layout: List[int]
    ops: List[Op] = field(default_factory=list)
    name: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- basic counters ------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def gate_counts(self) -> Dict[str, int]:
        return count_kinds(self.ops)

    def swap_count(self) -> int:
        return sum(1 for op in self.ops if op.kind == GateKind.SWAP)

    def cphase_count(self) -> int:
        return sum(1 for op in self.ops if op.kind == GateKind.CPHASE)

    def two_qubit_count(self) -> int:
        return sum(1 for op in self.ops if op.is_two_qubit)

    # -- depth ----------------------------------------------------------
    def depth(self) -> int:
        """Latency-weighted depth using the topology's cost model."""

        return asap_depth(self.ops, self.topology.op_latency)

    def unit_depth(self) -> int:
        """Depth with every op costing one cycle (NISQ-style counting)."""

        return asap_depth(self.ops, lambda op: 1)

    def layers(self) -> List[List[Op]]:
        return asap_layers(self.ops)

    # -- layouts ----------------------------------------------------------
    def final_layout(self) -> List[int]:
        """Logical->physical layout after all SWAPs have been applied."""

        layout = list(self.initial_layout)
        phys_to_log = {p: l for l, p in enumerate(layout)}
        for op in self.ops:
            if op.kind != GateKind.SWAP:
                continue
            a, b = op.physical
            la = phys_to_log.get(a)
            lb = phys_to_log.get(b)
            phys_to_log[a], phys_to_log[b] = lb, la
            if lb is not None:
                layout[lb] = a
            if la is not None:
                layout[la] = b
        return layout

    def logical_events(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """Project the op stream onto logical qubits for verification.

        SWAPs vanish (they are identity on the logical state up to relabelling
        which the builder already folded into ``logical`` stamps); every other
        op is reported with its logical operands, in execution order.
        """

        events: List[Tuple[str, Tuple[int, ...]]] = []
        for op in self.ops:
            if op.kind in (GateKind.SWAP, GateKind.BARRIER):
                continue
            events.append((op.kind, op.logical))
        return events

    def logical_gate_events(self) -> List[Tuple[str, Tuple[int, ...], Optional[float]]]:
        """Like :meth:`logical_events` but including the gate angle.

        This is the form consumed by the statevector simulator when replaying
        a mapped circuit on the logical state.
        """

        events: List[Tuple[str, Tuple[int, ...], Optional[float]]] = []
        for op in self.ops:
            if op.kind in (GateKind.SWAP, GateKind.BARRIER):
                continue
            events.append((op.kind, op.logical, op.angle))
        return events

    def swaps_by_tag(self) -> Dict[str, int]:
        """SWAP count grouped by the provenance tag (used by ablations)."""

        out: Dict[str, int] = {}
        for op in self.ops:
            if op.kind == GateKind.SWAP:
                out[op.tag] = out.get(op.tag, 0) + 1
        return out

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MappedCircuit(name={self.name!r}, n={self.num_logical}, "
            f"ops={len(self.ops)}, swaps={self.swap_count()})"
        )


class MappingBuilder:
    """Helper that mappers use to emit ops while tracking the layout.

    The builder maintains the bijection between logical qubits and the
    physical qubits they currently occupy.  Ops are emitted against *physical*
    indices; the builder stamps the resident logical qubits automatically and
    validates coupling-graph adjacency for two-qubit ops as they are emitted,
    so a buggy mapper fails fast instead of producing an invalid circuit.
    """

    def __init__(
        self,
        topology,
        initial_layout: Sequence[int],
        num_logical: Optional[int] = None,
        name: str = "",
        check_adjacency: bool = True,
    ) -> None:
        self.topology = topology
        self.num_logical = num_logical if num_logical is not None else len(initial_layout)
        if len(set(initial_layout)) != len(initial_layout):
            raise ValueError("initial layout maps two logical qubits to one physical qubit")
        for p in initial_layout:
            if not (0 <= p < topology.num_qubits):
                raise ValueError(f"initial layout uses physical qubit {p} outside topology")
        self.log_to_phys: List[int] = list(initial_layout)
        self.phys_to_log: Dict[int, int] = {p: l for l, p in enumerate(initial_layout)}
        self.initial_layout: List[int] = list(initial_layout)
        self.ops: List[Op] = []
        self.name = name
        self.check_adjacency = check_adjacency

    # -- queries -----------------------------------------------------------
    def logical_at(self, phys: int) -> Optional[int]:
        """Logical qubit currently at physical position ``phys`` (or None)."""

        return self.phys_to_log.get(phys)

    def phys_of(self, logical: int) -> int:
        """Physical position currently holding logical qubit ``logical``."""

        return self.log_to_phys[logical]

    def are_adjacent(self, phys_a: int, phys_b: int) -> bool:
        return self.topology.has_edge(phys_a, phys_b)

    # -- emission ------------------------------------------------------
    def _logical_pair(self, phys_a: int, phys_b: int) -> Tuple[int, int]:
        la = self.phys_to_log.get(phys_a, -1)
        lb = self.phys_to_log.get(phys_b, -1)
        return la, lb

    def _check_edge(self, phys_a: int, phys_b: int, kind: str) -> None:
        if self.check_adjacency and not self.topology.has_edge(phys_a, phys_b):
            raise ValueError(
                f"{kind} emitted on non-adjacent physical qubits ({phys_a}, {phys_b})"
            )

    def h(self, phys: int, tag: str = "") -> Op:
        logical = self.phys_to_log.get(phys, -1)
        op = Op(GateKind.H, (phys,), (logical,), tag=tag)
        self.ops.append(op)
        return op

    def rz(self, phys: int, angle: float, tag: str = "") -> Op:
        logical = self.phys_to_log.get(phys, -1)
        op = Op(GateKind.RZ, (phys,), (logical,), angle, tag=tag)
        self.ops.append(op)
        return op

    def cphase(self, phys_a: int, phys_b: int, angle: float, tag: str = "") -> Op:
        self._check_edge(phys_a, phys_b, "CPHASE")
        la, lb = self._logical_pair(phys_a, phys_b)
        op = Op(GateKind.CPHASE, (phys_a, phys_b), (la, lb), angle, tag=tag)
        self.ops.append(op)
        return op

    def cnot(self, phys_c: int, phys_t: int, tag: str = "") -> Op:
        self._check_edge(phys_c, phys_t, "CNOT")
        lc, lt = self._logical_pair(phys_c, phys_t)
        op = Op(GateKind.CNOT, (phys_c, phys_t), (lc, lt), tag=tag)
        self.ops.append(op)
        return op

    def swap(self, phys_a: int, phys_b: int, tag: str = "") -> Op:
        self._check_edge(phys_a, phys_b, "SWAP")
        la, lb = self._logical_pair(phys_a, phys_b)
        op = Op(GateKind.SWAP, (phys_a, phys_b), (la, lb), tag=tag)
        self.ops.append(op)
        # update tracking
        if la != -1:
            self.log_to_phys[la] = phys_b
        if lb != -1:
            self.log_to_phys[lb] = phys_a
        if la != -1:
            self.phys_to_log[phys_b] = la
        elif phys_b in self.phys_to_log:
            del self.phys_to_log[phys_b]
        if lb != -1:
            self.phys_to_log[phys_a] = lb
        elif phys_a in self.phys_to_log:
            del self.phys_to_log[phys_a]
        return op

    def barrier(self) -> Op:
        op = Op(GateKind.BARRIER, (), ())
        self.ops.append(op)
        return op

    # -- finish ----------------------------------------------------------
    def build(self, metadata: Optional[Dict[str, object]] = None) -> MappedCircuit:
        return MappedCircuit(
            topology=self.topology,
            num_logical=self.num_logical,
            initial_layout=self.initial_layout,
            ops=self.ops,
            name=self.name,
            metadata=metadata or {},
        )
