"""Dependence analysis for QFT-like circuits (Section 3.1).

The paper distinguishes two dependence types between gates of the QFT kernel,
writing ``G(t, c)`` for a CPHASE with target ``t`` and control ``c`` and
modelling the Hadamard on ``q`` as the degenerate gate ``G(q, q)``:

* **Type I** (relaxable): two gates sharing the same control (or the same
  target) are ordered by their other operand.  Because CPHASE gates are
  diagonal they commute, so this ordering is an artefact of the textbook
  circuit and can be dropped.
* **Type II** (essential): if one gate's control is another gate's target the
  former must precede the latter.  The Hadamard between them does not commute
  with CPHASE, so this ordering is real.

For the QFT kernel the Type II relation boils down to a very compact partial
order which every mapper and the verifier use directly::

    H(i)  <  CPHASE(i, j)  <  H(j)        for all i < j

This module provides

* :class:`DependenceRules` -- predicates deciding whether two gates must be
  ordered under strict (Type I + II) or relaxed (Type II only) semantics,
* :func:`build_dag` -- a generic commutation-aware DAG builder for arbitrary
  circuits (used by SABRE and the SATMAP substitute),
* :func:`qft_type2_order_ok` -- a fast specialised checker for QFT gate
  sequences used heavily by the verifier,
* :func:`front_layers` -- ASAP layering of a DAG (logical depth under a given
  commutation semantics).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .circuit import Circuit
from .gates import Gate, GateKind

__all__ = [
    "DependenceRules",
    "build_dag",
    "front_layers",
    "dag_depth",
    "qft_type2_order_ok",
    "qft_type1_order_ok",
    "gates_commute",
]


def _is_diagonal(gate: Gate) -> bool:
    """CPHASE and RZ are diagonal in the computational basis."""

    return gate.kind in (GateKind.CPHASE, GateKind.RZ)


def gates_commute(a: Gate, b: Gate) -> bool:
    """Return ``True`` if gates ``a`` and ``b`` commute.

    The rules are conservative but sufficient for the QFT kernel and the
    baseline compilers:

    * gates on disjoint qubits always commute,
    * two diagonal gates (CPHASE/RZ) always commute, even when they share
      qubits -- this is the property the paper exploits (Insight 1),
    * two SWAPs on identical qubit pairs commute,
    * everything else sharing a qubit is assumed not to commute.
    """

    if not set(a.qubits) & set(b.qubits):
        return True
    if _is_diagonal(a) and _is_diagonal(b):
        return True
    if a.kind == GateKind.SWAP and b.kind == GateKind.SWAP and set(a.qubits) == set(b.qubits):
        return True
    return False


@dataclass(frozen=True)
class DependenceRules:
    """Select strict (textbook) or relaxed (commutation-aware) dependences.

    ``relaxed=True`` keeps only orderings between non-commuting gates
    (Type II for QFT); ``relaxed=False`` additionally keeps the program order
    between any two gates sharing a qubit (Type I + Type II).
    """

    relaxed: bool = True

    def must_order(self, earlier: Gate, later: Gate) -> bool:
        """True if ``earlier`` (appearing first in program order) must stay
        before ``later``."""

        if not set(earlier.qubits) & set(later.qubits):
            return False
        if not self.relaxed:
            return True
        return not gates_commute(earlier, later)


def build_dag(circuit: Circuit, rules: Optional[DependenceRules] = None) -> nx.DiGraph:
    """Build the dependence DAG of ``circuit`` under ``rules``.

    Nodes are gate indices (position in ``circuit.gates``) with a ``gate``
    attribute.  Edges are transitively-reduced "must come before" relations:
    for each gate we only link to the *most recent* conflicting gate per
    qubit-interaction chain, which keeps the DAG size linear-ish in practice.
    """

    rules = rules or DependenceRules(relaxed=True)
    dag = nx.DiGraph()
    # last_writers[q] = list of gate indices that touched qubit q and have not
    # been "shadowed" by a later non-commuting gate on q.
    last_on_qubit: Dict[int, List[int]] = defaultdict(list)

    for idx, gate in enumerate(circuit.gates):
        dag.add_node(idx, gate=gate)
        preds: Set[int] = set()
        for q in gate.qubits:
            chain = last_on_qubit[q]
            # Walk the chain backwards; the first non-commuting gate is a
            # predecessor and shadows everything before it on this qubit.
            kept: List[int] = []
            blocked = False
            for prev_idx in reversed(chain):
                prev_gate = circuit.gates[prev_idx]
                if rules.must_order(prev_gate, gate):
                    preds.add(prev_idx)
                    blocked = True
                    break
                kept.append(prev_idx)
            if blocked:
                # keep only the blocking gate and the commuting gates after it
                cut = chain.index(prev_idx)
                last_on_qubit[q] = chain[cut:] + [idx]
            else:
                last_on_qubit[q] = chain + [idx]
        for p in preds:
            dag.add_edge(p, idx)
    return dag


def front_layers(dag: nx.DiGraph) -> List[List[int]]:
    """ASAP layering of a dependence DAG (Kahn's algorithm by levels)."""

    indeg = {n: dag.in_degree(n) for n in dag.nodes}
    ready = deque(sorted(n for n, d in indeg.items() if d == 0))
    layers: List[List[int]] = []
    while ready:
        layer = list(ready)
        ready.clear()
        layers.append(layer)
        next_ready = []
        for n in layer:
            for succ in dag.successors(n):
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    next_ready.append(succ)
        ready.extend(sorted(next_ready))
    total = sum(len(layer) for layer in layers)
    if total != dag.number_of_nodes():
        raise ValueError("dependence graph contains a cycle")
    return layers


def dag_depth(circuit: Circuit, rules: Optional[DependenceRules] = None) -> int:
    """Logical depth of ``circuit`` under the given commutation semantics."""

    dag = build_dag(circuit, rules)
    if dag.number_of_nodes() == 0:
        return 0
    return len(front_layers(dag))


# ---------------------------------------------------------------------------
# Fast QFT-specific order checkers (used by the verifier on large instances)
# ---------------------------------------------------------------------------


def qft_type2_order_ok(
    n: int, events: Sequence[Tuple[str, Tuple[int, ...]]]
) -> Tuple[bool, str]:
    """Check the relaxed (Type II) QFT ordering over an event sequence.

    ``events`` is a list of ``("h", (i,))`` and ``("cphase", (i, j))`` tuples
    given in execution order (events in the same parallel layer may appear in
    any order because dependent gates always share a qubit and therefore can
    never share a layer).

    Returns ``(ok, message)``; ``message`` names the first violation.
    """

    h_done = [False] * n
    for pos, (kind, qubits) in enumerate(events):
        if kind == "h":
            (q,) = qubits
            h_done[q] = True
        elif kind == "cphase":
            a, b = qubits
            lo, hi = (a, b) if a < b else (b, a)
            if not h_done[lo]:
                return False, f"event {pos}: CPHASE({lo},{hi}) before H({lo})"
            if h_done[hi]:
                return False, f"event {pos}: CPHASE({lo},{hi}) after H({hi})"
        else:
            raise ValueError(f"unknown event kind {kind!r}")
    return True, "ok"


def qft_type1_order_ok(
    n: int, events: Sequence[Tuple[str, Tuple[int, ...]]]
) -> Tuple[bool, str]:
    """Check the *strict* (Type I + II) textbook QFT ordering.

    Strict order demands that the CPHASE gates sharing a smaller qubit ``i``
    appear with increasing larger operand, and symmetrically for gates sharing
    the larger qubit.  Combined with Type II this forces the exact textbook
    ordering of the per-qubit interaction lists.
    """

    ok, msg = qft_type2_order_ok(n, events)
    if not ok:
        return ok, msg
    last_as_small = [-1] * n  # largest j seen so far for gates (i, j) keyed by i
    last_as_large = [-1] * n  # largest i seen so far for gates (i, j) keyed by j
    for pos, (kind, qubits) in enumerate(events):
        if kind != "cphase":
            continue
        a, b = qubits
        lo, hi = (a, b) if a < b else (b, a)
        if hi <= last_as_small[lo]:
            return False, (
                f"event {pos}: CPHASE({lo},{hi}) violates Type I order on qubit {lo} "
                f"(already saw partner {last_as_small[lo]})"
            )
        if lo <= last_as_large[hi]:
            return False, (
                f"event {pos}: CPHASE({lo},{hi}) violates Type I order on qubit {hi} "
                f"(already saw partner {last_as_large[hi]})"
            )
        last_as_small[lo] = hi
        last_as_large[hi] = lo
    return True, "ok"
