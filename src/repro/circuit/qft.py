"""QFT kernel builders.

Three flavours are provided:

``qft_circuit(n)``
    The textbook circuit of Fig. 2: for each qubit ``i`` in order, ``H(i)``
    followed by ``CPHASE(i, j)`` for every ``j > i``.

``qft_partitioned(n, ranges)``
    The k-partition rewrite of Section 3.2 / Fig. 8: qubits are split into
    consecutive ranges and the computation becomes an alternation of
    *intra-range* QFTs (QFT-IA) and *inter-range* bipartite interactions
    (QFT-IE).  Any nesting of partitions is expressible because a range entry
    may itself carry a ``range_list``.

``qft_pair_list(n)``
    Just the set of required (i, j) CPHASE pairs and per-qubit H gates --
    the "specification" used by the verifier and by the constructive mappers,
    which never materialise a gate list at all.

The partitioned builders are used by the correctness tests (they must be
unitarily equivalent to the textbook circuit) and by the
:mod:`repro.core.partition` framework.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .circuit import Circuit
from .gates import CPHASE, H, GateKind, qft_angle

__all__ = [
    "qft_circuit",
    "qft_pair_list",
    "qft_interaction_count",
    "textbook_qft_qubit_count",
    "PartitionRange",
    "qft_partitioned",
    "qft_ie_gates",
    "qft_ia_gates",
]


def qft_circuit(n: int, include_final_swaps: bool = False) -> Circuit:
    """Textbook QFT circuit on ``n`` qubits (Fig. 2 of the paper).

    Parameters
    ----------
    n:
        Number of qubits.
    include_final_swaps:
        The full textbook QFT ends with a layer of SWAPs that reverses the
        qubit order.  The paper (like most mapping work) treats the reversal
        as a relabelling and omits it; pass ``True`` to include it anyway.
    """

    if n < 1:
        raise ValueError("QFT needs at least one qubit")
    circ = Circuit(n, name=f"qft_{n}")
    for i in range(n):
        circ.h(i)
        for j in range(i + 1, n):
            circ.cphase(i, j, qft_angle(i, j))
    if include_final_swaps:
        for i in range(n // 2):
            circ.swap(i, n - 1 - i)
    return circ


def qft_pair_list(n: int) -> Tuple[List[int], List[Tuple[int, int]]]:
    """Return (H qubits, ordered CPHASE pair list) for an ``n``-qubit QFT."""

    hs = list(range(n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return hs, pairs


def qft_interaction_count(n: int) -> int:
    """Number of CPHASE gates in an ``n``-qubit QFT."""

    return n * (n - 1) // 2


def textbook_qft_qubit_count(circuit: Circuit) -> Optional[int]:
    """Recognise the textbook QFT circuit; return its qubit count or None.

    This is the guard of the QFT-specialist mappers' uniform ``map_circuit``
    surface: a circuit that is gate-for-gate the output of
    :func:`qft_circuit` (same order, same pairs, same angles, no final SWAP
    layer) is compiled through the analytic construction; anything else
    makes the specialist raise
    :class:`~repro.registry.UnsupportedWorkload`.  The scan is O(#gates)
    and allocation-free, so guarding a 1024-qubit compile costs far less
    than the mapping itself.
    """

    n = circuit.num_qubits
    if len(circuit.gates) != n + n * (n - 1) // 2:
        return None
    gates = circuit.gates
    pos = 0
    for i in range(n):
        g = gates[pos]
        pos += 1
        if g.kind != GateKind.H or g.qubits != (i,):
            return None
        for j in range(i + 1, n):
            g = gates[pos]
            pos += 1
            if g.kind != GateKind.CPHASE or g.qubits != (i, j):
                return None
            if g.angle is None or not math.isclose(
                g.angle, qft_angle(i, j), rel_tol=0.0, abs_tol=1e-12
            ):
                return None
    return n


# ---------------------------------------------------------------------------
# k-partition rewrite (Section 3.2, Fig. 8)
# ---------------------------------------------------------------------------


@dataclass
class PartitionRange:
    """A consecutive range ``[start, stop)`` of logical qubits.

    ``children`` optionally partitions the range further (the recursive
    ``range_list`` of the paper's pseudo-code).  Children must be consecutive,
    disjoint and cover the parent range exactly.
    """

    start: int
    stop: int
    children: List["PartitionRange"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError(f"empty partition range [{self.start}, {self.stop})")
        if self.children:
            expected = self.start
            for child in self.children:
                if child.start != expected:
                    raise ValueError(
                        "partition children must be consecutive and start at the "
                        f"parent start; expected {expected}, got {child.start}"
                    )
                expected = child.stop
            if expected != self.stop:
                raise ValueError(
                    f"partition children must cover the parent range exactly "
                    f"(cover ends at {expected}, parent ends at {self.stop})"
                )

    @property
    def size(self) -> int:
        return self.stop - self.start

    def qubits(self) -> range:
        return range(self.start, self.stop)

    @staticmethod
    def even_split(n: int, k: int) -> "PartitionRange":
        """Top-level range [0, n) split into ``k`` near-equal consecutive parts."""

        if k < 1:
            raise ValueError("k must be >= 1")
        if k > n:
            raise ValueError("cannot split into more parts than qubits")
        bounds = [round(i * n / k) for i in range(k + 1)]
        children = [PartitionRange(bounds[i], bounds[i + 1]) for i in range(k)]
        if k == 1:
            return PartitionRange(0, n)
        return PartitionRange(0, n, children)

    @staticmethod
    def from_sizes(sizes: Sequence[int]) -> "PartitionRange":
        """Top-level range built from explicit consecutive group sizes."""

        if not sizes:
            raise ValueError("need at least one group size")
        children = []
        start = 0
        for s in sizes:
            if s <= 0:
                raise ValueError("group sizes must be positive")
            children.append(PartitionRange(start, start + s))
            start += s
        if len(children) == 1:
            return children[0]
        return PartitionRange(0, start, children)


def qft_ia_gates(rng: range) -> List:
    """Gates of QFT-traditional restricted to one range (QFT-IA base case)."""

    gates = []
    qs = list(rng)
    for idx, i in enumerate(qs):
        gates.append(H(i))
        for j in qs[idx + 1 :]:
            gates.append(CPHASE(i, j, qft_angle(i, j)))
    return gates


def qft_ie_gates(range1: range, range2: range, relaxed_order: bool = False) -> List:
    """Gates of QFT-IE between two disjoint ranges.

    In strict order (paper's QFT-IE-strict) the gates preserve the textbook
    nesting ``for i in range1: for j in range2``.  With ``relaxed_order=True``
    the gates are emitted grouped by ``j`` instead -- any order is legal since
    the gates all commute (no H separates them), and tests exercise both.
    """

    gates = []
    if relaxed_order:
        for j in range2:
            for i in range1:
                gates.append(CPHASE(i, j, qft_angle(i, j)))
    else:
        for i in range1:
            for j in range2:
                gates.append(CPHASE(i, j, qft_angle(i, j)))
    return gates


def _qft_ia(part: PartitionRange, out: List, relaxed_ie: bool) -> None:
    """Recursive QFT-IA of Fig. 8."""

    if not part.children:
        out.extend(qft_ia_gates(part.qubits()))
        return
    children = part.children
    for idx, child in enumerate(children):
        _qft_ia(child, out, relaxed_ie)
        for later in children[idx + 1 :]:
            out.extend(qft_ie_gates(child.qubits(), later.qubits(), relaxed_ie))


def qft_partitioned(
    n: int,
    partition: Optional[PartitionRange] = None,
    *,
    k: Optional[int] = None,
    sizes: Optional[Sequence[int]] = None,
    relaxed_ie: bool = False,
) -> Circuit:
    """Build the k-partition QFT circuit of Section 3.2.

    Exactly one of ``partition``, ``k`` or ``sizes`` selects the partition;
    with none given the textbook circuit is returned.

    The resulting circuit contains exactly the same gates as
    :func:`qft_circuit` (same H set, same CPHASE pairs and angles), only
    reordered, and is therefore unitarily equivalent -- property tests check
    this for random partitions.
    """

    selectors = sum(x is not None for x in (partition, k, sizes))
    if selectors > 1:
        raise ValueError("give at most one of partition/k/sizes")
    if partition is None:
        if k is not None:
            partition = PartitionRange.even_split(n, k)
        elif sizes is not None:
            partition = PartitionRange.from_sizes(sizes)
        else:
            return qft_circuit(n)
    if partition.start != 0 or partition.stop != n:
        raise ValueError(
            f"top-level partition must cover [0, {n}), got "
            f"[{partition.start}, {partition.stop})"
        )

    gates: List = []
    _qft_ia(partition, gates, relaxed_ie)
    circ = Circuit(n, name=f"qft_{n}_partitioned")
    circ.extend(gates)
    return circ
