"""Device-independent (logical) quantum circuits.

A :class:`Circuit` is an ordered list of :class:`~repro.circuit.gates.Gate`
objects over ``n`` logical qubits.  It is deliberately minimal -- the paper's
pipeline only needs:

* building the QFT kernel (``repro.circuit.qft``),
* building its dependence DAG under the strict / relaxed ordering rules
  (``repro.circuit.dag``),
* feeding baseline compilers (SABRE, SATMAP) that consume arbitrary circuits,
* replaying mapped circuits on a statevector for verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import CNOT, CPHASE, H, RZ, SWAP, Gate, GateKind

__all__ = ["Circuit"]


@dataclass
class Circuit:
    """An ordered logical circuit over ``num_qubits`` qubits."""

    num_qubits: int
    gates: List[Gate] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValueError("Circuit needs at least one qubit")
        for g in self.gates:
            self._check_gate(g)

    # -- construction ------------------------------------------------------
    def _check_gate(self, gate: Gate) -> None:
        for q in gate.qubits:
            if not (0 <= q < self.num_qubits):
                raise ValueError(
                    f"gate {gate} uses qubit {q} outside range [0, {self.num_qubits})"
                )

    def append(self, gate: Gate) -> "Circuit":
        """Append ``gate`` (validated) and return ``self`` for chaining."""

        self._check_gate(gate)
        self.gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for g in gates:
            self.append(g)
        return self

    def h(self, q: int) -> "Circuit":
        return self.append(H(q))

    def cphase(self, a: int, b: int, angle: Optional[float] = None) -> "Circuit":
        return self.append(CPHASE(a, b, angle))

    def swap(self, a: int, b: int) -> "Circuit":
        return self.append(SWAP(a, b))

    def cnot(self, c: int, t: int) -> "Circuit":
        return self.append(CNOT(c, t))

    def rz(self, q: int, angle: float) -> "Circuit":
        return self.append(RZ(q, angle))

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __getitem__(self, idx: int) -> Gate:
        return self.gates[idx]

    def count(self, kind: str) -> int:
        """Number of gates of the given kind."""

        return sum(1 for g in self.gates if g.kind == kind)

    def two_qubit_gates(self) -> List[Gate]:
        return [g for g in self.gates if g.is_two_qubit]

    def qubits_used(self) -> Tuple[int, ...]:
        used = sorted({q for g in self.gates for q in g.qubits})
        return tuple(used)

    def depth(self) -> int:
        """Logical circuit depth (greedy per-qubit ASAP layering)."""

        busy_until = [0] * self.num_qubits
        depth = 0
        for g in self.gates:
            start = max(busy_until[q] for q in g.qubits)
            end = start + 1
            for q in g.qubits:
                busy_until[q] = end
            depth = max(depth, end)
        return depth

    def interaction_pairs(self) -> set:
        """Set of unordered logical pairs touched by two-qubit gates."""

        return {g.sorted_qubits() for g in self.gates if g.is_two_qubit}

    # -- transformation ----------------------------------------------------
    def copy(self) -> "Circuit":
        return Circuit(self.num_qubits, list(self.gates), self.name)

    def remapped(self, mapping: Sequence[int]) -> "Circuit":
        """Return a copy with logical qubit ``q`` relabelled to ``mapping[q]``."""

        if len(mapping) != self.num_qubits:
            raise ValueError("mapping length must equal num_qubits")
        table = {q: mapping[q] for q in range(self.num_qubits)}
        out = Circuit(self.num_qubits, name=self.name)
        for g in self.gates:
            out.append(g.on(table))
        return out

    def reversed(self) -> "Circuit":
        """Gates in reverse order (used by SABRE's bidirectional passes)."""

        return Circuit(self.num_qubits, list(reversed(self.gates)), self.name + "_rev")

    def without(self, kinds: Iterable[str]) -> "Circuit":
        drop = set(kinds)
        return Circuit(
            self.num_qubits,
            [g for g in self.gates if g.kind not in drop],
            self.name,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        head = f"Circuit(n={self.num_qubits}, gates={len(self.gates)}"
        if self.name:
            head += f", name={self.name!r}"
        return head + ")"
