"""Gate primitives shared by logical circuits and mapped (hardware) circuits.

The paper's QFT kernel only needs three operations:

* ``H``        -- single-qubit Hadamard,
* ``CPHASE``   -- two-qubit controlled phase rotation (diagonal, symmetric),
* ``SWAP``     -- inserted by the mapper to move logical qubits between
                  physical locations.

For the fault-tolerant (lattice-surgery) backend the paper additionally
reasons about ``CNOT`` gates because a SWAP on a CNOT-only link costs three
CNOTs (Section 2.3).  We therefore also provide ``CNOT`` and ``RZ`` so that
mapped circuits can be *expanded* to a CNOT-level gate set when needed
(e.g. for gate-count accounting on the FT backend or for exporting to other
tools).

Two classes live here:

``Gate``
    A gate acting on *logical* qubit indices.  Used by
    :mod:`repro.circuit.circuit` for device-independent circuits.

``Op``
    A gate instance inside a *mapped* circuit.  It records both the physical
    qubits it acts on and the logical qubits that were resident on those
    physical qubits when the gate was emitted.  Keeping the logical identity
    around makes verification trivial: a mapped circuit can be replayed on the
    logical state without re-simulating the SWAP tracking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

__all__ = [
    "GateKind",
    "Gate",
    "Op",
    "H",
    "CPHASE",
    "SWAP",
    "CNOT",
    "RZ",
    "qft_angle",
    "TWO_QUBIT_KINDS",
    "SINGLE_QUBIT_KINDS",
    "KIND_CODES",
]


class GateKind:
    """String constants for the supported gate kinds.

    Using plain strings (rather than an Enum) keeps ``Gate`` and ``Op``
    lightweight and cheap to hash/copy -- mapped circuits for 1024-qubit QFT
    contain several hundred thousand ops.
    """

    H = "h"
    CPHASE = "cphase"
    SWAP = "swap"
    CNOT = "cnot"
    RZ = "rz"
    BARRIER = "barrier"


SINGLE_QUBIT_KINDS = frozenset({GateKind.H, GateKind.RZ})
TWO_QUBIT_KINDS = frozenset({GateKind.CPHASE, GateKind.SWAP, GateKind.CNOT})

#: stable small-int codes for packing op streams into numpy arrays (used by
#: the vectorized metric extraction and the topologies' latency models)
KIND_CODES = {
    GateKind.H: 0,
    GateKind.RZ: 1,
    GateKind.CPHASE: 2,
    GateKind.CNOT: 3,
    GateKind.SWAP: 4,
    GateKind.BARRIER: 5,
}


def qft_angle(i: int, j: int) -> float:
    """Return the CPHASE rotation angle between QFT qubits ``i`` and ``j``.

    In the textbook QFT over qubits ``0..n-1`` the controlled rotation between
    qubit ``i`` (target, the earlier/hadamarded qubit) and qubit ``j`` (control)
    with ``i < j`` is ``R_{j-i+1}``, i.e. a phase of ``2*pi / 2^(j-i+1)``
    == ``pi / 2^(j-i)``.

    The angle only depends on the *distance* ``|i - j|`` which is what makes
    CPHASE reordering safe: the mapper may execute the pair interactions in any
    Type-II-respecting order and each pair still receives its own fixed angle.
    """

    if i == j:
        raise ValueError("qft_angle requires two distinct qubits")
    d = abs(j - i)
    return math.pi / float(2 ** d)


@dataclass(frozen=True)
class Gate:
    """A gate on logical qubits.

    Parameters
    ----------
    kind:
        One of :class:`GateKind`.
    qubits:
        Logical qubit indices.  Order matters for ``CNOT`` (control, target)
        and mirrors the paper's ``G(target, control)`` notation for CPHASE,
        although CPHASE itself is symmetric.
    angle:
        Rotation angle for parameterised gates (``CPHASE``, ``RZ``).
    """

    kind: str
    qubits: Tuple[int, ...]
    angle: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind in SINGLE_QUBIT_KINDS and len(self.qubits) != 1:
            raise ValueError(f"{self.kind} gate takes exactly one qubit, got {self.qubits}")
        if self.kind in TWO_QUBIT_KINDS and len(self.qubits) != 2:
            raise ValueError(f"{self.kind} gate takes exactly two qubits, got {self.qubits}")
        if self.kind in TWO_QUBIT_KINDS and self.qubits[0] == self.qubits[1]:
            raise ValueError(f"{self.kind} gate needs two distinct qubits, got {self.qubits}")

    # -- convenience -------------------------------------------------------
    @property
    def is_two_qubit(self) -> bool:
        return self.kind in TWO_QUBIT_KINDS

    @property
    def is_single_qubit(self) -> bool:
        return self.kind in SINGLE_QUBIT_KINDS

    def on(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy with qubits remapped through ``mapping``."""

        return Gate(self.kind, tuple(mapping[q] for q in self.qubits), self.angle)

    def sorted_qubits(self) -> Tuple[int, ...]:
        return tuple(sorted(self.qubits))

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        if self.angle is None:
            return f"{self.kind}{self.qubits}"
        return f"{self.kind}{self.qubits}@{self.angle:.4f}"


# Constructor helpers ------------------------------------------------------


def H(q: int) -> Gate:
    """Hadamard on logical qubit ``q``."""

    return Gate(GateKind.H, (q,))


def CPHASE(a: int, b: int, angle: Optional[float] = None) -> Gate:
    """Controlled-phase between logical qubits ``a`` and ``b``.

    If ``angle`` is omitted the standard QFT angle for the pair is used.
    """

    if angle is None:
        angle = qft_angle(a, b)
    return Gate(GateKind.CPHASE, (a, b), angle)


def SWAP(a: int, b: int) -> Gate:
    """SWAP between logical qubits ``a`` and ``b``."""

    return Gate(GateKind.SWAP, (a, b))


def CNOT(control: int, target: int) -> Gate:
    """CNOT with ``control`` and ``target`` logical qubits."""

    return Gate(GateKind.CNOT, (control, target))


def RZ(q: int, angle: float) -> Gate:
    """Z rotation on logical qubit ``q``."""

    return Gate(GateKind.RZ, (q,), angle)


@dataclass(frozen=True)
class Op:
    """A gate inside a *mapped* (hardware) circuit.

    Attributes
    ----------
    kind:
        Gate kind (see :class:`GateKind`).
    physical:
        Physical qubit indices the gate acts on.
    logical:
        Logical qubits resident on those physical qubits when the op was
        emitted.  For a SWAP this is the pair of logical qubits being
        exchanged.  ``logical`` may contain ``-1`` for ancilla/idle positions
        that hold no program qubit (this does not occur for QFT where every
        physical qubit in the region is occupied).
    angle:
        Optional rotation angle.
    tag:
        Free-form provenance string used by mappers ("ia", "ie", "unit-swap",
        "fixup", "routed", ...).  Tags make it easy to attribute depth/SWAP
        cost to phases of the algorithm in ablation benchmarks.
    """

    kind: str
    physical: Tuple[int, ...]
    logical: Tuple[int, ...]
    angle: Optional[float] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if len(self.physical) != len(self.logical):
            raise ValueError("physical and logical tuples must have equal length")
        if self.kind in SINGLE_QUBIT_KINDS and len(self.physical) != 1:
            raise ValueError(f"{self.kind} op takes exactly one qubit")
        if self.kind in TWO_QUBIT_KINDS and len(self.physical) != 2:
            raise ValueError(f"{self.kind} op takes exactly two qubits")
        if len(set(self.physical)) != len(self.physical):
            raise ValueError(f"duplicate physical qubits in op: {self.physical}")

    @property
    def is_two_qubit(self) -> bool:
        return self.kind in TWO_QUBIT_KINDS

    @property
    def is_swap(self) -> bool:
        return self.kind == GateKind.SWAP

    @property
    def is_cphase(self) -> bool:
        return self.kind == GateKind.CPHASE

    def as_gate(self) -> Gate:
        """Project the op onto its logical qubits (dropping physical info)."""

        return Gate(self.kind, self.logical, self.angle)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.kind} phys={self.physical} log={self.logical}"


def expand_to_cnot(op: Op) -> list:
    """Expand a mapped op into a CNOT + single-qubit gate sequence.

    The decomposition follows the standard identities used by the paper's FT
    cost model (Section 2.3):

    * ``SWAP(a, b)``     -> 3 CNOTs,
    * ``CPHASE(a, b)``   -> CNOT, RZ, CNOT, RZ, RZ (up to global phase),
    * other ops are returned unchanged.

    Only used for gate-count accounting; scheduling works on the native ops.
    """

    if op.kind == GateKind.SWAP:
        a, b = op.physical
        la, lb = op.logical
        return [
            Op(GateKind.CNOT, (a, b), (la, lb), tag=op.tag),
            Op(GateKind.CNOT, (b, a), (lb, la), tag=op.tag),
            Op(GateKind.CNOT, (a, b), (la, lb), tag=op.tag),
        ]
    if op.kind == GateKind.CPHASE:
        a, b = op.physical
        la, lb = op.logical
        theta = op.angle if op.angle is not None else math.pi
        half = theta / 2.0
        return [
            Op(GateKind.RZ, (a,), (la,), half, tag=op.tag),
            Op(GateKind.CNOT, (a, b), (la, lb), tag=op.tag),
            Op(GateKind.RZ, (b,), (lb,), -half, tag=op.tag),
            Op(GateKind.CNOT, (a, b), (la, lb), tag=op.tag),
            Op(GateKind.RZ, (b,), (lb,), half, tag=op.tag),
        ]
    return [op]


def count_kinds(ops: Iterable[Op]) -> dict:
    """Count ops by kind; small helper shared by metrics and tests."""

    counts: dict[str, int] = {}
    for op in ops:
        counts[op.kind] = counts.get(op.kind, 0) + 1
    return counts
