"""Circuit intermediate representation: gates, logical circuits, QFT builders,
dependence analysis and mapped-circuit scheduling."""

from .circuit import Circuit
from .dag import (
    DependenceRules,
    build_dag,
    dag_depth,
    front_layers,
    gates_commute,
    qft_type1_order_ok,
    qft_type2_order_ok,
)
from .gates import (
    CNOT,
    CPHASE,
    H,
    RZ,
    SWAP,
    Gate,
    GateKind,
    Op,
    qft_angle,
)
from .qft import (
    PartitionRange,
    qft_circuit,
    qft_ia_gates,
    qft_ie_gates,
    qft_interaction_count,
    qft_pair_list,
    qft_partitioned,
)
from .schedule import MappedCircuit, MappingBuilder, asap_depth, asap_layers

__all__ = [
    "Circuit",
    "DependenceRules",
    "build_dag",
    "dag_depth",
    "front_layers",
    "gates_commute",
    "qft_type1_order_ok",
    "qft_type2_order_ok",
    "CNOT",
    "CPHASE",
    "H",
    "RZ",
    "SWAP",
    "Gate",
    "GateKind",
    "Op",
    "qft_angle",
    "PartitionRange",
    "qft_circuit",
    "qft_ia_gates",
    "qft_ie_gates",
    "qft_interaction_count",
    "qft_pair_list",
    "qft_partitioned",
    "MappedCircuit",
    "MappingBuilder",
    "asap_depth",
    "asap_layers",
]
