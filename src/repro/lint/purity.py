"""The cache-key purity checker: engine options never reach cell identity.

PR 5 established the *no-fork rule*: options in
:data:`repro.approaches.ENGINE_KWARGS` select an execution engine (the
compiled SABRE kernel vs. the bit-identical Python fallback) and must
never influence a cell's identity -- not the :meth:`ResultCache.key`
payload, not the journal's :func:`cell_key`, not the verify-policy
sampling hash, not the experiment store's :func:`identity_columns`
cell-key denormalization.  A fork would mean a sweep computed with the
compiled
kernel and the same sweep computed with the fallback stop sharing cache
entries, journals stop resuming across machines, and the "bit-identical"
guarantee quietly becomes "bit-identical per engine".

Until now that rule was a convention backed by a handful of no-fork
tests.  This checker makes it a static property of the tree:

1. **Single source of truth** -- ``ENGINE_KWARGS`` may be *defined* only
   in ``repro/approaches.py``; any second definition elsewhere is a
   drift bomb (two lists that can disagree) and is flagged.
2. **Sink discipline** -- every *identity sink* (a function that hashes
   cell identity: the known four, plus any function in the tree that
   feeds a ``hashlib.*`` digest from a kwargs-like parameter) must
   filter that parameter through ``... not in ENGINE_KWARGS`` before
   serializing it.  A sink iterating its kwargs without the guard is
   flagged at the offending comprehension/loop.
3. **Call-graph taint walk** -- starting from the sinks, the checker
   walks callers to a fixpoint: a function that forwards one of its own
   parameters into a sink's kwargs position becomes a *derived sink*,
   and any call site anywhere in the tree that passes an engine-kwarg
   string literal (e.g. ``"kernel"``) into a (derived) sink's kwargs
   position is flagged.  This is how a future
   ``cache.key(..., kwargs=[("kernel", v), ...])`` gets caught at the
   call site that introduced it, however many wrappers deep.

The engine kwarg list itself is read from the AST of ``approaches.py``
(a literal ``frozenset({...})``), not imported -- the linter must be able
to judge a tree too broken to import.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .framework import (
    Checker,
    Finding,
    Module,
    Project,
    call_name,
    register_checker,
)

__all__ = ["CacheKeyPurityChecker"]

#: repo-relative module allowed to define ENGINE_KWARGS
ENGINE_KWARGS_HOME = "src/repro/approaches.py"

#: qualified names of the known identity sinks and their kwargs-like params
#: (dotted params name an attribute of the parameter, e.g. ``spec.kwargs``)
KNOWN_SINKS: Tuple[Tuple[str, str], ...] = (
    # ResultCache.key delegates to cell_cache_key (the shared derivation
    # behind both the disk cache and the serve LRU); the taint walk makes
    # the delegating wrapper a derived sink automatically.
    ("cell_cache_key", "kwargs"),
    ("cell_key", "spec.kwargs"),
    ("sample_verifies", "params"),
    ("identity_columns", "kwargs"),
)

#: parameter names that smell like an options mapping worth guarding
KWARGS_PARAM_NAMES = frozenset({"kwargs", "params", "options", "opts"})


def _literal_strings(node: ast.AST) -> Set[str]:
    """Every string constant appearing anywhere under ``node``."""

    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


def _param_names(func: ast.AST) -> List[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


class _SinkTable:
    """(module rel, qualified function name) -> kwargs-like parameter."""

    def __init__(self) -> None:
        self.params: Dict[Tuple[str, str], str] = {}
        self.nodes: Dict[Tuple[str, str], ast.AST] = {}

    def add(self, rel: str, qual: str, param: str, node: ast.AST) -> None:
        self.params[(rel, qual)] = param
        self.nodes[(rel, qual)] = node

    def by_tail(self, name: str) -> Optional[Tuple[str, str, str]]:
        """Match a call target against the sinks by dotted-name tail.

        ``cache.key(...)`` matches ``ResultCache.key``; ``cell_key(...)``
        matches ``cell_key``.  Returns (rel, qual, param) or None.
        """

        tail = name.split(".")[-1]
        for (rel, qual), param in self.params.items():
            if qual.split(".")[-1] == tail:
                return rel, qual, param
        return None


@register_checker("cache-purity", synonyms=("purity", "no-fork"))
class CacheKeyPurityChecker(Checker):
    """Proves engine-selection options stay out of cell-identity hashing."""

    description = (
        "ENGINE_KWARGS options must never reach cache keys, journal cell "
        "keys or verify-policy hashing (call-graph walk from the sinks)"
    )
    hint = (
        "filter engine options with `if k not in ENGINE_KWARGS` before "
        "hashing, and never pass engine-kwarg names into identity sinks"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        engine_kwargs, home_finding = self._engine_kwargs(project)
        if home_finding is not None:
            yield home_finding
        if not engine_kwargs:
            return
        yield from self._check_single_definition(project, engine_kwargs)
        sinks = self._collect_sinks(project)
        yield from self._check_sink_bodies(project, sinks, engine_kwargs)
        yield from self._taint_walk(project, sinks, engine_kwargs)

    # ------------------------------------------------------------------
    def _engine_kwargs(
        self, project: Project
    ) -> Tuple[Set[str], Optional[Finding]]:
        """Extract the literal ENGINE_KWARGS set from approaches.py."""

        module = project.context_module(ENGINE_KWARGS_HOME)
        if module is None:
            return set(), None  # linting a tree without the repro package
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "ENGINE_KWARGS"
                    for t in node.targets
                )
            ):
                names = {
                    s
                    for s in _literal_strings(node.value)
                }
                if names:
                    return names, None
                return set(), Finding(
                    path=module.rel,
                    line=node.lineno,
                    checker=self.name,
                    message="ENGINE_KWARGS is not a literal set of option "
                    "names; the purity checker cannot verify the no-fork "
                    "rule",
                    hint="keep ENGINE_KWARGS a frozenset of string literals",
                )
        return set(), Finding(
            path=module.rel,
            line=1,
            checker=self.name,
            message="no ENGINE_KWARGS definition found in approaches.py",
            hint="define ENGINE_KWARGS = frozenset({...}) in "
            "repro/approaches.py",
        )

    def _check_single_definition(
        self, project: Project, engine_kwargs: Set[str]
    ) -> Iterator[Finding]:
        for module in project.targets:
            if module.rel == ENGINE_KWARGS_HOME:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "ENGINE_KWARGS"
                    for t in node.targets
                ):
                    yield self.finding(
                        module, node,
                        "ENGINE_KWARGS redefined outside approaches.py; "
                        "two engine-option lists can silently diverge",
                        hint="import ENGINE_KWARGS from repro.approaches "
                        "instead of redefining it",
                    )

    # ------------------------------------------------------------------
    def _collect_sinks(self, project: Project) -> _SinkTable:
        """Known sinks plus autodetected kwargs-hashing functions.

        Iterates the shared :class:`~repro.lint.graph.ProjectGraph` symbol
        tables (targets plus the four sink-home context modules) instead
        of re-walking every AST.
        """

        graph = project.graph()
        sinks = _SinkTable()
        known = dict(KNOWN_SINKS)
        rels = [m.rel for m in project.targets]
        for rel in (
            "src/repro/eval/cache.py",
            "src/repro/eval/journal.py",
            "src/repro/eval/runners.py",
            "src/repro/store/store.py",
        ):
            if rel not in rels and graph.index_for(rel) is not None:
                rels.append(rel)
        for rel in rels:
            index = graph.modules.get(rel)
            if index is None:
                continue
            for qual, func in index.functions.items():
                if qual in known:
                    sinks.add(rel, qual, known[qual], func)
                    continue
                # autodetect: hashes identity AND takes a kwargs-like param
                params = [
                    p for p in _param_names(func) if p in KWARGS_PARAM_NAMES
                ]
                if not params:
                    continue
                if any(
                    isinstance(n, ast.Call)
                    and call_name(n).startswith("hashlib.")
                    for n in ast.walk(func)
                ):
                    sinks.add(rel, qual, params[0], func)
        return sinks

    def _check_sink_bodies(
        self, project: Project, sinks: _SinkTable, engine_kwargs: Set[str]
    ) -> Iterator[Finding]:
        """Every sink must filter its kwargs through ENGINE_KWARGS.

        The requirement is function-granular: the sink's body must contain
        a ``... not in ENGINE_KWARGS`` guard *somewhere* on the flow of the
        kwargs-like parameter (nested comprehensions legitimately split
        the iteration from the filter, so demanding the guard on every
        generator would flag the filtered idiom itself).  A sink whose
        body serializes the parameter with no guard anywhere is flagged at
        the first use.
        """

        for (rel, qual), param in sinks.params.items():
            func = sinks.nodes[(rel, qual)]
            module = self._module_for(project, rel)
            if module is None:
                continue
            if any(self._is_engine_guard(n) for n in ast.walk(func)):
                continue
            use = self._first_param_use(func, param)
            if use is None:
                continue  # parameter never serialized: nothing to fork on
            yield Finding(
                path=rel,
                line=use.lineno,
                checker=self.name,
                message=f"identity sink {qual}() serializes {param!r} "
                "without filtering ENGINE_KWARGS; engine choice would "
                "fork the key",
                hint="filter with `if str(k) not in ENGINE_KWARGS` before "
                "hashing",
            )

    @staticmethod
    def _first_param_use(func: ast.AST, param: str) -> Optional[ast.AST]:
        """First body node reading ``param`` (``a.b`` matches ``a.b`` only)."""

        base, _, attr = param.partition(".")
        for n in ast.walk(func):
            if attr:
                if (
                    isinstance(n, ast.Attribute)
                    and n.attr == attr
                    and isinstance(n.value, ast.Name)
                    and n.value.id == base
                ):
                    return n
            elif isinstance(n, ast.Name) and n.id == base and isinstance(
                n.ctx, ast.Load
            ):
                return n
        return None

    @staticmethod
    def _is_engine_guard(cond: ast.AST) -> bool:
        for n in ast.walk(cond):
            if isinstance(n, ast.Compare) and any(
                isinstance(op, ast.NotIn) for op in n.ops
            ):
                for comp in n.comparators:
                    name = (
                        comp.id
                        if isinstance(comp, ast.Name)
                        else comp.attr
                        if isinstance(comp, ast.Attribute)
                        else ""
                    )
                    if name == "ENGINE_KWARGS":
                        return True
        return False

    # ------------------------------------------------------------------
    def _module_for(self, project: Project, rel: str) -> Optional[Module]:
        for module in project.targets:
            if module.rel == rel:
                return module
        return project.context_module(rel)

    def _taint_walk(
        self, project: Project, sinks: _SinkTable, engine_kwargs: Set[str]
    ) -> Iterator[Finding]:
        """Fixpoint over callers: flag engine literals entering sink args.

        A call site taints when any expression passed into a (derived)
        sink's kwargs-position contains an engine-kwarg string literal.
        A caller that instead forwards one of *its own* parameters becomes
        a derived sink, so the literal is caught at whatever call depth it
        enters the flow.

        Candidate call sites come from the shared project graph's
        tail-indexed call table: instead of re-walking every function per
        fixpoint round, each (derived) sink pulls exactly the sites whose
        call-name tail matches it, and newly derived sinks enqueue their
        own tail.
        """

        graph = project.graph()
        derived = _SinkTable()
        derived.params.update(sinks.params)
        derived.nodes.update(sinks.nodes)
        flagged: Set[Tuple[str, int, str]] = set()
        worklist = [qual.split(".")[-1] for (_, qual) in derived.params]
        processed: Set[str] = set()
        while worklist:
            tail = worklist.pop(0)
            if tail in processed:
                continue
            processed.add(tail)
            for rel, caller_qual, site in graph.calls_by_tail(tail):
                match = derived.by_tail(site.name)
                if match is None:
                    continue
                index = graph.modules[rel]
                module = index.module
                func = index.functions.get(caller_qual)
                own_params = (
                    set(_param_names(func)) if func is not None else set()
                )
                _, sink_qual, sink_param = match
                node = site.node
                for arg in self._args_for_param(node, sink_param):
                    hit = _literal_strings(arg) & engine_kwargs
                    if hit:
                        key = (rel, node.lineno, sink_qual)
                        if key not in flagged:
                            flagged.add(key)
                            yield self.finding(
                                module, node,
                                "engine kwarg "
                                f"{sorted(hit)!r} passed into "
                                f"identity sink {sink_qual}(); "
                                "cache keys must not fork on "
                                "engine options",
                            )
                    forwarded = {
                        n.id
                        for n in ast.walk(arg)
                        if isinstance(n, ast.Name)
                    } & own_params
                    if (
                        forwarded
                        and func is not None
                        and (rel, caller_qual) not in derived.params
                    ):
                        derived.add(
                            rel, caller_qual, sorted(forwarded)[0], func
                        )
                        new_tail = caller_qual.split(".")[-1]
                        processed.discard(new_tail)
                        worklist.append(new_tail)
        return

    @staticmethod
    def _args_for_param(call: ast.Call, param: str) -> List[ast.expr]:
        """Expressions a call passes into the sink's kwargs-like slot.

        Exact keyword match when present; otherwise every positional arg
        (parameter position is unknown across wrappers, and scanning all
        positionals only risks extra vigilance, not missed taint).
        """

        base = param.partition(".")[0]
        kw = [k.value for k in call.keywords if k.arg == base]
        if kw:
            return kw
        return list(call.args)
