"""The sql-schema checker: every SQL string matches the declared DDL.

The experiment store denormalizes cell identity into indexed columns and
queries them all over ``store/`` (including ``legacy.py`` and the
``__main__`` CLI).  A schema edit that renames a column or drops a table
currently fails at *runtime* -- an ``OperationalError`` in whatever code
path first touches the orphaned query, possibly deep in a fleet run.
This checker makes schema drift a lint failure instead:

1. The declared schema is read from the AST of ``store/schema.py`` (the
   ``_DDL`` literal), exactly as the purity checker reads
   ``ENGINE_KWARGS`` -- the linter must be able to judge a tree too
   broken to import.
2. Every ``execute``/``executemany``/``executescript`` call in
   ``store/`` modules has its SQL extracted: constant strings,
   f-strings (dynamic fragments become *holes*), ``+``-concatenations,
   and locals assembled with ``sql = ...; sql += ...``.
3. A small stdlib-only SQL tokenizer/analyzer resolves table and column
   references (FROM/JOIN aliases, ``excluded.*`` upsert refs,
   subqueries go *opaque* rather than guessed at) and placeholder
   arity (``?`` count vs. a literal params tuple; INSERT column list
   vs. VALUES item count).

Anything dynamic degrades soundly to "not checked": a hole in the FROM
clause makes the statement's unqualified columns unverifiable, a
non-literal params argument skips arity -- but the common case (constant
SQL, literal tuple) is verified exactly, and the checked surface covers
every statement the store actually runs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .framework import (
    Checker,
    Finding,
    Module,
    Project,
    dotted_name,
    register_checker,
)
from .transactions import _own_nodes

__all__ = ["SqlSchemaChecker"]

#: repo-relative module declaring the schema (the ``_DDL`` literal)
SCHEMA_HOME = "src/repro/store/schema.py"

#: hole marker for dynamic SQL fragments (f-string fields, .join() parts)
HOLE = "\x00"

#: tables SQLite provides without DDL
_BUILTIN_TABLES = frozenset({"sqlite_master", "sqlite_schema", "sqlite_sequence"})

#: columns every rowid table has implicitly
_IMPLICIT_COLUMNS = frozenset({"rowid", "oid", "_rowid_"})

_KEYWORDS = frozenset(
    """
    select from where and or not null is in like between exists order
    group by having limit offset as distinct all join left right full
    inner outer cross on using insert into values update set delete
    replace create table index if drop alter add column primary key
    unique references foreign check constraint default autoincrement
    cascade restrict collate asc desc conflict do nothing begin
    immediate deferred exclusive transaction commit rollback end pragma
    vacuum analyze explain case when then else cast union except
    intersect integer text real blob numeric coalesce ifnull glob
    """.split()
)

#: statement verbs the checker analyzes (everything else is skipped)
_CHECKED_VERBS = frozenset({"SELECT", "INSERT", "UPDATE", "DELETE", "REPLACE"})


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------

class _Tok:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind  # ident | kw | num | str | qmark | named | hole | punct
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.text}"


def _tokenize(sql: str) -> List[_Tok]:
    out: List[_Tok] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
        elif ch == HOLE:
            out.append(_Tok("hole", HOLE))
            i += 1
        elif ch == "-" and sql[i : i + 2] == "--":
            j = sql.find("\n", i)
            i = n if j < 0 else j + 1
        elif ch == "'":
            j = i + 1
            while j < n:
                if sql[j] == "'" and sql[j : j + 2] != "''":
                    break
                j += 2 if sql[j] == "'" else 1
            out.append(_Tok("str", sql[i : j + 1]))
            i = j + 1
        elif ch == '"':
            j = sql.find('"', i + 1)
            j = n if j < 0 else j
            out.append(_Tok("ident", sql[i + 1 : j]))
            i = j + 1
        elif ch == "?":
            out.append(_Tok("qmark", "?"))
            i = 1 + i
        elif ch == ":" and i + 1 < n and (sql[i + 1].isalpha() or sql[i + 1] == "_"):
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            out.append(_Tok("named", sql[i:j]))
            i = j
        elif ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            kind = "kw" if word.lower() in _KEYWORDS else "ident"
            out.append(_Tok(kind, word))
            i = j
        elif ch.isdigit():
            j = i
            while j < n and (sql[j].isalnum() or sql[j] in "._"):
                j += 1
            out.append(_Tok("num", sql[i:j]))
            i = j
        else:
            out.append(_Tok("punct", ch))
            i += 1
    return out


def _split_statements(tokens: List[_Tok]) -> List[List[_Tok]]:
    out: List[List[_Tok]] = []
    cur: List[_Tok] = []
    for tok in tokens:
        if tok.kind == "punct" and tok.text == ";":
            if cur:
                out.append(cur)
                cur = []
        else:
            cur.append(tok)
    if cur:
        out.append(cur)
    return out


def _is_kw(tok: Optional[_Tok], word: str) -> bool:
    return tok is not None and tok.kind == "kw" and tok.text.lower() == word


# ---------------------------------------------------------------------------
# declared schema
# ---------------------------------------------------------------------------

def parse_ddl(ddl: str) -> Dict[str, Set[str]]:
    """``CREATE TABLE`` statements -> {table: {column, ...}}."""

    schema: Dict[str, Set[str]] = {}
    for stmt in _split_statements(_tokenize(ddl)):
        if not stmt or not _is_kw(stmt[0], "create"):
            continue
        i = 1
        if i < len(stmt) and _is_kw(stmt[i], "table"):
            i += 1
            while i < len(stmt) and stmt[i].kind == "kw" and stmt[i].text.lower() in (
                "if", "not", "exists"
            ):
                i += 1
            if i >= len(stmt):
                continue
            table = stmt[i].text
            i += 1
            if i >= len(stmt) or stmt[i].text != "(":
                continue
            cols: Set[str] = set()
            depth = 0
            expect_col = True
            for tok in stmt[i:]:
                if tok.kind == "punct" and tok.text == "(":
                    depth += 1
                    continue
                if tok.kind == "punct" and tok.text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                    continue
                if depth == 1 and tok.kind == "punct" and tok.text == ",":
                    expect_col = True
                    continue
                if depth == 1 and expect_col:
                    expect_col = False
                    if tok.text.lower() in (
                        "primary", "unique", "foreign", "check", "constraint"
                    ):
                        continue
                    if tok.kind in ("ident", "kw"):
                        cols.add(tok.text)
            schema[table] = cols
    return schema


# ---------------------------------------------------------------------------
# statement analysis
# ---------------------------------------------------------------------------

class _Issue:
    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message


class _Scope:
    """One SELECT/UPDATE/DELETE scope: its sources and column refs."""

    def __init__(self) -> None:
        self.tables: Dict[str, Optional[str]] = {}  # alias/name -> table | None
        self.cols: List[Tuple[Optional[str], str]] = []  # (qualifier, column)
        self.opaque = False  # a hole or subquery feeds this scope


class _Analyzer:
    def __init__(self, schema: Dict[str, Set[str]]) -> None:
        self.schema = schema
        self.issues: List[_Issue] = []
        self.placeholders = 0

    # -- public ----------------------------------------------------------
    def analyze(self, tokens: List[_Tok]) -> None:
        if not tokens:
            return
        self.placeholders += sum(
            1 for t in tokens if t.kind in ("qmark", "named")
        )
        head = tokens[0]
        verb = head.text.upper() if head.kind == "kw" else ""
        if verb not in _CHECKED_VERBS:
            return
        if verb == "SELECT":
            self._select(tokens, 0)
        elif verb in ("INSERT", "REPLACE"):
            self._insert(tokens)
        elif verb == "UPDATE":
            self._update(tokens)
        elif verb == "DELETE":
            self._delete(tokens)

    # -- helpers ---------------------------------------------------------
    def _check_table(self, name: str) -> None:
        if name not in self.schema and name not in _BUILTIN_TABLES:
            self.issues.append(
                _Issue(f"unknown table {name!r} (not in store/schema.py DDL)")
            )

    def _finish_scope(self, scope: _Scope) -> None:
        known: List[str] = []
        for alias, table in scope.tables.items():
            if table is None:
                continue
            self._check_table(table)
            if table in self.schema:
                known.append(table)
        any_unknown = any(
            t is not None and t not in self.schema and t not in _BUILTIN_TABLES
            for t in scope.tables.values()
        )
        for qualifier, col in scope.cols:
            if qualifier is not None:
                table = scope.tables.get(qualifier)
                if table is None or table not in self.schema:
                    continue
                if col not in self.schema[table] and col not in _IMPLICIT_COLUMNS:
                    self.issues.append(
                        _Issue(
                            f"unknown column {qualifier}.{col} "
                            f"(table {table!r} has no {col!r})"
                        )
                    )
            else:
                if scope.opaque or any_unknown or not known:
                    continue
                if not any(
                    col in self.schema[t] for t in known
                ) and col not in _IMPLICIT_COLUMNS:
                    where = " or ".join(repr(t) for t in sorted(set(known)))
                    self.issues.append(
                        _Issue(f"unknown column {col!r} (not in {where})")
                    )

    def _collect_cols(
        self, tokens: List[_Tok], i: int, scope: _Scope, stops: Set[str]
    ) -> int:
        """Scan a column-bearing clause until a stop keyword at depth 0."""

        depth = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok.kind == "punct" and tok.text == "(":
                # subquery inside a condition: recurse, stay opaque here
                if i + 1 < len(tokens) and _is_kw(tokens[i + 1], "select"):
                    i = self._select(tokens, i + 1)
                    continue
                depth += 1
            elif tok.kind == "punct" and tok.text == ")":
                if depth == 0:
                    return i
                depth -= 1
            elif tok.kind == "hole":
                pass
            elif tok.kind == "kw":
                if depth == 0 and tok.text.lower() in stops:
                    return i
                if _is_kw(tok, "as") and i + 1 < len(tokens):
                    i += 2  # output alias, not a column
                    continue
            elif tok.kind == "ident":
                nxt = tokens[i + 1] if i + 1 < len(tokens) else None
                if nxt is not None and nxt.kind == "punct" and nxt.text == "(":
                    i += 1  # function name
                    continue
                if nxt is not None and nxt.kind == "punct" and nxt.text == ".":
                    after = tokens[i + 2] if i + 2 < len(tokens) else None
                    if after is not None and after.kind in ("ident", "kw"):
                        scope.cols.append((tok.text, after.text))
                        i += 3
                        continue
                    i += 3  # qualified star (r.*) or dangling dot
                    continue
                scope.cols.append((None, tok.text))
            i += 1
        return i

    def _parse_sources(
        self, tokens: List[_Tok], i: int, scope: _Scope
    ) -> int:
        """FROM/JOIN clause: table names and aliases, until WHERE/etc."""

        stops = {
            "where", "group", "order", "limit", "having", "union",
            "except", "intersect", "offset",
        }
        pending_alias_for: Optional[str] = None
        while i < len(tokens):
            tok = tokens[i]
            if tok.kind == "punct" and tok.text == "(":
                if i + 1 < len(tokens) and _is_kw(tokens[i + 1], "select"):
                    i = self._select(tokens, i + 1)
                    scope.opaque = True
                    pending_alias_for = None
                    # optional alias after the subquery
                    if i < len(tokens) and tokens[i].kind == "punct" and tokens[i].text == ")":
                        i += 1
                    if i < len(tokens) and _is_kw(tokens[i], "as"):
                        i += 1
                    if i < len(tokens) and tokens[i].kind == "ident":
                        scope.tables[tokens[i].text] = None
                        i += 1
                    continue
                i += 1
                continue
            if tok.kind == "punct" and tok.text == ")":
                return i
            if tok.kind == "hole":
                scope.opaque = True
                i += 1
                continue
            if tok.kind == "kw":
                low = tok.text.lower()
                if low in stops:
                    return i
                if low == "on":
                    i = self._collect_cols(
                        tokens, i + 1,
                        scope,
                        stops | {"join", "left", "right", "inner", "outer",
                                 "cross", "full"},
                    )
                    continue
                if low == "as":
                    i += 1
                    if i < len(tokens) and tokens[i].kind == "ident" and (
                        pending_alias_for is not None
                    ):
                        scope.tables[tokens[i].text] = pending_alias_for
                        pending_alias_for = None
                        i += 1
                    continue
                i += 1  # JOIN/LEFT/USING/... connective
                continue
            if tok.kind == "ident":
                if pending_alias_for is not None:
                    scope.tables[tok.text] = pending_alias_for
                    pending_alias_for = None
                else:
                    scope.tables[tok.text] = tok.text
                    pending_alias_for = tok.text
                i += 1
                continue
            if tok.kind == "punct" and tok.text == ",":
                pending_alias_for = None
            i += 1
        return i

    # -- statements ------------------------------------------------------
    def _select(self, tokens: List[_Tok], i: int) -> int:
        """Parse from the SELECT keyword at ``tokens[i]``; returns the
        index just past this scope (its closing ``)`` or end)."""

        scope = _Scope()
        i = self._collect_cols(tokens, i + 1, scope, {"from"})
        while i < len(tokens):
            tok = tokens[i]
            if tok.kind == "punct" and tok.text == ")":
                break
            if _is_kw(tok, "from"):
                i = self._parse_sources(tokens, i + 1, scope)
                continue
            if tok.kind == "kw" and tok.text.lower() in (
                "where", "group", "order", "having", "on",
            ):
                skip = 1
                if tok.text.lower() in ("group", "order") and _is_kw(
                    tokens[i + 1] if i + 1 < len(tokens) else None, "by"
                ):
                    skip = 2
                i = self._collect_cols(
                    tokens, i + skip, scope,
                    {"where", "group", "order", "having", "limit",
                     "offset", "union", "except", "intersect"},
                )
                continue
            if tok.kind == "kw" and tok.text.lower() in (
                "union", "except", "intersect",
            ):
                self._finish_scope(scope)
                scope = _Scope()
                while i < len(tokens) and not _is_kw(tokens[i], "select"):
                    i += 1
                i = self._collect_cols(tokens, i + 1, scope, {"from"})
                continue
            i += 1
        self._finish_scope(scope)
        return i

    def _insert(self, tokens: List[_Tok]) -> None:
        i = 1
        while i < len(tokens) and not _is_kw(tokens[i], "into"):
            i += 1
        i += 1
        if i >= len(tokens):
            return
        if tokens[i].kind == "hole":
            return
        if tokens[i].kind not in ("ident", "kw"):
            return
        table = tokens[i].text
        self._check_table(table)
        i += 1
        cols: List[str] = []
        cols_hole = False
        if i < len(tokens) and tokens[i].kind == "punct" and tokens[i].text == "(":
            depth = 1
            i += 1
            while i < len(tokens) and depth:
                tok = tokens[i]
                if tok.kind == "punct" and tok.text == "(":
                    depth += 1
                elif tok.kind == "punct" and tok.text == ")":
                    depth -= 1
                elif tok.kind == "hole":
                    cols_hole = True
                elif depth == 1 and tok.kind in ("ident", "kw"):
                    cols.append(tok.text)
                i += 1
        if table in self.schema and not cols_hole:
            for col in cols:
                if col not in self.schema[table]:
                    self.issues.append(
                        _Issue(
                            f"unknown column {col!r} in INSERT INTO {table} "
                            f"(not in its DDL)"
                        )
                    )
        # VALUES item arity vs the column list
        while i < len(tokens) and not _is_kw(tokens[i], "values"):
            if _is_kw(tokens[i], "select"):
                self._select(tokens, i)
                break
            i += 1
        if i < len(tokens) and _is_kw(tokens[i], "values"):
            i += 1
            if i < len(tokens) and tokens[i].text == "(":
                depth, items, empty, values_hole = 1, 1, True, False
                i += 1
                while i < len(tokens) and depth:
                    tok = tokens[i]
                    if tok.kind == "punct" and tok.text == "(":
                        depth += 1
                    elif tok.kind == "punct" and tok.text == ")":
                        depth -= 1
                    elif tok.kind == "hole":
                        values_hole = True
                    elif depth == 1 and tok.kind == "punct" and tok.text == ",":
                        items += 1
                    else:
                        empty = False
                    i += 1
                if empty:
                    items = 0
                if cols and not cols_hole and not values_hole and items != len(cols):
                    self.issues.append(
                        _Issue(
                            f"INSERT INTO {table} lists {len(cols)} column(s) "
                            f"but VALUES has {items} item(s)"
                        )
                    )
        # upsert tail: ON CONFLICT (cols) DO UPDATE SET col = excluded.col
        scope = _Scope()
        scope.tables[table] = table
        scope.tables["excluded"] = table
        while i < len(tokens):
            tok = tokens[i]
            if tok.kind == "kw" and tok.text.lower() in ("conflict", "set", "where"):
                i = self._collect_cols(
                    tokens, i + 1, scope, {"do", "set", "where"}
                )
                continue
            i += 1
        self._finish_scope(scope)

    def _update(self, tokens: List[_Tok]) -> None:
        i = 1
        while i < len(tokens) and tokens[i].kind == "kw" and tokens[i].text.lower() in (
            "or", "rollback", "abort", "replace", "ignore", "fail",
        ):
            i += 1
        if i >= len(tokens) or tokens[i].kind == "hole":
            return
        if tokens[i].kind not in ("ident", "kw"):
            return
        table = tokens[i].text
        self._check_table(table)
        scope = _Scope()
        scope.tables[table] = table
        i = self._collect_cols(tokens, i + 1, scope, set())
        self._finish_scope(scope)

    def _delete(self, tokens: List[_Tok]) -> None:
        i = 1
        if i < len(tokens) and _is_kw(tokens[i], "from"):
            i += 1
        if i >= len(tokens) or tokens[i].kind == "hole":
            return
        if tokens[i].kind not in ("ident", "kw"):
            return
        table = tokens[i].text
        self._check_table(table)
        scope = _Scope()
        scope.tables[table] = table
        i = self._collect_cols(tokens, i + 1, scope, set())
        self._finish_scope(scope)


# ---------------------------------------------------------------------------
# AST-side extraction
# ---------------------------------------------------------------------------

def _fold(node: ast.AST, assigns: Dict[str, str]) -> Optional[str]:
    """Best-effort constant fold of a SQL expression; dynamic -> HOLE."""

    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else HOLE
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append(HOLE)
        return "".join(parts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _fold(node.left, assigns)
        right = _fold(node.right, assigns)
        if left is None and right is None:
            return None
        return (left or HOLE) + (right or HOLE)
    if isinstance(node, ast.Name) and node.id in assigns:
        return assigns[node.id]
    if isinstance(node, (ast.Call, ast.IfExp, ast.Subscript, ast.Attribute)):
        return HOLE
    return None


def _local_sql_assigns(func: ast.AST, before_line: int) -> Dict[str, str]:
    """Fold ``sql = ...`` / ``sql += ...`` chains lexically before a call."""

    stmts: List[Tuple[int, str, ast.AST, bool]] = []
    for node in _own_nodes(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            stmts.append((node.lineno, node.targets[0].id, node.value, False))
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, ast.Add
        ) and isinstance(node.target, ast.Name):
            stmts.append((node.lineno, node.target.id, node.value, True))
    assigns: Dict[str, str] = {}
    for lineno, name, value, aug in sorted(stmts, key=lambda s: s[0]):
        if lineno >= before_line:
            break
        folded = _fold(value, assigns)
        if folded is None:
            assigns.pop(name, None)
            continue
        if aug and name in assigns:
            assigns[name] = assigns[name] + folded
        elif not aug:
            assigns[name] = folded
        else:
            assigns.pop(name, None)
    return assigns


def _literal_len(node: ast.AST) -> Optional[int]:
    if isinstance(node, (ast.Tuple, ast.List)):
        if any(isinstance(e, ast.Starred) for e in node.elts):
            return None
        return len(node.elts)
    return None


@register_checker("sql-schema", synonyms=("sql", "schema-drift"))
class SqlSchemaChecker(Checker):
    """Proves every executed SQL string matches the declared schema."""

    description = (
        "SQL executed in store/ must reference only tables/columns "
        "declared in store/schema.py, with matching placeholder arity"
    )
    hint = (
        "update the query to match store/schema.py (or bump the DDL and "
        "SCHEMA_VERSION together)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        schema = self._load_schema(project)
        if schema is None:
            return
        graph = project.graph()
        for module in project.targets:
            if "store" not in module.rel.split("/"):
                continue
            index = graph.modules.get(module.rel)
            if index is None:
                continue
            module_assigns = self._module_assigns(module)
            for qual, func in index.functions.items():
                yield from self._check_body(
                    schema, module, func, module_assigns
                )
            # statements run at import time (e.g. CLI glue at module scope)
            yield from self._check_body(
                schema, module, module.tree, module_assigns
            )

    # ------------------------------------------------------------------
    def _load_schema(self, project: Project) -> Optional[Dict[str, Set[str]]]:
        module = project.context_module(SCHEMA_HOME)
        if module is None:
            return None
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "_DDL"
                    for t in node.targets
                )
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                schema = parse_ddl(node.value.value)
                if schema:
                    return schema
        return None

    @staticmethod
    def _module_assigns(module: Module) -> Dict[str, str]:
        assigns: Dict[str, str] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and (
                isinstance(stmt.targets[0], ast.Name)
            ):
                folded = _fold(stmt.value, assigns)
                if folded is not None:
                    assigns[stmt.targets[0].id] = folded
        return assigns

    def _check_body(
        self,
        schema: Dict[str, Set[str]],
        module: Module,
        func: ast.AST,
        module_assigns: Dict[str, str],
    ) -> Iterator[Finding]:
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            method = dotted_name(node.func).split(".")[-1]
            if method not in ("execute", "executemany", "executescript"):
                continue
            if not node.args:
                continue
            sql = self._sql_text(node.args[0], func, node, module_assigns)
            if sql is None:
                continue
            analyzer = _Analyzer(schema)
            for stmt in _split_statements(_tokenize(sql)):
                analyzer.analyze(stmt)
            for issue in analyzer.issues:
                yield self.finding(module, node, issue.message)
            yield from self._check_arity(
                module, node, method, sql, analyzer.placeholders
            )

    def _sql_text(
        self,
        arg: ast.AST,
        func: ast.AST,
        call: ast.Call,
        module_assigns: Dict[str, str],
    ) -> Optional[str]:
        if isinstance(arg, ast.Name):
            assigns = dict(module_assigns)
            assigns.update(_local_sql_assigns(func, call.lineno))
            return assigns.get(arg.id)
        folded = _fold(arg, module_assigns)
        if folded == HOLE:
            return None  # nothing constant to check
        return folded

    def _check_arity(
        self,
        module: Module,
        node: ast.Call,
        method: str,
        sql: str,
        placeholders: int,
    ) -> Iterator[Finding]:
        if HOLE in sql or len(node.args) < 2:
            return
        params = node.args[1]
        if method == "executemany":
            if isinstance(params, (ast.Tuple, ast.List)):
                for row in params.elts:
                    got = _literal_len(row)
                    if got is not None and got != placeholders:
                        yield self.finding(
                            module, node,
                            f"SQL has {placeholders} placeholder(s) but an "
                            f"executemany row passes {got}",
                        )
            return
        got = _literal_len(params)
        if got is not None and got != placeholders:
            yield self.finding(
                module, node,
                f"SQL has {placeholders} placeholder(s) but the call "
                f"passes {got} parameter(s)",
            )
