"""The deprecated-api checker: retired shims must not gain new callers.

PR 10 retired the pre-redesign entry points -- ``compile_qft``,
``run_cells``, the ``experiment_*`` family and ``run_all`` -- to
runtime-warning shims over :func:`repro.compile`,
:func:`repro.eval.executors.run_specs` and the ``plan()``/``execute()``
run API.  The runtime ``DeprecationWarning`` only fires on code that
*executes*; this checker makes the retirement a static property of the
tree, so a new import or call of a retired name is a lint failure even in
a path no test covers.

Shim-home modules are exempt: the files that *define* the shims (and the
package ``__init__`` files that re-export them for backwards
compatibility) necessarily mention the names.  A test that deliberately
exercises a shim's contract suppresses the finding with
``# repro-lint: ignore[deprecated-api]`` on the offending line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from .framework import Checker, Finding, Module, Project, register_checker

__all__ = ["DeprecatedApiChecker", "DEPRECATED_NAMES"]

#: retired name -> the supported replacement named in the finding
DEPRECATED_NAMES: Dict[str, str] = {
    "compile_qft": "repro.compile(workload='qft', architecture=..., "
    "approach='ours')",
    "run_cells": "repro.eval.executors.run_specs (or runs.plan()/execute())",
    "run_all": "execute(plan(name, profile)) per experiment",
    "experiment_table1": 'execute(plan("table1", profile))',
    "experiment_figure17_heavyhex": 'execute(plan("fig17", profile))',
    "experiment_figure18_sycamore": 'execute(plan("fig18", profile))',
    "experiment_figure19_lattice": 'execute(plan("fig19", profile))',
    "experiment_figure27_sabre_randomness": 'execute(plan("fig27", profile))',
    "experiment_relaxed_vs_strict": 'execute(plan("relaxed", profile))',
    "experiment_partition_ablation": 'execute(plan("partition", profile))',
    "experiment_linearity": 'execute(plan("linearity", profile))',
    "experiment_workload_sweep": 'execute(plan("sweep", profile))',
}

#: repo-relative suffixes of the modules that define or re-export the shims
SHIM_HOMES = (
    "repro/core/mapper.py",
    "repro/eval/parallel.py",
    "repro/eval/experiments.py",
    "repro/__init__.py",
    "repro/core/__init__.py",
    "repro/eval/__init__.py",
)


def _is_shim_home(module: Module) -> bool:
    rel = module.rel
    return any(rel.endswith(suffix) for suffix in SHIM_HOMES)


@register_checker("deprecated-api", synonyms=("deprecated", "shims"))
class DeprecatedApiChecker(Checker):
    """Flags imports and uses of runtime-deprecated entry points."""

    description = (
        "no new imports or calls of retired shims (compile_qft, run_cells, "
        "experiment_*/run_all); use repro.compile / run_specs / "
        "plan()+execute()"
    )
    hint = "port the call site to the replacement the message names"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.targets:
            if _is_shim_home(module):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in DEPRECATED_NAMES:
                        yield self._finding(module, node, alias.name, "import")
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in DEPRECATED_NAMES:
                    yield self._finding(module, node, node.id, "use")
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                if node.attr in DEPRECATED_NAMES:
                    yield self._finding(module, node, node.attr, "use")

    def _finding(
        self, module: Module, node: ast.AST, name: str, kind: str
    ) -> Finding:
        return self.finding(
            module, node,
            f"{kind} of deprecated '{name}'; use "
            f"{DEPRECATED_NAMES[name]}",
            hint=f"replace {name} with {DEPRECATED_NAMES[name]}",
        )
