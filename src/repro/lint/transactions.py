"""The transaction-discipline checker: every BEGIN commits or rolls back.

The experiment store's merge-conflict detection and crash-durability
arguments (PR 8) assume explicit transactions: a ``BEGIN IMMEDIATE``
that is not closed on *every* path -- the normal path and every raising
path -- leaves the database write-locked until the connection dies, and
a bare write outside any transaction silently runs in autocommit where
a multi-statement invariant (delete-then-reinsert of metrics rows, say)
can tear under a crash.  Until now this held by code review; the chaos
suite only samples crash points.

Two rules, CFG-walked over try/except/finally/with:

1. **Closure on every path** -- for each ``execute("BEGIN ...")``:

   * inside a context-manager helper class (``__enter__`` holds the
     BEGIN), the class's ``__exit__`` must contain both a ``commit`` and
     a ``rollback`` (the success and failure arms);
   * otherwise the code following the BEGIN must reach a
     ``commit``/``rollback`` on its normal path (no ``return`` or
     fall-off-the-end before closing), and a ``finally`` or a broad
     ``except`` that closes the transaction must guard the raising path.

2. **No raw writes outside a transaction helper** -- an
   ``execute``/``executemany`` whose SQL starts with
   INSERT/UPDATE/DELETE/REPLACE must run on a connection that is
   provably inside a transaction: bound by ``with <tx-helper>() as
   conn``, lexically after a BEGIN on the same receiver, inside a
   helper-class method, or received as a parameter whose every call
   site (via the shared call graph) passes a transaction-scoped
   connection.  SELECT/PRAGMA/VACUUM/DDL are exempt (VACUUM *cannot*
   run inside a transaction; schema bootstrap runs in autocommit by
   design).

Transaction helpers are recognized *structurally*, not by name: a class
whose ``__enter__`` executes a BEGIN, and any function returning an
instance of one (``ExperimentStore._tx``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .framework import (
    Checker,
    Finding,
    Module,
    Project,
    dotted_name,
    register_checker,
)
from .graph import ProjectGraph

__all__ = ["TransactionChecker"]

#: SQL verbs that mutate rows (DDL and VACUUM are deliberately exempt)
_WRITE_VERBS = frozenset({"INSERT", "UPDATE", "DELETE", "REPLACE"})

# block outcomes for the normal-path walk
_CLOSED = "closed"  # commit/rollback reached
_OPEN = "open"  # fell through without closing
_RETURN = "return"  # escaped via return before closing
_RAISE = "raise"  # diverted to the raising path (rule 1b covers it)


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes
    (those are visited as functions in their own right)."""

    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _sql_of(call: ast.Call) -> Optional[str]:
    """The constant SQL string of an execute-style call, if constant."""

    if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
        call.args[0].value, str
    ):
        return call.args[0].value
    return None


def _sql_verb(sql: str) -> str:
    stripped = sql.lstrip().lstrip("(")
    first = stripped.split(None, 1)[0] if stripped.split() else ""
    return first.upper().rstrip(";")


def _is_execute(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    return name.split(".")[-1] in ("execute", "executemany", "executescript")


def _is_begin(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and _is_execute(node)
        and (_sql_of(node) or "").lstrip().upper().startswith("BEGIN")
    )


def _closes(node: ast.AST) -> bool:
    """Does this expression commit or roll back a transaction?"""

    for n in ast.walk(node):
        if not isinstance(n, ast.Call):
            continue
        tail = dotted_name(n.func).split(".")[-1]
        if tail in ("commit", "rollback"):
            return True
        if _is_execute(n):
            verb = _sql_verb(_sql_of(n) or "")
            if verb in ("COMMIT", "ROLLBACK", "END"):
                return True
    return False


def _receiver(call: ast.Call) -> str:
    """``conn.execute(...)`` -> ``conn``; ``self._conn.execute`` -> ``self._conn``."""

    name = dotted_name(call.func)
    return name.rsplit(".", 1)[0] if "." in name else ""


class _FuncInfo:
    """Per-function facts rule 2 needs: tx-scoped names, BEGIN lines."""

    def __init__(self) -> None:
        self.tx_names: Set[str] = set()  # bound by `with tx() as name`
        self.begin_lines: Dict[str, int] = {}  # receiver -> first BEGIN line
        self.params: Set[str] = set()


@register_checker("transaction-discipline", synonyms=("transactions", "tx"))
class TransactionChecker(Checker):
    """Proves explicit transactions close on every path and writes stay
    inside them."""

    description = (
        "every BEGIN IMMEDIATE reaches commit() or rollback() on every "
        "non-raising and raising path, and no raw execute() writes run "
        "outside a transaction helper"
    )
    hint = (
        "wrap writes in the store's transaction helper (`with self._tx() "
        "as conn:`) and close every BEGIN in a finally/except"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project.graph()
        helper_classes = self._helper_classes(graph)
        tx_providers = self._tx_providers(graph, helper_classes)
        for module in project.targets:
            index = graph.modules.get(module.rel)
            if index is None:
                continue
            yield from self._check_begins(module, index, helper_classes)
            yield from self._check_raw_writes(
                graph, module, index, helper_classes, tx_providers
            )

    # -- helper recognition ------------------------------------------------
    def _helper_classes(self, graph: ProjectGraph) -> Set[Tuple[str, str]]:
        """(rel, class qual) of context managers whose __enter__ BEGINs."""

        out: Set[Tuple[str, str]] = set()
        for rel in sorted(graph.modules):
            index = graph.modules[rel]
            for qual in index.classes:
                enter = index.functions.get(f"{qual}.__enter__")
                if enter is None:
                    continue
                if any(_is_begin(n) for n in _own_nodes(enter)):
                    out.add((rel, qual))
        return out

    def _tx_providers(
        self, graph: ProjectGraph, helper_classes: Set[Tuple[str, str]]
    ) -> Set[Tuple[str, str]]:
        """(rel, func qual) of functions yielding/returning a transaction.

        A function whose ``return`` constructs a helper class, or a
        generator (``@contextmanager`` style) that itself BEGINs.
        """

        out: Set[Tuple[str, str]] = set()
        for rel in sorted(graph.modules):
            index = graph.modules[rel]
            for qual, func in index.functions.items():
                for node in _own_nodes(func):
                    if isinstance(node, ast.Return) and isinstance(
                        node.value, ast.Call
                    ):
                        refs = graph.resolve_call(
                            rel, qual, dotted_name(node.value.func)
                        )
                        for ref in refs:
                            cls = (
                                ref.qual.rsplit(".", 1)[0]
                                if "." in ref.qual
                                else ref.qual
                            )
                            if (ref.rel, cls) in helper_classes:
                                out.add((rel, qual))
                if any(_is_begin(n) for n in _own_nodes(func)) and any(
                    isinstance(n, (ast.Yield, ast.YieldFrom))
                    for n in _own_nodes(func)
                ):
                    out.add((rel, qual))
        return out

    # -- rule 1: BEGIN closes on every path --------------------------------
    def _check_begins(
        self,
        module: Module,
        index,
        helper_classes: Set[Tuple[str, str]],
    ) -> Iterator[Finding]:
        for qual, func in index.functions.items():
            begins = sorted(
                (
                    n
                    for n in _own_nodes(func)
                    if isinstance(n, (ast.Expr, ast.Assign))
                    and _is_begin(n.value)
                ),
                key=lambda n: n.lineno,
            )
            if not begins:
                continue
            if qual.endswith(".__enter__"):
                cls = qual.rsplit(".", 1)[0]
                yield from self._check_helper_class(
                    module, index, cls, begins[0]
                )
                continue
            for begin in begins:
                yield from self._check_begin_paths(module, func, begin)

    def _check_helper_class(
        self, module: Module, index, cls: str, begin: ast.stmt
    ) -> Iterator[Finding]:
        exit_func = index.functions.get(f"{cls}.__exit__")
        if exit_func is None:
            yield self.finding(
                module, begin,
                f"BEGIN in {cls}.__enter__() but {cls} has no __exit__ "
                "to commit or roll back",
            )
            return
        has_commit = has_rollback = False
        for n in ast.walk(exit_func):
            if not isinstance(n, ast.Call):
                continue
            tail = dotted_name(n.func).split(".")[-1]
            sql = _sql_verb(_sql_of(n) or "") if _is_execute(n) else ""
            if tail == "commit" or sql == "COMMIT":
                has_commit = True
            if tail == "rollback" or sql == "ROLLBACK":
                has_rollback = True
        if not has_commit or not has_rollback:
            missing = "commit" if not has_commit else "rollback"
            yield self.finding(
                module, begin,
                f"BEGIN in {cls}.__enter__() but {cls}.__exit__() never "
                f"calls {missing}(); the "
                f"{'success' if missing == 'commit' else 'failure'} arm "
                "leaves the transaction open",
            )

    def _check_begin_paths(
        self, module: Module, func: ast.AST, begin: ast.stmt
    ) -> Iterator[Finding]:
        chain = self._block_chain(func, begin)
        if chain is None:
            return
        # normal path: the statements after the BEGIN, walking outward;
        # raising path: any enclosing *or trailing* try whose finally /
        # broad handler closes the transaction
        outcome = _OPEN
        guarded = False
        for block, idx, owner in chain:
            trailing = block[idx + 1 :]
            if outcome == _OPEN:
                outcome = self._block_outcome(trailing)
            for stmt in trailing:
                if isinstance(stmt, ast.Try) and self._try_guards(stmt):
                    guarded = True
            if isinstance(owner, ast.Try):
                if self._try_guards(owner):
                    guarded = True
                if owner.finalbody and any(
                    _closes(s) for s in owner.finalbody
                ) and outcome == _OPEN:
                    outcome = _CLOSED
        if outcome in (_OPEN, _RETURN):
            how = (
                "falls off the end"
                if outcome == _OPEN
                else "returns"
            )
            yield self.finding(
                module, begin,
                f"BEGIN {how} without commit() or rollback() on the "
                "non-raising path",
            )
        if not guarded:
            yield self.finding(
                module, begin,
                "no finally/except closes this BEGIN on the raising "
                "path; an exception leaves the database write-locked",
            )

    def _try_guards(self, node: ast.Try) -> bool:
        """Does this try close the transaction when an exception escapes?"""

        if node.finalbody and any(_closes(s) for s in node.finalbody):
            return True
        return any(
            self._handler_is_broad(h) and any(_closes(s) for s in h.body)
            for h in node.handlers
        )

    @staticmethod
    def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names = {
            n.id
            for n in ast.walk(handler.type)
            if isinstance(n, ast.Name)
        }
        return bool(names & {"Exception", "BaseException"})

    def _block_chain(
        self, func: ast.AST, target: ast.stmt
    ) -> Optional[List[Tuple[List[ast.stmt], int, ast.AST]]]:
        """Innermost-out (block, index-of-containing-stmt, owner) chain.

        ``owner`` is the compound statement owning each block (the Try
        whose body the BEGIN sits in, etc.); the function def owns the
        outermost block.
        """

        def find(
            block: List[ast.stmt], owner: ast.AST
        ) -> Optional[List[Tuple[List[ast.stmt], int, ast.AST]]]:
            for i, stmt in enumerate(block):
                if stmt is target:
                    return [(block, i, owner)]
                for sub in self._sub_blocks(stmt):
                    found = find(sub, stmt)
                    if found is not None:
                        return found + [(block, i, owner)]
            return None

        return find(list(func.body), func)

    @staticmethod
    def _sub_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
        out: List[List[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, attr, None)
            if sub and isinstance(sub, list) and all(
                isinstance(s, ast.stmt) for s in sub
            ):
                out.append(sub)
        for handler in getattr(stmt, "handlers", []) or []:
            out.append(handler.body)
        return out

    def _block_outcome(self, stmts: List[ast.stmt]) -> str:
        """How a straight-line block leaves the transaction."""

        for stmt in stmts:
            if _closes(stmt) and not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # a close buried under an `if` is handled below; a direct
                # statement-level close settles the path
                if isinstance(stmt, (ast.Expr, ast.Assign, ast.Return)):
                    return _CLOSED
            if isinstance(stmt, ast.Return):
                return _RETURN
            if isinstance(stmt, ast.Raise):
                return _RAISE
            if isinstance(stmt, ast.If):
                first = self._block_outcome(stmt.body)
                second = self._block_outcome(stmt.orelse)
                pair = {first, second}
                if _OPEN in pair:
                    continue  # some arm falls through: keep scanning
                if _RETURN in pair:
                    return _RETURN
                return _CLOSED if _CLOSED in pair else _RAISE
            if isinstance(stmt, ast.Try):
                if stmt.finalbody and any(_closes(s) for s in stmt.finalbody):
                    return _CLOSED
                body_out = self._block_outcome(
                    list(stmt.body) + list(stmt.orelse)
                )
                if body_out == _OPEN:
                    continue
                return body_out
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                sub = self._block_outcome(stmt.body)
                if sub == _OPEN:
                    continue
                return sub
            # loops may run zero times: no guarantee, keep scanning
        return _OPEN

    # -- rule 2: writes outside a transaction ------------------------------
    def _check_raw_writes(
        self,
        graph: ProjectGraph,
        module: Module,
        index,
        helper_classes: Set[Tuple[str, str]],
        tx_providers: Set[Tuple[str, str]],
    ) -> Iterator[Finding]:
        helper_quals = {
            cls for rel, cls in helper_classes if rel == module.rel
        }
        for qual, func in index.functions.items():
            cls = qual.rsplit(".", 1)[0] if "." in qual else ""
            if cls in helper_quals:
                continue  # the helper's own COMMIT/ROLLBACK machinery
            info = self._func_info(graph, module.rel, qual, func, helper_classes, tx_providers)
            for node in _own_nodes(func):
                if not isinstance(node, ast.Call) or not _is_execute(node):
                    continue
                sql = _sql_of(node) or self._folded_sql_head(node)
                if sql is None:
                    continue
                verb = _sql_verb(sql)
                if verb not in _WRITE_VERBS:
                    continue
                recv = _receiver(node)
                if recv in info.tx_names:
                    continue
                begin_line = info.begin_lines.get(recv)
                if begin_line is not None and begin_line <= node.lineno:
                    continue
                if recv.split(".")[0] in info.params and self._param_always_tx(
                    graph, module.rel, qual, recv.split(".")[0],
                    helper_classes, tx_providers, set()
                ):
                    continue
                where = recv or "a connection"
                yield self.finding(
                    module, node,
                    f"{verb} on {where} outside any transaction helper; "
                    "autocommit writes tear under crashes and bypass "
                    "merge-conflict detection",
                )

    def _folded_sql_head(self, call: ast.Call) -> Optional[str]:
        """Best-effort leading SQL text for non-constant first args."""

        if not call.args:
            return None
        arg = call.args[0]
        if isinstance(arg, ast.JoinedStr):
            for part in arg.values:
                if isinstance(part, ast.Constant) and isinstance(
                    part.value, str
                ):
                    return part.value
            return None
        if isinstance(arg, ast.BinOp):
            left = arg
            while isinstance(left, ast.BinOp):
                left = left.left
            if isinstance(left, ast.Constant) and isinstance(left.value, str):
                return left.value
        return None

    def _func_info(
        self,
        graph: ProjectGraph,
        rel: str,
        qual: str,
        func: ast.AST,
        helper_classes: Set[Tuple[str, str]],
        tx_providers: Set[Tuple[str, str]],
    ) -> _FuncInfo:
        info = _FuncInfo()
        args = func.args
        info.params = {
            a.arg
            for a in args.posonlyargs + args.args + args.kwonlyargs
        }
        for node in _own_nodes(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if not isinstance(expr, ast.Call):
                        continue
                    if self._is_tx_call(
                        graph, rel, qual, expr, helper_classes, tx_providers
                    ) and isinstance(item.optional_vars, ast.Name):
                        info.tx_names.add(item.optional_vars.id)
            if isinstance(node, ast.Call) and _is_begin(node):
                recv = _receiver(node)
                line = info.begin_lines.get(recv)
                if line is None or node.lineno < line:
                    info.begin_lines[recv] = node.lineno
        return info

    def _is_tx_call(
        self,
        graph: ProjectGraph,
        rel: str,
        qual: str,
        call: ast.Call,
        helper_classes: Set[Tuple[str, str]],
        tx_providers: Set[Tuple[str, str]],
    ) -> bool:
        name = dotted_name(call.func)
        refs = graph.resolve_call(rel, qual, name)
        if not refs and "." in name:
            refs = graph.functions_by_tail(name.split(".")[-1])
        for ref in refs:
            cls = ref.qual.rsplit(".", 1)[0] if "." in ref.qual else ref.qual
            if (ref.rel, cls) in helper_classes:
                return True
            func_qual = ref.qual
            if func_qual.endswith(".__init__"):
                func_qual = func_qual.rsplit(".", 1)[0]
            if (ref.rel, func_qual) in tx_providers or (
                ref.rel, ref.qual
            ) in tx_providers:
                return True
        return False

    def _param_always_tx(
        self,
        graph: ProjectGraph,
        rel: str,
        qual: str,
        param: str,
        helper_classes: Set[Tuple[str, str]],
        tx_providers: Set[Tuple[str, str]],
        visiting: Set[Tuple[str, str]],
    ) -> bool:
        """Every call site passes a transaction-scoped connection for
        ``param`` (recursive over the shared call graph, cycle-safe)."""

        if (rel, qual) in visiting or len(visiting) > 8:
            return False
        visiting = visiting | {(rel, qual)}
        func = graph.modules[rel].functions.get(qual)
        if func is None:
            return False
        args = func.args
        names = [a.arg for a in args.posonlyargs + args.args]
        try:
            pos = names.index(param)
        except ValueError:
            return False
        # `self`-style methods: caller argument positions shift by one
        skip_self = 1 if names and names[0] in ("self", "cls") else 0
        sites = graph.calls_by_tail(qual.split(".")[-1])
        found_site = False
        for caller_rel, caller_qual, site in sites:
            match = graph.resolve_call(caller_rel, caller_qual, site.name)
            if match and all(r.qual != qual for r in match):
                continue  # resolved to some other function of that tail
            call = site.node
            arg_node: Optional[ast.expr] = None
            call_pos = pos - skip_self
            if 0 <= call_pos < len(call.args):
                arg_node = call.args[call_pos]
            for k in call.keywords:
                if k.arg == param:
                    arg_node = k.value
            if arg_node is None:
                continue
            found_site = True
            passed = dotted_name(arg_node)
            if not passed:
                return False
            caller_func = graph.modules[caller_rel].functions.get(caller_qual)
            if caller_func is None:
                return False
            caller_info = self._func_info(
                graph, caller_rel, caller_qual, caller_func,
                helper_classes, tx_providers,
            )
            if passed in caller_info.tx_names:
                continue
            begin_line = caller_info.begin_lines.get(passed)
            if begin_line is not None and begin_line <= call.lineno:
                continue
            if passed.split(".")[0] in caller_info.params and (
                self._param_always_tx(
                    graph, caller_rel, caller_qual, passed.split(".")[0],
                    helper_classes, tx_providers, visiting,
                )
            ):
                continue
            return False
        return found_site
