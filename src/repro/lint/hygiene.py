"""The registry-hygiene checker: every registered name earns its keep.

The PR-3 registries (workloads, approaches, architectures, executors,
experiments) are the repo's public vocabulary: names appear in the CLI,
in cache keys and in the paper tables.  Three kinds of rot creep into
registration tables that nothing re-reads:

* **Undocumented entries.**  Every ``@register_*`` target must carry a
  docstring -- ``--list`` output, did-you-mean errors and the README
  tables are generated from registrations, and an entry nobody described
  is an entry nobody can choose deliberately.
* **Colliding synonyms.**  The runtime raises
  :class:`~repro.registry.DuplicateRegistrationError` at import time, but
  only for modules that actually get imported together; the lint check
  sees every registration in the tree at once, case-insensitively, and
  pins collisions before any interpreter does.
* **Untested names.**  A registered name no test ever spells is a name
  that can break (or vanish) without CI noticing.  Each canonical name
  must appear as a string literal somewhere under ``tests/``.

Registration sites are recognized syntactically: ``@register_<kind>``
decorators with a literal first-argument name (approaches,
architectures, executors, experiments), the bare ``@register_workload``
class decorator (name/synonyms read from class-body assignments), and
``@register_specialist`` (no name -- docstring rule only).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from .framework import (
    Checker,
    Finding,
    Module,
    Project,
    dotted_name,
    register_checker,
)

__all__ = ["RegistryHygieneChecker"]

#: decorator names treated as registrations (suffix -> registry family)
_DECORATOR_PREFIX = "register_"

#: registration decorators that carry no name (docstring rule only)
_NAMELESS = frozenset({"register_specialist"})


class _Registration:
    def __init__(
        self,
        module: Module,
        node: ast.AST,
        family: str,
        name: Optional[str],
        synonyms: Tuple[str, ...],
        has_docstring: bool,
        target: str,
    ) -> None:
        self.module = module
        self.node = node
        self.family = family
        self.name = name
        self.synonyms = synonyms
        self.has_docstring = has_docstring
        self.target = target  # decorated function/class name, for messages


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _literal_str_tuple(node: ast.AST) -> Tuple[str, ...]:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out = []
        for elt in node.elts:
            s = _literal_str(elt)
            if s is not None:
                out.append(s)
        return tuple(out)
    return ()


@register_checker("registry-hygiene", synonyms=("hygiene", "registry"))
class RegistryHygieneChecker(Checker):
    """Audits every @register_* site for docs, collisions and test cover."""

    description = (
        "every @register_* entry has a docstring, collision-free synonyms, "
        "and a test referencing its canonical name"
    )
    hint = (
        "document the entry, deduplicate its synonyms, and reference the "
        "name from a test"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        registrations: List[_Registration] = []
        for module in project.targets:
            registrations.extend(self._registrations(module))
        yield from self._check_docstrings(registrations)
        yield from self._check_collisions(registrations)
        yield from self._check_test_references(project, registrations)

    # ------------------------------------------------------------------
    def _registrations(self, module: Module) -> Iterator[_Registration]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for dec in node.decorator_list:
                reg = self._parse_decorator(module, node, dec)
                if reg is not None:
                    yield reg

    def _parse_decorator(
        self, module: Module, node: ast.AST, dec: ast.AST
    ) -> Optional[_Registration]:
        if isinstance(dec, ast.Call):
            dec_name = dotted_name(dec.func)
        else:
            dec_name = dotted_name(dec)
        tail = dec_name.split(".")[-1]
        if not tail.startswith(_DECORATOR_PREFIX):
            return None
        family = tail[len(_DECORATOR_PREFIX):]
        if not family:
            return None
        has_doc = ast.get_docstring(node) is not None
        name: Optional[str] = None
        synonyms: Tuple[str, ...] = ()
        if isinstance(dec, ast.Call):
            if dec.args:
                name = _literal_str(dec.args[0])
            for kw in dec.keywords:
                if kw.arg == "synonyms":
                    synonyms = _literal_str_tuple(kw.value)
                elif kw.arg == "description" and (_literal_str(kw.value) or ""):
                    # an inline description literal is documentation too
                    # (the experiment registry prefers it over __doc__)
                    has_doc = True
        if tail in _NAMELESS:
            name = None
        elif name is None and isinstance(node, ast.ClassDef):
            # bare class decorator (@register_workload): read class body
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    if stmt.targets[0].id == "name":
                        name = _literal_str(stmt.value)
                    elif stmt.targets[0].id == "synonyms":
                        synonyms = _literal_str_tuple(stmt.value)
        return _Registration(
            module, node, family, name, synonyms, has_doc,
            target=getattr(node, "name", "<anonymous>"),
        )

    # ------------------------------------------------------------------
    def _check_docstrings(
        self, registrations: List[_Registration]
    ) -> Iterator[Finding]:
        for reg in registrations:
            if not reg.has_docstring:
                label = reg.name or reg.target
                yield self.finding(
                    reg.module, reg.node,
                    f"registered {reg.family} {label!r} has no docstring; "
                    "registry tables and --list output read it",
                    hint="add a docstring describing the entry",
                )

    def _check_collisions(
        self, registrations: List[_Registration]
    ) -> Iterator[Finding]:
        claimed: Dict[Tuple[str, str], str] = {}
        for reg in registrations:
            if reg.name is None:
                continue
            spellings = [reg.name, *reg.synonyms]
            local_seen = set()
            for spelling in spellings:
                key = (reg.family, spelling.lower())
                if spelling.lower() in local_seen:
                    yield self.finding(
                        reg.module, reg.node,
                        f"{reg.family} {reg.name!r} lists synonym "
                        f"{spelling!r} more than once",
                    )
                    continue
                local_seen.add(spelling.lower())
                if key in claimed:
                    yield self.finding(
                        reg.module, reg.node,
                        f"{reg.family} name {spelling!r} (registered by "
                        f"{reg.name!r}) collides with {claimed[key]!r}",
                        hint="pick a unique spelling; the runtime would "
                        "raise DuplicateRegistrationError at import time",
                    )
                else:
                    claimed[key] = reg.name
        return

    def _check_test_references(
        self, project: Project, registrations: List[_Registration]
    ) -> Iterator[Finding]:
        tests = project.tests_text()
        if not tests:
            # no tests tree next to the linted files (e.g. linting a loose
            # snippet): the reference rule has nothing to check against
            return
        for reg in registrations:
            if reg.name is None:
                continue
            if f'"{reg.name}"' in tests or f"'{reg.name}'" in tests:
                continue
            yield self.finding(
                reg.module, reg.node,
                f"registered {reg.family} {reg.name!r} is never referenced "
                "by name in any test",
                hint="add a test that exercises the entry through the "
                "registry by its canonical name",
            )
