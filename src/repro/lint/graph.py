"""The whole-program index: symbols, imports, call graph, reachability.

Before this module every cross-file checker hand-rolled its own
resolution: the purity checker matched call targets by dotted-name tail,
the hygiene checker grepped the tests tree, and a checker that needed
"which functions run inside a forked worker?" had nowhere to ask.  The
graph layer builds -- once per lint run, shared by every checker via
:meth:`Project.graph` -- a project-wide index over the already-parsed
:class:`~repro.lint.framework.Project`:

:class:`ModuleIndex`
    Per-module symbol tables: defined functions/classes (dotted quals,
    ``ResultCache.key``), ``import x as y`` aliases, ``from m import f
    as g`` bindings with relative-import resolution, and module-scope
    ``x = y`` re-export aliases.
:class:`ProjectGraph`
    Import-aware name resolution (:meth:`resolve_call`), canonical
    external names (:meth:`external_name`, so ``from sqlite3 import
    connect as c`` still reads as ``sqlite3.connect``), a call graph
    with forward and reverse edges (:meth:`callees_of` /
    :meth:`callers_of`), and generic BFS reachability
    (:meth:`reachable`) in either direction.

Resolution is *exact* where imports allow (bare names, ``self.method``,
``module.func``, re-export chains) and falls back to dotted-name *tail*
matching for attribute calls on unresolvable receivers (``cache.key(...)``
matches ``ResultCache.key``) -- the same over-approximation the purity
checker always used, now in one place.  Fuzzy edges are marked so
clients can ask for exact-only reachability.

Everything here is pure AST bookkeeping: the linter must be able to
judge a tree too broken to import.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .framework import Module, Project, dotted_name, iter_functions

__all__ = [
    "FunctionRef",
    "CallSite",
    "ModuleIndex",
    "ProjectGraph",
    "module_dotted",
]

#: qual used for a module's top-level (import-time) statements
MODULE_BODY = "<module>"

#: how far a ``from a import b`` re-export chain is chased before giving up
_REEXPORT_DEPTH = 10


@dataclass(frozen=True, order=True)
class FunctionRef:
    """One function (or class body, or module body) in the project.

    ``rel`` is the repo-relative path; ``qual`` the dotted qualified name
    inside the module (``ResultCache.key``), or :data:`MODULE_BODY` for
    import-time statements.
    """

    rel: str
    qual: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.rel}:{self.qual}"


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    name: str  # dotted best-effort target ("" when not a name chain)

    @property
    def tail(self) -> str:
        return self.name.split(".")[-1] if self.name else ""


def module_dotted(rel: str) -> Tuple[str, bool]:
    """``src/repro/eval/cache.py`` -> (``"repro.eval.cache"``, is_package).

    The leading ``src`` component is dropped (the repo's import root);
    ``__init__.py`` names the package itself.
    """

    path = rel[:-3] if rel.endswith(".py") else rel
    parts = [p for p in path.split("/") if p]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts.pop()
    if parts and parts[0] == "src":
        parts = parts[1:]
    return ".".join(parts), is_package


def _body_calls(root: ast.AST, *, enter_classes: bool) -> List[CallSite]:
    """Call sites lexically inside ``root``, not descending into defs.

    Calls inside a nested ``def`` belong to that function's own entry;
    ``enter_classes`` is True for the module body (class-level statements
    run at import time) and False inside functions.
    """

    out: List[CallSite] = []
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.ClassDef) and not enter_classes:
            continue
        if isinstance(node, ast.Call):
            out.append(CallSite(node, dotted_name(node.func)))
        stack.extend(ast.iter_child_nodes(node))
    out.sort(key=lambda s: (s.node.lineno, s.node.col_offset))
    return out


class ModuleIndex:
    """Symbol tables for one parsed module."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.rel = module.rel
        self.dotted, self.is_package = module_dotted(module.rel)
        #: qual -> def node, for every function/method (nested included)
        self.functions: Dict[str, ast.AST] = {}
        #: qual -> ClassDef
        self.classes: Dict[str, ast.ClassDef] = {}
        #: local name -> imported module ("import a.b as c" -> {"c": "a.b"})
        self.import_aliases: Dict[str, str] = {}
        #: local name -> (source module, original name) for from-imports
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        #: module-scope `x = y` / `x = a.b` aliases (re-export idiom)
        self.assign_aliases: Dict[str, str] = {}
        #: qual (or MODULE_BODY) -> call sites in that body
        self.calls: Dict[str, List[CallSite]] = {}
        self._build()

    def _build(self) -> None:
        tree = self.module.tree
        for qual, node in iter_functions(tree):
            self.functions[qual] = node
            self.calls[qual] = _body_calls(node, enter_classes=False)
        self._index_classes(tree, "")
        self.calls[MODULE_BODY] = _body_calls(tree, enter_classes=True)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.import_aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.from_imports[local] = (base, alias.name)
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                source = dotted_name(stmt.value)
                if source:
                    self.assign_aliases[stmt.targets[0].id] = source

    def _index_classes(self, node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qual = f"{prefix}{child.name}"
                self.classes[qual] = child
                self._index_classes(child, f"{qual}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_classes(child, f"{prefix}{child.name}.")

    def _resolve_from_base(self, node: ast.ImportFrom) -> str:
        """Absolute dotted module a ``from ... import`` pulls from."""

        if not node.level:
            return node.module or ""
        parts = self.dotted.split(".") if self.dotted else []
        if not self.is_package and parts:
            parts = parts[:-1]  # level 1 = this module's package
        for _ in range(node.level - 1):
            if parts:
                parts.pop()
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts)

    def function_node(self, qual: str) -> Optional[ast.AST]:
        return self.functions.get(qual)


class ProjectGraph:
    """The shared whole-program index; built lazily via ``Project.graph()``.

    Target modules are indexed eagerly; modules reached through imports
    are pulled in on demand (as context modules, capped by what exists on
    disk) so resolution works when linting a subtree.
    """

    def __init__(self, project: Project) -> None:
        self.project = project
        self.modules: Dict[str, ModuleIndex] = {}
        self._by_dotted: Dict[str, str] = {}  # dotted module -> rel
        self._missing: Set[str] = set()  # dotted modules known absent
        self._edges: Optional[Dict[FunctionRef, List[Tuple[FunctionRef, bool]]]] = None
        self._redges: Optional[Dict[FunctionRef, List[Tuple[FunctionRef, bool]]]] = None
        self._call_index: Optional[Dict[str, List[Tuple[str, str, CallSite]]]] = None
        self._tails: Optional[Dict[str, List[FunctionRef]]] = None
        for module in project.targets:
            self.add_module(module)

    # -- module bookkeeping ------------------------------------------------
    def add_module(self, module: Module) -> ModuleIndex:
        """Index ``module`` (idempotent); invalidates derived tables."""

        if module.rel in self.modules:
            return self.modules[module.rel]
        index = ModuleIndex(module)
        self.modules[module.rel] = index
        if index.dotted:
            self._by_dotted.setdefault(index.dotted, module.rel)
        self._edges = self._redges = None
        self._call_index = self._tails = None
        return index

    def index_for(self, rel: str) -> Optional[ModuleIndex]:
        if rel in self.modules:
            return self.modules[rel]
        module = self.project.context_module(rel)
        if module is None:
            return None
        return self.add_module(module)

    def _module_by_dotted(self, dotted: str) -> Optional[ModuleIndex]:
        """The indexed module for an absolute dotted name, loading lazily."""

        if dotted in self._by_dotted:
            return self.modules[self._by_dotted[dotted]]
        if not dotted or dotted in self._missing:
            return None
        path = dotted.replace(".", "/")
        for rel in (
            f"src/{path}.py",
            f"src/{path}/__init__.py",
            f"{path}.py",
            f"{path}/__init__.py",
        ):
            module = self.project.context_module(rel)
            if module is not None:
                index = self.add_module(module)
                self._by_dotted.setdefault(dotted, module.rel)
                return index
        self._missing.add(dotted)
        return None

    # -- name resolution ---------------------------------------------------
    def external_name(self, rel: str, name: str) -> str:
        """Canonical dotted name with the leading import alias expanded.

        ``from sqlite3 import connect as c`` makes ``c(...)`` read as
        ``sqlite3.connect``; names that are not imports come back as-is.
        """

        index = self.modules.get(rel)
        if index is None or not name:
            return name
        parts = name.split(".")
        head = parts[0]
        if head in index.import_aliases:
            return ".".join([index.import_aliases[head]] + parts[1:])
        if head in index.from_imports:
            base, orig = index.from_imports[head]
            prefix = f"{base}.{orig}" if base else orig
            return ".".join([prefix] + parts[1:])
        return name

    def _resolve_symbol(
        self, index: ModuleIndex, name: str, depth: int = 0
    ) -> List[FunctionRef]:
        """A top-level symbol of ``index``: function, class, or re-export."""

        if name in index.functions:
            return [FunctionRef(index.rel, name)]
        if name in index.classes:
            return self._class_refs(index, name)
        if name in index.assign_aliases and depth < _REEXPORT_DEPTH:
            return self._resolve_dotted(
                index, index.assign_aliases[name], depth + 1
            )
        if name in index.from_imports and depth < _REEXPORT_DEPTH:
            base, orig = index.from_imports[name]
            submodule = self._module_by_dotted(
                f"{base}.{orig}" if base else orig
            )
            if submodule is not None:
                return []  # a module object, not a callable
            source = self._module_by_dotted(base)
            if source is not None:
                return self._resolve_symbol(source, orig, depth + 1)
        return []

    def _class_refs(self, index: ModuleIndex, qual: str) -> List[FunctionRef]:
        """Calling/entering a class reaches its constructor and CM hooks."""

        out = []
        for method in ("__init__", "__enter__", "__exit__"):
            if f"{qual}.{method}" in index.functions:
                out.append(FunctionRef(index.rel, f"{qual}.{method}"))
        return out

    def _resolve_dotted(
        self, index: ModuleIndex, name: str, depth: int = 0
    ) -> List[FunctionRef]:
        parts = name.split(".")
        head = parts[0]
        if len(parts) == 1:
            return self._resolve_symbol(index, head, depth)
        if head in index.import_aliases:
            target = self._module_by_dotted(index.import_aliases[head])
            if target is not None:
                return self._resolve_qual_in(target, parts[1:], depth)
            return []
        if head in index.from_imports:
            base, orig = index.from_imports[head]
            submodule = self._module_by_dotted(
                f"{base}.{orig}" if base else orig
            )
            if submodule is not None:
                return self._resolve_qual_in(submodule, parts[1:], depth)
            source = self._module_by_dotted(base)
            if source is not None and orig in source.classes:
                return self._resolve_qual_in(source, [orig] + parts[1:], depth)
            return []
        if head in index.classes or any(
            q.split(".")[0] == head for q in index.classes
        ):
            qual = ".".join(parts)
            if qual in index.functions:
                return [FunctionRef(index.rel, qual)]
        return []

    def _resolve_qual_in(
        self, index: ModuleIndex, parts: List[str], depth: int
    ) -> List[FunctionRef]:
        qual = ".".join(parts)
        if qual in index.functions:
            return [FunctionRef(index.rel, qual)]
        if qual in index.classes:
            return self._class_refs(index, qual)
        if len(parts) == 1:
            return self._resolve_symbol(index, parts[0], depth + 1)
        if len(parts) == 2 and parts[0] in index.from_imports:
            # module.Class re-exported, then .method called on it
            refs = self._resolve_symbol(index, parts[0], depth + 1)
            out = []
            for ref in refs:
                owner = self.modules.get(ref.rel)
                cls = ref.qual.rsplit(".", 1)[0] if "." in ref.qual else ref.qual
                if owner and f"{cls}.{parts[1]}" in owner.functions:
                    out.append(FunctionRef(ref.rel, f"{cls}.{parts[1]}"))
            if out:
                return out
        return []

    def resolve_call(
        self, rel: str, caller_qual: str, name: str
    ) -> List[FunctionRef]:
        """Exact targets of a call named ``name`` made inside ``caller_qual``.

        Empty when the target is external (stdlib), dynamic, or not
        statically resolvable -- callers fall back to
        :meth:`functions_by_tail` for the fuzzy over-approximation.
        """

        index = self.modules.get(rel)
        if index is None or not name:
            return []
        parts = name.split(".")
        if parts[0] in ("self", "cls") and len(parts) == 2:
            cls_qual = self._enclosing_class(index, caller_qual)
            if cls_qual is not None:
                qual = f"{cls_qual}.{parts[1]}"
                if qual in index.functions:
                    return [FunctionRef(rel, qual)]
            return []
        if len(parts) == 1:
            # nearest enclosing scope first: nested def, then outer, then
            # module top level, then imports
            qparts = caller_qual.split(".") if caller_qual != MODULE_BODY else []
            for i in range(len(qparts), -1, -1):
                qual = ".".join(qparts[:i] + [name]) if i else name
                if qual in index.functions:
                    return [FunctionRef(rel, qual)]
                if qual in index.classes:
                    return self._class_refs(index, qual)
        return self._resolve_dotted(index, name)

    @staticmethod
    def _enclosing_class(index: ModuleIndex, caller_qual: str) -> Optional[str]:
        parts = caller_qual.split(".")
        for i in range(len(parts) - 1, 0, -1):
            qual = ".".join(parts[:i])
            if qual in index.classes:
                return qual
        return None

    # -- derived tables ----------------------------------------------------
    def functions(self) -> Iterator[Tuple[ModuleIndex, str, ast.AST]]:
        """Every (module index, qual, def node) over *target* modules."""

        for module in self.project.targets:
            index = self.modules.get(module.rel)
            if index is None:
                continue
            for qual, node in index.functions.items():
                yield index, qual, node

    def calls_in(self, rel: str, qual: str) -> List[CallSite]:
        index = self.modules.get(rel)
        if index is None:
            return []
        return index.calls.get(qual, [])

    def calls_by_tail(self, tail: str) -> List[Tuple[str, str, CallSite]]:
        """Target-module call sites whose dotted name ends in ``tail``."""

        if self._call_index is None:
            self._call_index = {}
            for module in self.project.targets:
                index = self.modules.get(module.rel)
                if index is None:
                    continue
                for qual, sites in index.calls.items():
                    for site in sites:
                        if site.tail:
                            self._call_index.setdefault(site.tail, []).append(
                                (index.rel, qual, site)
                            )
        return self._call_index.get(tail, [])

    def functions_by_tail(self, tail: str) -> List[FunctionRef]:
        """Every indexed function whose qual ends in ``tail`` (fuzzy pool)."""

        if self._tails is None:
            self._tails = {}
            for rel in sorted(self.modules):
                index = self.modules[rel]
                for qual in index.functions:
                    self._tails.setdefault(qual.split(".")[-1], []).append(
                        FunctionRef(rel, qual)
                    )
        return self._tails.get(tail, [])

    def _ensure_edges(self) -> None:
        if self._edges is not None:
            return
        edges: Dict[FunctionRef, List[Tuple[FunctionRef, bool]]] = {}
        redges: Dict[FunctionRef, List[Tuple[FunctionRef, bool]]] = {}
        for rel in sorted(self.modules):
            index = self.modules[rel]
            for qual, sites in sorted(index.calls.items()):
                caller = FunctionRef(rel, qual)
                targets: List[Tuple[FunctionRef, bool]] = []
                for site in sites:
                    refs = self.resolve_call(rel, qual, site.name)
                    if refs:
                        targets.extend((ref, True) for ref in refs)
                    elif "." in site.name:
                        # attribute call on an unresolvable receiver:
                        # over-approximate by method-name tail
                        targets.extend(
                            (ref, False)
                            for ref in self.functions_by_tail(site.tail)
                        )
                # `with ctx()` reaches __enter__/__exit__ even though no
                # call expression names them
                for node in self._with_items(index, qual):
                    refs = self.resolve_call(rel, qual, dotted_name(node))
                    targets.extend((ref, True) for ref in refs)
                seen: Set[Tuple[FunctionRef, bool]] = set()
                uniq = []
                for item in targets:
                    if item not in seen and item[0] != caller:
                        seen.add(item)
                        uniq.append(item)
                edges[caller] = uniq
                for ref, exact in uniq:
                    redges.setdefault(ref, []).append((caller, exact))
        self._edges = edges
        self._redges = redges

    def _with_items(self, index: ModuleIndex, qual: str) -> List[ast.AST]:
        body = (
            index.module.tree
            if qual == MODULE_BODY
            else index.functions.get(qual)
        )
        if body is None:
            return []
        out = []
        stack = list(ast.iter_child_nodes(body))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        out.append(expr.func)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def callees_of(
        self, ref: FunctionRef, *, include_fuzzy: bool = True
    ) -> List[FunctionRef]:
        self._ensure_edges()
        return [
            target
            for target, exact in self._edges.get(ref, [])
            if exact or include_fuzzy
        ]

    def callers_of(
        self, ref: FunctionRef, *, include_fuzzy: bool = True
    ) -> List[FunctionRef]:
        self._ensure_edges()
        return [
            caller
            for caller, exact in self._redges.get(ref, [])
            if exact or include_fuzzy
        ]

    def reachable(
        self,
        seeds: Iterable[FunctionRef],
        *,
        reverse: bool = False,
        include_fuzzy: bool = True,
    ) -> Set[FunctionRef]:
        """Transitive closure over call edges, seeds included.

        ``reverse=False`` answers "what can this code end up running?"
        (forward); ``reverse=True`` answers "who can end up running this?"
        (backward, over the reverse edges).
        """

        step = self.callers_of if reverse else self.callees_of
        seen: Set[FunctionRef] = set()
        frontier = [s for s in seeds]
        while frontier:
            ref = frontier.pop()
            if ref in seen:
                continue
            seen.add(ref)
            for nxt in step(ref, include_fuzzy=include_fuzzy):
                if nxt not in seen:
                    frontier.append(nxt)
        return seen
