"""The error-discipline checker: failures are typed, loud, and -O-proof.

The harness's whole error model is *typed outcomes*: cells come back
``ok``/``skipped``/``timeout``/``error``/``unsupported``, unknown names
raise with did-you-mean hints, and cache corruption raises
:class:`~repro.eval.cache.CacheMergeConflict`.  Two anti-patterns erode
that model from below:

* **Swallowed exceptions.**  A bare ``except:`` catches
  ``KeyboardInterrupt`` and ``SystemExit`` (and the harness's SIGALRM
  budget machinery); ``except Exception: pass`` turns any bug into
  silence.  Handlers must name what they expect, or visibly re-raise /
  transform (``except Exception`` with a body that *does something* --
  logs, wraps, re-raises -- is accepted; an empty swallow is not).
* **``assert`` as control flow.**  ``python -O`` strips asserts, so a
  library-path assert is a check that vanishes exactly when someone
  benchmarks with optimizations on.  Invariants worth checking are worth
  a typed ``raise``; asserts belong in tests.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from .framework import Checker, Finding, Module, Project, register_checker

__all__ = ["ErrorDisciplineChecker"]


def _is_swallow_body(body: List[ast.stmt]) -> bool:
    """True when a handler body does nothing observable (pass/.../continue)."""

    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring / ellipsis
        return False
    return True


def _broad_exception_name(handler: ast.ExceptHandler) -> str:
    """"Exception"/"BaseException" when the handler catches that broadly."""

    def names(node: ast.AST) -> List[str]:
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, ast.Attribute):
            return [node.attr]
        if isinstance(node, ast.Tuple):
            return [n for elt in node.elts for n in names(elt)]
        return []

    if handler.type is None:
        return ""
    for name in names(handler.type):
        if name in ("Exception", "BaseException"):
            return name
    return ""


@register_checker("error-discipline", synonyms=("errors", "discipline"))
class ErrorDisciplineChecker(Checker):
    """Flags swallowed exceptions and optimization-stripped asserts."""

    description = (
        "no bare except, no silently-swallowed broad except, no assert "
        "as control flow in library code"
    )
    hint = "catch the narrowest exception that can occur, or re-raise"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.targets:
            in_tests = module.rel.split("/")[0].startswith("test") or (
                "/tests/" in f"/{module.rel}"
            )
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ExceptHandler):
                    yield from self._check_handler(module, node)
                elif isinstance(node, ast.Assert) and not in_tests:
                    yield self.finding(
                        module, node,
                        "assert used in library code; `python -O` strips "
                        "it, so the check vanishes under optimization",
                        hint="raise a typed exception (ValueError/"
                        "AssertionError) explicitly instead",
                    )

    def _check_handler(
        self, module: Module, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if handler.type is None:
            yield self.finding(
                module, handler,
                "bare except: catches KeyboardInterrupt/SystemExit and "
                "the harness's cell-budget signal",
                hint="name the exception(s) the code can actually raise",
            )
            return
        broad = _broad_exception_name(handler)
        if broad and _is_swallow_body(handler.body):
            yield self.finding(
                module, handler,
                f"except {broad}: with an empty body silently swallows "
                "every error",
                hint="narrow the exception, handle it visibly, or "
                "re-raise",
            )
