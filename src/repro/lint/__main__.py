"""CLI for ``repro.lint``: ``python -m repro.lint [paths] [options]``.

Exit status is the contract CI relies on: 0 when every finding is either
absent or absorbed by the baseline *and* the baseline has no stale
entries; 1 otherwise.  Findings print one per line as
``file:line:checker:message`` (sorted, so output is diffable);
``--fix-hints`` adds an indented hint line under each.

``--write-baseline`` bootstraps/refreshes the baseline from the current
findings -- the only sanctioned way to edit it besides deleting lines.

``--format github`` renders findings as GitHub workflow annotations
(``::error file=...``) so CI failures land on the diff; ``--format
jsonl`` emits one JSON object per finding for tooling.  ``--target``
names a preset: ``src`` is the full seven-checker run over ``src/repro``,
``tools`` runs the style-portable checkers (determinism,
error-discipline) over ``scripts/`` and ``tests/``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from . import CHECKERS, run_lint
from .baseline import apply_baseline, format_baseline, load_baseline

#: --target presets: name -> (paths, checkers or None for all, excludes)
#: excludes are path prefixes dropped when expanding the preset -- the
#: lint fixture snippets are deliberate violations linted as data
TARGETS = {
    "src": (["src/repro"], None, ()),
    "tools": (
        ["scripts", "tests"],
        ["determinism", "error-discipline", "deprecated-api"],
        ("tests/test_lint/fixtures",),
    ),
    # examples/ and benchmarks/ keep their teaching asserts; only the
    # retired-shim rule applies there (ci.sh runs this leg)
    "examples": (
        ["examples", "benchmarks"],
        ["deprecated-api"],
        (),
    ),
}


def _expand_target(paths, excludes):
    files = []
    for p in paths:
        path = Path(p)
        if not path.exists():
            continue
        if path.is_dir():
            files.extend(
                f for f in sorted(path.rglob("*.py"))
                if not any(f.as_posix().startswith(e) for e in excludes)
            )
        else:
            files.append(path)
    return files


def _render(finding, fmt: str) -> str:
    if fmt == "github":
        return (
            f"::error file={finding.path},line={finding.line},"
            f"title=repro.lint[{finding.checker}]::{finding.message}"
        )
    if fmt == "jsonl":
        return json.dumps(
            {
                "path": finding.path,
                "line": finding.line,
                "checker": finding.checker,
                "message": finding.message,
                "hint": finding.hint,
            },
            sort_keys=True,
        )
    return finding.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker (determinism, cache-key "
        "purity, registry hygiene, error discipline)",
    )
    parser.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--target", choices=sorted(TARGETS),
        help="preset scope: 'src' = all checkers over src/repro, "
        "'tools' = determinism+error-discipline over scripts/ and tests/",
    )
    parser.add_argument(
        "--format", dest="fmt", choices=("text", "github", "jsonl"),
        default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="shrink-only baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--fix-hints", action="store_true",
        help="print a suggested fix under each finding",
    )
    parser.add_argument(
        "--checker", action="append", metavar="NAME",
        help="run only the named checker(s) (any registered spelling)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered checkers"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in CHECKERS.names():
            checker = CHECKERS.get(name)
            synonyms = CHECKERS.synonyms(name)
            alias = f" (synonyms: {', '.join(synonyms)})" if synonyms else ""
            print(f"{name}{alias}\n    {checker.description}")
        return 0

    paths = args.paths
    only = args.checker
    if args.target:
        preset_paths, preset_checkers, excludes = TARGETS[args.target]
        if args.paths:
            parser.error("--target and explicit paths are mutually exclusive")
        paths = _expand_target(preset_paths, excludes)
        if only is None:
            only = preset_checkers
    elif not paths:
        paths = ["src/repro"]

    findings = run_lint(paths, only=only)

    if args.write_baseline:
        if not args.baseline:
            parser.error("--write-baseline requires --baseline FILE")
        Path(args.baseline).write_text(
            format_baseline(findings), encoding="utf-8"
        )
        print(
            f"wrote {len(findings)} grandfathered finding(s) to "
            f"{args.baseline}"
        )
        return 0

    baseline = Counter()
    if args.baseline and Path(args.baseline).is_file():
        baseline = load_baseline(Path(args.baseline))
    new, grandfathered, stale = apply_baseline(findings, baseline)

    for finding in new:
        print(_render(finding, args.fmt))
        if args.fmt == "text" and args.fix_hints and finding.hint:
            print(f"    hint: {finding.hint}")
    for key in stale:
        message = (
            f"stale baseline entry (violation fixed -- delete the line): "
            f"{key}"
        )
        if args.fmt == "github":
            print(f"::error title=repro.lint[baseline]::{message}")
        elif args.fmt == "jsonl":
            print(json.dumps(
                {"checker": "baseline", "message": message}, sort_keys=True
            ))
        else:
            print(message)

    summary = (
        f"repro.lint: {len(new)} finding(s), "
        f"{len(grandfathered)} baselined, {len(stale)} stale baseline "
        f"entr{'y' if len(stale) == 1 else 'ies'}"
    )
    print(summary, file=sys.stderr)
    return 1 if new or stale else 0


if __name__ == "__main__":
    sys.exit(main())
