"""CLI for ``repro.lint``: ``python -m repro.lint [paths] [options]``.

Exit status is the contract CI relies on: 0 when every finding is either
absent or absorbed by the baseline *and* the baseline has no stale
entries; 1 otherwise.  Findings print one per line as
``file:line:checker:message`` (sorted, so output is diffable);
``--fix-hints`` adds an indented hint line under each.

``--write-baseline`` bootstraps/refreshes the baseline from the current
findings -- the only sanctioned way to edit it besides deleting lines.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from . import CHECKERS, run_lint
from .baseline import apply_baseline, format_baseline, load_baseline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker (determinism, cache-key "
        "purity, registry hygiene, error discipline)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="shrink-only baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--fix-hints", action="store_true",
        help="print a suggested fix under each finding",
    )
    parser.add_argument(
        "--checker", action="append", metavar="NAME",
        help="run only the named checker(s) (any registered spelling)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered checkers"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in CHECKERS.names():
            checker = CHECKERS.get(name)
            synonyms = CHECKERS.synonyms(name)
            alias = f" (synonyms: {', '.join(synonyms)})" if synonyms else ""
            print(f"{name}{alias}\n    {checker.description}")
        return 0

    findings = run_lint(args.paths, only=args.checker)

    if args.write_baseline:
        if not args.baseline:
            parser.error("--write-baseline requires --baseline FILE")
        Path(args.baseline).write_text(
            format_baseline(findings), encoding="utf-8"
        )
        print(
            f"wrote {len(findings)} grandfathered finding(s) to "
            f"{args.baseline}"
        )
        return 0

    baseline = Counter()
    if args.baseline and Path(args.baseline).is_file():
        baseline = load_baseline(Path(args.baseline))
    new, grandfathered, stale = apply_baseline(findings, baseline)

    for finding in new:
        print(finding.render())
        if args.fix_hints and finding.hint:
            print(f"    hint: {finding.hint}")
    for key in stale:
        print(
            f"stale baseline entry (violation fixed -- delete the line): "
            f"{key}"
        )

    summary = (
        f"repro.lint: {len(new)} finding(s), "
        f"{len(grandfathered)} baselined, {len(stale)} stale baseline "
        f"entr{'y' if len(stale) == 1 else 'ies'}"
    )
    print(summary, file=sys.stderr)
    return 1 if new or stale else 0


if __name__ == "__main__":
    sys.exit(main())
