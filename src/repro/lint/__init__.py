"""``repro.lint``: AST-based invariant checking for the reproduction.

The dynamic guarantees this repo sells -- bit-identical circuits across
the vectorized/reference/compiled engines, cache keys that never fork on
engine options, journals that resume bit-equal -- are enforced here as
*static* properties of the source tree, checked on every CI run over
every file (not just the (workload, architecture, seed) points the
equivalence suites happen to sample).

Eight checkers ship built-in, registered through the same
:class:`~repro.registry.Registry` mechanism as workloads, approaches and
architectures (:func:`register_checker` to plug in more).  They share a
single whole-program index (:mod:`repro.lint.graph`): each file is
parsed once per run, and import-aware symbol resolution plus a call
graph with forward/backward reachability are built on demand and reused
by every checker.

``determinism``
    Set iteration feeding ordered output, global-RNG calls, unsorted
    directory listings, wall-clock flowing outside timing fields.
``cache-purity``
    A call-graph walk proving no :data:`~repro.approaches.ENGINE_KWARGS`
    option name reaches ``ResultCache.key``, journal cell keys or
    verify-policy hashing (the PR-5 no-fork rule as a lint).
``registry-hygiene``
    Every ``@register_*`` entry has a docstring, collision-free
    synonyms, and a test referencing its canonical name.
``error-discipline``
    No bare ``except``, no silently-swallowed broad excepts, no
    ``assert`` as control flow in library code.
``concurrency``
    Fork-unsafe resources (sqlite3 connections, open handles, RNG
    instances, locks) must not cross a fork/submit boundary into worker
    code, and nothing async-signal-unsafe may be reachable from the
    ``cell_budget`` SIGALRM handler (call-graph reachability).
``transaction-discipline``
    Every ``BEGIN IMMEDIATE`` reaches ``commit()``/``rollback()`` on
    both the non-raising and raising paths (CFG walk over
    try/except/finally/with), and no raw write runs outside a
    transaction helper.
``sql-schema``
    Every SQL string executed in ``store/`` references only tables and
    columns declared in ``store/schema.py``, with matching placeholder
    arity (stdlib-only SQL tokenizer).
``deprecated-api``
    No new imports or calls of the retired shims (``compile_qft``,
    ``run_cells``, ``experiment_*``/``run_all``) outside the modules
    that define or re-export them.

Run it as ``python -m repro.lint [paths] [--baseline FILE] [--fix-hints]``;
findings render ``file:line:checker:message``, are suppressible per line
with ``# repro-lint: ignore[checker]``, and may be grandfathered in a
shrink-only baseline file (:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .framework import (
    CHECKERS,
    Checker,
    Finding,
    Module,
    Project,
    register_checker,
    run_checkers,
)

# importing the package registers the built-in checkers
from . import determinism as _determinism  # noqa: F401,E402
from . import purity as _purity  # noqa: F401,E402
from . import hygiene as _hygiene  # noqa: F401,E402
from . import discipline as _discipline  # noqa: F401,E402
from . import concurrency as _concurrency  # noqa: F401,E402
from . import transactions as _transactions  # noqa: F401,E402
from . import sql as _sql  # noqa: F401,E402
from . import deprecated as _deprecated  # noqa: F401,E402

__all__ = [
    "Finding",
    "Module",
    "Project",
    "Checker",
    "CHECKERS",
    "register_checker",
    "run_checkers",
    "run_lint",
]


def run_lint(
    paths: Iterable,
    *,
    root=None,
    tests_root=None,
    only: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint ``paths`` (files/directories) and return sorted findings.

    The convenience entry point for tests and tooling; the CLI in
    ``__main__`` adds baseline handling on top.
    """

    project = Project.load(paths, root=root, tests_root=tests_root)
    return run_checkers(project, only=only)
