"""The fork/signal-safety checker: resources must not cross process lines.

PR 7's dispatcher forks worker processes (``multiprocessing.Process``,
``ProcessPoolExecutor``) and PR 8 put a WAL-mode SQLite store under
everything.  Two conventions keep that combination sound, and until now
both were enforced only by chaos tests:

1. **Fork safety** -- a SQLite connection, open file handle, seeded
   ``random.Random`` or lock created *before* the fork point must never
   be used on the worker side.  A forked connection corrupts the
   database (SQLite is explicit about this); a shared ``Random``
   duplicates every "random" decision in every worker; an inherited
   lock can be held forever by a thread that does not exist in the
   child.  Each worker must create its own.
2. **Async-signal safety** -- the :func:`repro.utils.cell_budget`
   SIGALRM handler interrupts arbitrary code; anything reachable from a
   registered handler must stay allocation-light: no file I/O, no
   sqlite calls, no logging.

This checker makes both static properties of the tree, driven entirely
by the shared :class:`~repro.lint.graph.ProjectGraph`:

* *fork points* are found syntactically -- ``Process(target=f)``,
  ``executor.submit(f, ...)``, ``pool.map(f, ...)`` -- and the functions
  passed there are the *worker entries*; the worker-side set is their
  forward reachability closure.
* a module-scope resource (``sqlite3.connect`` result, ``open`` handle,
  ``random.Random``, ``threading``/``multiprocessing`` lock) referenced
  from any worker-side function is flagged at its creation site.
* a resource created in a function and then passed into a fork-point
  call (``Process(..., args=(conn,))``) is flagged at the fork point.
* signal handlers are found at their ``signal.signal(sig, handler)``
  registration; every function reachable from a handler is scanned for
  non-async-signal-safe calls.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .framework import Checker, Finding, Project, dotted_name, register_checker
from .graph import MODULE_BODY, FunctionRef, ProjectGraph

__all__ = ["ConcurrencyChecker"]

#: canonical constructor names of resources that must not cross a fork
RESOURCE_KINDS: Tuple[Tuple[str, str], ...] = (
    ("sqlite3.connect", "sqlite connection"),
    ("open", "open file handle"),
    ("io.open", "open file handle"),
    ("random.Random", "random.Random instance"),
    ("threading.Lock", "lock"),
    ("threading.RLock", "lock"),
    ("threading.Condition", "lock"),
    ("threading.Semaphore", "lock"),
    ("threading.BoundedSemaphore", "lock"),
    ("threading.Event", "lock"),
    ("multiprocessing.Lock", "lock"),
    ("multiprocessing.RLock", "lock"),
)

#: call names (canonical external form) that are not async-signal-safe
_UNSAFE_IN_HANDLER_PREFIXES: Tuple[str, ...] = (
    "sqlite3.",
    "logging.",
    "subprocess.",
)
_UNSAFE_IN_HANDLER_EXACT: Tuple[str, ...] = (
    "open",
    "io.open",
    "print",
    "time.sleep",
    "os.system",
)
#: method tails that smell like I/O or sqlite inside a signal handler
_UNSAFE_IN_HANDLER_TAILS: Tuple[str, ...] = (
    "execute",
    "executemany",
    "executescript",
    "commit",
    "rollback",
    "write",
    "flush",
    "read",
    "readline",
)

#: attribute tails that submit work to a pool/executor (first arg = entry)
_SUBMIT_TAILS = frozenset({"submit", "apply_async", "map", "imap",
                           "imap_unordered", "starmap", "map_async"})


def _resource_kind(name: str) -> Optional[str]:
    for canonical, kind in RESOURCE_KINDS:
        if name == canonical:
            return kind
    return None


class _ForkPoint:
    """One Process(...)/submit(...) call plus its resolved worker entries."""

    def __init__(self, rel: str, qual: str, node: ast.Call) -> None:
        self.rel = rel
        self.qual = qual
        self.node = node
        self.entries: List[FunctionRef] = []


@register_checker("concurrency", synonyms=("fork-safety", "signal-safety"))
class ConcurrencyChecker(Checker):
    """Proves parent-side resources stay out of forked workers and
    signal handlers stay async-signal-safe."""

    description = (
        "resources created before a fork (sqlite connections, file "
        "handles, RNGs, locks) must not be reachable from worker-side "
        "functions, and SIGALRM-handler code must stay async-signal-safe"
    )
    hint = (
        "create connections/handles/RNGs inside the worker function, "
        "and keep signal handlers allocation-light"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project.graph()
        fork_points = self._fork_points(graph)
        worker_entries = sorted(
            {ref for fp in fork_points for ref in fp.entries}
        )
        worker_side = graph.reachable(worker_entries)
        yield from self._check_module_resources(graph, worker_side)
        yield from self._check_resources_into_fork(graph, fork_points)
        yield from self._check_signal_handlers(graph)

    # -- fork points -------------------------------------------------------
    def _fork_points(self, graph: ProjectGraph) -> List[_ForkPoint]:
        points: List[_ForkPoint] = []
        for module in graph.project.targets:
            index = graph.modules.get(module.rel)
            if index is None:
                continue
            for qual, sites in sorted(index.calls.items()):
                for site in sites:
                    entry_exprs = self._worker_entry_exprs(
                        graph, module.rel, site.node, site.name
                    )
                    if entry_exprs is None:
                        continue
                    point = _ForkPoint(module.rel, qual, site.node)
                    for expr in entry_exprs:
                        name = dotted_name(expr)
                        if not name:
                            continue
                        point.entries.extend(
                            graph.resolve_call(module.rel, qual, name)
                            or graph.functions_by_tail(name.split(".")[-1])
                        )
                    points.append(point)
        return points

    def _worker_entry_exprs(
        self, graph: ProjectGraph, rel: str, node: ast.Call, name: str
    ) -> Optional[List[ast.expr]]:
        """The expressions naming the worker function, or None if not a
        fork point."""

        external = graph.external_name(rel, name)
        tail = name.split(".")[-1] if name else ""
        if external.endswith(".Process") or external == "Process":
            return [k.value for k in node.keywords if k.arg == "target"]
        if tail in _SUBMIT_TAILS and node.args:
            # executor.submit(f, ...) / pool.map(f, it): only treat as a
            # fork point when the receiver smells like a pool/executor --
            # plain `map(f, xs)` and Registry lookups are not forks
            receiver = name.rsplit(".", 1)[0] if "." in name else ""
            if receiver or tail in ("submit",):
                return [node.args[0]]
        return None

    # -- rule 1: module-scope resources used worker-side -------------------
    def _module_resources(
        self, graph: ProjectGraph, rel: str
    ) -> List[Tuple[str, str, ast.Assign]]:
        """(name, kind, assign node) for module-scope resource creations."""

        index = graph.modules.get(rel)
        if index is None:
            return []
        out = []
        for stmt in index.module.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            call = stmt.value
            if not isinstance(call, ast.Call):
                continue
            kind = _resource_kind(
                graph.external_name(rel, dotted_name(call.func))
            )
            if kind is None:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.append((target.id, kind, stmt))
        return out

    def _check_module_resources(
        self, graph: ProjectGraph, worker_side: Set[FunctionRef]
    ) -> Iterator[Finding]:
        if not worker_side:
            return
        for module in graph.project.targets:
            resources = self._module_resources(graph, module.rel)
            if not resources:
                continue
            index = graph.modules[module.rel]
            for name, kind, stmt in resources:
                user = self._worker_side_user(
                    graph, worker_side, module.rel, name
                )
                if user is None:
                    continue
                yield self.finding(
                    module, stmt,
                    f"module-scope {kind} {name!r} is used by "
                    f"worker-side function {user.qual}(); it would cross "
                    "the fork and must be created inside the worker",
                )

    def _worker_side_user(
        self,
        graph: ProjectGraph,
        worker_side: Set[FunctionRef],
        rel: str,
        name: str,
    ) -> Optional[FunctionRef]:
        """A worker-side function reading module-global ``name`` of ``rel``."""

        for ref in sorted(worker_side):
            index = graph.modules.get(ref.rel)
            if index is None:
                continue
            if ref.rel == rel:
                local = name
            else:
                # imported under some local alias?
                local = None
                for alias, (mod, orig) in index.from_imports.items():
                    if orig == name and graph.modules.get(
                        graph._by_dotted.get(mod, "")
                    ) is graph.modules.get(rel):
                        local = alias
                        break
                if local is None:
                    continue
            func = (
                index.module.tree
                if ref.qual == MODULE_BODY
                else index.functions.get(ref.qual)
            )
            if func is None:
                continue
            bound = {
                a.arg
                for a in ast.walk(func)
                if isinstance(a, ast.arg)
            }
            if local in bound:
                continue  # shadowed by a parameter: not the global
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Name)
                    and node.id == local
                    and isinstance(node.ctx, ast.Load)
                ):
                    return ref
        return None

    # -- rule 2: parent-side resources passed into the fork ----------------
    def _check_resources_into_fork(
        self, graph: ProjectGraph, fork_points: List[_ForkPoint]
    ) -> Iterator[Finding]:
        by_func: Dict[Tuple[str, str], List[_ForkPoint]] = {}
        for fp in fork_points:
            by_func.setdefault((fp.rel, fp.qual), []).append(fp)
        for (rel, qual), points in sorted(by_func.items()):
            index = graph.modules[rel]
            func = (
                index.module.tree
                if qual == MODULE_BODY
                else index.functions.get(qual)
            )
            if func is None:
                continue
            local_resources: Dict[str, Tuple[str, int]] = {}
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call
                ):
                    kind = _resource_kind(
                        graph.external_name(
                            rel, dotted_name(node.value.func)
                        )
                    )
                    if kind is None:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_resources[target.id] = (kind, node.lineno)
            if not local_resources:
                continue
            for fp in points:
                passed = {
                    n.id
                    for arg in list(fp.node.args)
                    + [k.value for k in fp.node.keywords]
                    for n in ast.walk(arg)
                    if isinstance(n, ast.Name)
                }
                for name in sorted(passed & set(local_resources)):
                    kind, created_line = local_resources[name]
                    if created_line >= fp.node.lineno:
                        continue
                    yield self.finding(
                        index.module, fp.node,
                        f"{kind} {name!r} (created line {created_line}) "
                        "is passed across a fork/submit point; workers "
                        "must open their own",
                    )

    # -- rule 3: async-signal safety ---------------------------------------
    def _check_signal_handlers(self, graph: ProjectGraph) -> Iterator[Finding]:
        handlers: List[FunctionRef] = []
        for module in graph.project.targets:
            index = graph.modules.get(module.rel)
            if index is None:
                continue
            for qual, sites in sorted(index.calls.items()):
                for site in sites:
                    external = graph.external_name(module.rel, site.name)
                    if external != "signal.signal" or len(site.node.args) < 2:
                        continue
                    name = dotted_name(site.node.args[1])
                    if not name:
                        continue
                    handlers.extend(
                        graph.resolve_call(module.rel, qual, name)
                    )
        if not handlers:
            return
        seen: Set[Tuple[str, int, str]] = set()
        for ref in sorted(graph.reachable(sorted(set(handlers)))):
            index = graph.modules.get(ref.rel)
            if index is None or index.module not in graph.project.targets:
                continue
            for site in index.calls.get(ref.qual, []):
                reason = self._unsafe_reason(graph, ref.rel, site.name)
                if reason is None:
                    continue
                key = (ref.rel, site.node.lineno, site.name)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    index.module, site.node,
                    f"{reason} reachable from a signal handler "
                    f"(via {ref.qual}()); handlers must stay "
                    "async-signal-safe",
                )

    def _unsafe_reason(
        self, graph: ProjectGraph, rel: str, name: str
    ) -> Optional[str]:
        if not name:
            return None
        external = graph.external_name(rel, name)
        if external in _UNSAFE_IN_HANDLER_EXACT:
            return f"call to {external}()"
        for prefix in _UNSAFE_IN_HANDLER_PREFIXES:
            if external.startswith(prefix):
                return f"call to {external}()"
        tail = name.split(".")[-1]
        if "." in name and tail in _UNSAFE_IN_HANDLER_TAILS:
            return f"I/O-flavoured call .{tail}()"
        return None
