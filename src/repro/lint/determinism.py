"""The determinism checker: no iteration-order / RNG / clock leaks.

Bit-identical reproduction rests on four source-level rules, each of which
has historically broken "deterministic" pipelines silently:

1. **No ordered output from set iteration.**  Iterating a ``set`` (hash
   order -- randomized per process for strings) is fine for membership or
   commutative folds, but the moment the iteration feeds an ``append``, a
   ``return``/``yield``, a ``join`` or a list/tuple/dict construction, the
   output order depends on ``PYTHONHASHSEED``.  Wrap the set in
   ``sorted(...)`` (any deterministic key).
2. **No global RNG.**  ``random.random()`` & friends draw from the hidden
   module-level ``Random`` whose state any import can perturb; seeded
   ``random.Random(seed)`` instances are the only sanctioned source of
   randomness (the SABRE reference implementation round-trips one).  The
   same applies to the legacy ``numpy.random.*`` global generator.
3. **No unsorted directory listings.**  ``os.listdir``/``glob.glob`` and
   the ``Path.glob``/``rglob``/``iterdir`` methods return entries in
   filesystem order, which differs between machines and filesystems --
   the cache-merge/code-version bugs this rule guards against are exactly
   the kind a sampled equivalence test never sees.  Wrap in ``sorted``
   (or consume order-insensitively: ``len``/``sum``/``set``/``any``...).
4. **No wall-clock into results.**  ``time.time``/``perf_counter``/...
   may flow into elapsed-time bookkeeping (``start``/``wall_*``/
   ``deadline`` names, subtraction, comparisons) and nothing else --
   never into seeds, keys, or payload fields.

Everything here is a syntactic approximation with a deliberate bias: on
ambiguous evidence the checker stays quiet (rule 1 needs a proven
set-typed source *and* an order-sensitive sink), because a lint gate that
cries wolf gets suppressed wholesale and then catches nothing.  The
escape hatch for true negatives is the per-line
``# repro-lint: ignore[determinism]``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .framework import (
    Checker,
    Finding,
    Module,
    Project,
    call_name,
    parent_map,
    register_checker,
)

__all__ = ["DeterminismChecker"]

#: module-level ``random.*`` functions that touch the hidden global state
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "betavariate", "expovariate",
        "gammavariate", "gauss", "lognormvariate", "normalvariate",
        "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "randbytes", "seed", "binomialvariate",
    }
)

#: legacy numpy global-generator entry points (``np.random.<fn>``)
NUMPY_RANDOM_FUNCS = frozenset(
    {
        "seed", "random", "rand", "randn", "randint", "random_sample",
        "choice", "shuffle", "permutation", "uniform", "normal",
    }
)

#: directory-listing callables (by dotted suffix) returning fs-order lists
LISTING_CALLS = frozenset({"os.listdir", "glob.glob", "glob.iglob"})

#: method names that smell like Path directory iteration
LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: wall-clock sources (dotted suffixes)
CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
    }
)

#: calls whose result does not depend on argument order
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "any", "all", "min", "max",
     "Counter", "collections.Counter"}
)

#: identifier fragments under which a wall-clock value may legitimately live
_CLOCK_NAME_FRAGMENTS = (
    "start", "wall", "time", "now", "deadline", "elapsed", "began",
    "stamp", "clock", "t0", "t1", "tic", "toc",
)

#: set-producing method names (on an already-set-typed receiver)
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def _clock_name_ok(name: str) -> bool:
    low = name.lower()
    return any(frag in low for frag in _CLOCK_NAME_FRAGMENTS)


class _ImportInfo:
    """What this module imported: which names are the stdlib modules."""

    def __init__(self, tree: ast.Module) -> None:
        self.module_aliases: Dict[str, str] = {}  # local name -> module
        self.from_random: Set[str] = set()  # names imported from `random`
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in GLOBAL_RANDOM_FUNCS:
                        self.from_random.add(alias.asname or alias.name)


@register_checker("determinism", synonyms=("det", "ordering"))
class DeterminismChecker(Checker):
    """Flags source constructs whose output depends on hash/fs/clock state."""

    description = (
        "set iteration feeding ordered output, global-RNG calls, unsorted "
        "directory listings, wall-clock flowing into non-timing fields"
    )
    hint = "wrap the iterable in sorted(...) or use a seeded random.Random"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.targets:
            yield from self._check_module(module)

    # ------------------------------------------------------------------
    def _check_module(self, module: Module) -> Iterator[Finding]:
        imports = _ImportInfo(module.tree)
        parents = parent_map(module.tree)
        yield from self._check_random(module, imports)
        yield from self._check_listings(module, imports, parents)
        yield from self._check_clocks(module, imports, parents)
        yield from self._check_set_iteration(module, parents)

    # -- rule 2: global RNG --------------------------------------------
    def _check_random(
        self, module: Module, imports: _ImportInfo
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            head, _, tail = name.rpartition(".")
            if (
                head
                and imports.module_aliases.get(head) == "random"
                and tail in GLOBAL_RANDOM_FUNCS
            ):
                yield self.finding(
                    module, node,
                    f"call to the global RNG ({name}()); module-level "
                    "random state is unseeded and import-order dependent",
                    hint="draw from an explicit seeded random.Random(seed) "
                    "instance instead",
                )
            elif not head and name in imports.from_random:
                yield self.finding(
                    module, node,
                    f"call to the global RNG (random.{name} imported "
                    "directly); module-level random state is unseeded",
                    hint="draw from an explicit seeded random.Random(seed) "
                    "instance instead",
                )
            elif head and tail in NUMPY_RANDOM_FUNCS:
                mod, _, sub = head.partition(".")
                if (
                    imports.module_aliases.get(mod) in ("numpy", "numpy.random")
                    and (sub == "random" or not sub)
                ):
                    yield self.finding(
                        module, node,
                        f"call to the legacy numpy global generator "
                        f"({name}()); its state is process-global",
                        hint="use numpy.random.Generator seeded explicitly "
                        "(numpy.random.default_rng(seed))",
                    )
            elif name.endswith("random.Random") and not node.args and not node.keywords:
                yield self.finding(
                    module, node,
                    "random.Random() constructed without a seed",
                    hint="pass an explicit seed: random.Random(seed)",
                )

    # -- rule 3: directory listings ------------------------------------
    def _is_order_safe_context(
        self, node: ast.AST, parents: Dict[ast.AST, ast.AST]
    ) -> bool:
        """True when ``node``'s value is consumed order-insensitively.

        Covers direct wrapping (``sorted(p.glob(...))``), consumption by an
        order-insensitive builtin (``len``/``sum``/``set``/...), membership
        tests (``x in glob(...)``), and the counting idiom
        ``sum(1 for _ in p.glob(...))`` (the listing feeds a generator that
        itself feeds an order-insensitive call).
        """

        parent = parents.get(node)
        # step through generator comprehensions the listing directly feeds
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            comp = parents.get(parent)
            if isinstance(comp, (ast.GeneratorExp, ast.ListComp)):
                grand = parents.get(comp)
                if (
                    isinstance(grand, ast.Call)
                    and call_name(grand).split(".")[-1]
                    in {c.split(".")[-1] for c in ORDER_INSENSITIVE_CALLS}
                ):
                    return True
            if isinstance(comp, ast.SetComp):
                return True
            return False
        if isinstance(parent, ast.Call) and node in parent.args:
            name = call_name(parent)
            if name in ORDER_INSENSITIVE_CALLS or name.split(".")[-1] in {
                c.split(".")[-1] for c in ORDER_INSENSITIVE_CALLS
            }:
                return True
        if isinstance(parent, ast.Compare):
            # `x in os.listdir(d)`: membership, order-free
            return node in parent.comparators
        return False

    def _check_listings(
        self,
        module: Module,
        imports: _ImportInfo,
        parents: Dict[ast.AST, ast.AST],
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            head, _, tail = name.rpartition(".")
            is_listing = False
            if name in LISTING_CALLS or (
                head
                and imports.module_aliases.get(head.split(".")[0])
                in ("os", "glob")
                and f"{head.split('.')[-1]}.{tail}" in LISTING_CALLS
            ):
                is_listing = True
            elif tail in LISTING_METHODS and head:
                # Path-style method iteration (receiver type unknown --
                # heuristic on the method name; suppress false positives
                # per line)
                is_listing = True
            if not is_listing:
                continue
            if self._is_order_safe_context(node, parents):
                continue
            yield self.finding(
                module, node,
                f"directory listing ({name or tail}) consumed without "
                "sorted(); filesystem order differs across machines",
                hint="wrap the call in sorted(...) (or consume it "
                "order-insensitively: len/sum/set/any/all)",
            )

    # -- rule 4: wall-clock flow ---------------------------------------
    def _check_clocks(
        self,
        module: Module,
        imports: _ImportInfo,
        parents: Dict[ast.AST, ast.AST],
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            head = name.split(".")[0]
            if not (
                name in CLOCK_CALLS
                and imports.module_aliases.get(head, head) in ("time", "datetime")
            ):
                continue
            if self._clock_context_ok(node, parents):
                continue
            yield self.finding(
                module, node,
                f"wall-clock value ({name}()) flowing into a non-timing "
                "context; clocks may only feed wall_*/elapsed bookkeeping",
                hint="assign to a start/wall/deadline-named variable or "
                "keep the value inside timing arithmetic",
            )

    def _clock_context_ok(
        self, node: ast.AST, parents: Dict[ast.AST, ast.AST]
    ) -> bool:
        parent = parents.get(node)
        # elapsed arithmetic and deadline comparisons are the legitimate uses
        if isinstance(parent, (ast.BinOp, ast.Compare)):
            return True
        if isinstance(parent, ast.Assign):
            return all(
                isinstance(t, ast.Name) and _clock_name_ok(t.id)
                or isinstance(t, ast.Attribute) and _clock_name_ok(t.attr)
                for t in parent.targets
            )
        if isinstance(parent, (ast.AnnAssign, ast.AugAssign)):
            target = parent.target
            return (
                isinstance(target, ast.Name) and _clock_name_ok(target.id)
                or isinstance(target, ast.Attribute) and _clock_name_ok(target.attr)
            )
        if isinstance(parent, ast.keyword):
            return parent.arg is not None and _clock_name_ok(parent.arg)
        if isinstance(parent, ast.Dict):
            try:
                idx = parent.values.index(node)
            except ValueError:
                return False
            key = parent.keys[idx]
            return (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and _clock_name_ok(key.value)
            )
        if isinstance(parent, ast.Return):
            func = parents.get(parent)
            while func is not None and not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                func = parents.get(func)
            return func is not None and _clock_name_ok(func.name)
        return False

    # -- rule 1: set iteration into ordered sinks ----------------------
    def _check_set_iteration(
        self, module: Module, parents: Dict[ast.AST, ast.AST]
    ) -> Iterator[Finding]:
        for scope in self._scopes(module.tree):
            set_names = self._set_typed_names(scope)
            for node in ast.walk(scope):
                if self._in_nested_scope(node, scope, parents):
                    continue
                if isinstance(node, ast.For):
                    if self._is_set_expr(node.iter, set_names) and (
                        sink := self._ordered_sink(node)
                    ):
                        yield self.finding(
                            module, node.iter,
                            "iteration over a set feeds ordered output "
                            f"({sink}); set order depends on PYTHONHASHSEED",
                        )
                elif isinstance(
                    node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
                ):
                    for gen in node.generators:
                        if not self._is_set_expr(gen.iter, set_names):
                            continue
                        if isinstance(
                            node, (ast.GeneratorExp, ast.ListComp)
                        ) and self._is_order_safe_context(node, parents):
                            continue
                        kind = {
                            ast.ListComp: "a list",
                            ast.GeneratorExp: "a generator",
                            ast.DictComp: "a dict",
                        }[type(node)]
                        yield self.finding(
                            module, gen.iter,
                            f"comprehension builds {kind} by iterating a "
                            "set; set order depends on PYTHONHASHSEED",
                        )

    @staticmethod
    def _scopes(tree: ast.Module) -> List[ast.AST]:
        """Module plus every function body, as independent name scopes."""

        return [tree] + [
            n
            for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    @staticmethod
    def _in_nested_scope(
        node: ast.AST, scope: ast.AST, parents: Dict[ast.AST, ast.AST]
    ) -> bool:
        """True when ``node`` belongs to a function nested inside ``scope``
        (it will be visited with that scope's own name table instead)."""

        cur = parents.get(node)
        while cur is not None and cur is not scope:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return True
            cur = parents.get(cur)
        return False

    def _set_typed_names(self, scope: ast.AST) -> Set[str]:
        """Names assigned a provably-set-typed value anywhere in ``scope``.

        One non-set assignment to the same name disqualifies it: the
        checker only acts on names whose every assignment is a set (no
        flow sensitivity, so mixed-type reuse must not trigger).
        """

        set_names: Set[str] = set()
        disqualified: Set[str] = set()
        for node in ast.walk(scope):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if self._is_set_expr(value, set_names):
                    set_names.add(target.id)
                else:
                    disqualified.add(target.id)
        return set_names - disqualified

    def _is_set_expr(
        self, node: Optional[ast.AST], set_names: Set[str]
    ) -> bool:
        """Syntactically set-typed: literals with non-constant elements,
        ``set(...)``/``frozenset(...)`` calls, set comprehensions, set
        operators over set operands, and names assigned only sets."""

        if node is None:
            return False
        if isinstance(node, ast.Set):
            # all-constant literals hash identically every run for ints;
            # strings are salted, so only fully-numeric literals are safe
            return not all(
                isinstance(e, ast.Constant)
                and isinstance(e.value, (int, float, bool))
                for e in node.elts
            )
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in ("set", "frozenset"):
                return True
            head, _, tail = name.rpartition(".")
            if tail in _SET_METHODS and head and (
                head in set_names or head.split(".")[0] in set_names
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        if isinstance(node, ast.Name):
            return node.id in set_names
        return False

    @staticmethod
    def _ordered_sink(loop: ast.For) -> str:
        """Name of the first order-sensitive operation in a loop body.

        ``append``/``extend``/``insert``/``write`` calls, ``yield`` and
        ``join`` make iteration order observable; membership tests,
        ``.add`` to another set, and commutative accumulation do not.
        """

        for node in ast.walk(loop):
            if isinstance(node, ast.Call):
                tail = call_name(node).split(".")[-1]
                if tail in ("append", "extend", "insert", "appendleft",
                            "write", "writelines", "join"):
                    return f".{tail}()"
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yield"
        return ""
