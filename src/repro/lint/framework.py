"""The checker framework: findings, suppression, the project model.

``repro.lint`` exists because every guarantee this reproduction makes --
bit-identical circuits across engines, cache keys that never fork on
engine options, journals that resume bit-equal -- is an *invariant of the
source code*, not of any particular test run.  The equivalence suites
sample a handful of (workload, architecture, seed) points; one unsorted
directory listing or unseeded global-RNG call in a path nobody sampled
silently breaks all of it.  This package checks those invariants
statically, over the whole tree, on every CI run.

The moving parts:

:class:`Finding`
    One structured violation, rendered ``file:line:checker:message``.
:class:`Module` / :class:`Project`
    Parsed source files plus the cross-file context checkers need (the
    tests tree for registry hygiene, ``approaches.py`` for the engine
    kwarg list).  Modules are parsed once and shared by every checker.
:func:`register_checker`
    The registration decorator, backed by the same
    :class:`~repro.registry.Registry` as workloads/approaches/
    architectures -- synonyms, did-you-mean lookups and duplicate
    detection come for free.

Suppression is per line: a ``# repro-lint: ignore[checker]`` comment on
the flagged line silences that checker there (``ignore[a,b]`` for
several, bare ``ignore`` for all).  Wholesale suppression goes through
the baseline file (:mod:`repro.lint.baseline`), which may only shrink.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..registry import Registry

__all__ = [
    "Finding",
    "Module",
    "Project",
    "Checker",
    "CHECKERS",
    "register_checker",
    "run_checkers",
]

#: the suppression comment marker (``# repro-lint: ignore[...]``)
SUPPRESS_MARKER = "repro-lint:"

#: sentinel for "every checker suppressed on this line"
SUPPRESS_ALL: FrozenSet[str] = frozenset({"*"})


@dataclass(frozen=True)
class Finding:
    """One structured lint violation.

    ``path`` is stored repo-relative (POSIX separators) so renderings and
    baseline entries are stable across machines and working directories.
    ``hint`` is the suggested fix shown under ``--fix-hints``; it is not
    part of the finding's identity.
    """

    path: str
    line: int
    checker: str
    message: str
    hint: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.checker}:{self.message}"

    @property
    def baseline_key(self) -> str:
        """Line-number-insensitive identity used by the baseline file.

        Baselined findings must survive unrelated edits shifting line
        numbers; the (path, checker, message) triple is stable while the
        flagged code exists at all.
        """

        return f"{self.path}:{self.checker}:{self.message}"


def _suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> set of checker names suppressed on that line.

    Parsed from comment tokens, so the marker inside a string literal does
    not suppress anything.  Unreadable sources return no suppressions (the
    caller already failed to parse them).
    """

    out: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT or SUPPRESS_MARKER not in tok.string:
                continue
            directive = tok.string.split(SUPPRESS_MARKER, 1)[1].strip()
            if not directive.startswith("ignore"):
                continue
            rest = directive[len("ignore"):].strip()
            if rest.startswith("[") and "]" in rest:
                names = frozenset(
                    n.strip().lower()
                    for n in rest[1 : rest.index("]")].split(",")
                    if n.strip()
                )
                out[tok.start[0]] = out.get(tok.start[0], frozenset()) | names
            else:
                out[tok.start[0]] = SUPPRESS_ALL
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return out


@dataclass
class Module:
    """One parsed source file plus its per-line suppression table."""

    path: Path  # absolute
    rel: str  # repo-relative POSIX path (finding/baseline identity)
    source: str
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def suppressed(self, line: int, checker: str) -> bool:
        names = self.suppressions.get(line)
        if names is None:
            return False
        return names is SUPPRESS_ALL or "*" in names or checker.lower() in names


class Project:
    """Everything the checkers see: parsed targets plus cross-file context.

    ``targets`` are the modules findings are reported against.  Context
    modules (``context_module``) are parsed on demand and cached -- the
    purity checker reads ``approaches.py`` for the engine kwarg list even
    when only a subtree is being linted.  ``tests_text`` concatenates the
    tests tree once for the registry-hygiene name search.
    """

    def __init__(
        self,
        root: Path,
        targets: Iterable[Module],
        *,
        tests_root: Optional[Path] = None,
    ) -> None:
        self.root = Path(root)
        self.targets: List[Module] = list(targets)
        self.tests_root = tests_root if tests_root is not None else self.root / "tests"
        self._context_cache: Dict[str, Optional[Module]] = {}
        self._tests_text: Optional[str] = None
        self._graph = None
        #: parse failures encountered while loading targets, as findings
        self.parse_errors: List[Finding] = []

    # -- construction ------------------------------------------------------
    @classmethod
    def load(
        cls,
        paths: Iterable[Path],
        *,
        root: Optional[Path] = None,
        tests_root: Optional[Path] = None,
    ) -> "Project":
        """Build a project from files and/or directories of ``*.py`` files."""

        files: List[Path] = []
        for p in paths:
            p = Path(p)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            else:
                files.append(p)
        root = Path(root) if root is not None else find_root(files)
        project = cls(root, [], tests_root=tests_root)
        seen = set()
        for path in files:
            path = path.resolve()
            if path in seen:
                continue
            seen.add(path)
            module = project._parse(path)
            if module is not None:
                project.targets.append(module)
        return project

    def _rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def _parse(self, path: Path) -> Optional[Module]:
        rel = self._rel(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            self.parse_errors.append(
                Finding(
                    path=rel,
                    line=getattr(exc, "lineno", None) or 1,
                    checker="parse",
                    message=f"could not parse: {exc.__class__.__name__}: {exc}",
                )
            )
            return None
        return Module(
            path=path, rel=rel, source=source, tree=tree,
            suppressions=_suppressions(source),
        )

    # -- cross-file context ------------------------------------------------
    def context_module(self, relpath: str) -> Optional[Module]:
        """Parse ``relpath`` (repo-relative) for context, target or not."""

        if relpath not in self._context_cache:
            for module in self.targets:
                if module.rel == relpath:
                    self._context_cache[relpath] = module
                    break
            else:
                path = self.root / relpath
                if path.is_file():
                    # context parse errors are non-fatal: the checker that
                    # needed the module reports its own finding
                    before = len(self.parse_errors)
                    module = self._parse(path)
                    del self.parse_errors[before:]
                    self._context_cache[relpath] = module
                else:
                    self._context_cache[relpath] = None
        return self._context_cache[relpath]

    def graph(self):
        """The shared whole-program index (:class:`~repro.lint.graph.ProjectGraph`).

        Built lazily on first use and cached, so the symbol tables and
        call graph are constructed once per lint run no matter how many
        checkers consult them.
        """

        if self._graph is None:
            from .graph import ProjectGraph

            self._graph = ProjectGraph(self)
        return self._graph

    def tests_text(self) -> str:
        """Concatenated source of every ``*.py`` under the tests root."""

        if self._tests_text is None:
            parts: List[str] = []
            if self.tests_root.is_dir():
                for path in sorted(self.tests_root.rglob("*.py")):
                    try:
                        parts.append(path.read_text(encoding="utf-8"))
                    except OSError:
                        continue
            self._tests_text = "\n".join(parts)
        return self._tests_text


def find_root(files: Iterable[Path]) -> Path:
    """Nearest ancestor of the first file that looks like the repo root.

    "Looks like": contains ``pyproject.toml`` or ``.git``.  Falls back to
    the current working directory so relative renderings stay sane when
    linting a loose file.
    """

    for f in files:
        for candidate in [Path(f).resolve(), *Path(f).resolve().parents]:
            if (candidate / "pyproject.toml").is_file() or (
                candidate / ".git"
            ).exists():
                return candidate
    return Path.cwd()


class Checker:
    """Base class for registered checkers.

    Subclasses set ``name``/``description``/``hint`` and implement
    :meth:`check`, yielding findings over the whole project (cross-file
    checkers -- the purity call-graph walk, registry uniqueness -- need
    more than one module at a time).  Per-line suppression and baseline
    subtraction are applied by the driver, not by checkers.
    """

    name: str = ""
    description: str = ""
    #: default fix hint attached to findings that do not carry their own
    hint: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: Module, node: ast.AST, message: str, *, hint: str = ""
    ) -> Finding:
        return Finding(
            path=module.rel,
            line=getattr(node, "lineno", 1),
            checker=self.name,
            message=message,
            hint=hint or self.hint,
        )


#: the process-wide checker registry (same Registry as the compiler tables)
CHECKERS: Registry[Checker] = Registry("checker")


def register_checker(name: str, *, synonyms: Iterable[str] = ()):
    """Class decorator registering a :class:`Checker` under ``name``."""

    def _register(cls):
        instance = cls()
        instance.name = name
        CHECKERS.register(name, instance, synonyms=synonyms)
        return cls

    return _register


def run_checkers(
    project: Project, only: Optional[Iterable[str]] = ()
) -> List[Finding]:
    """Run checkers over ``project``; suppressed findings are dropped.

    ``only`` restricts to the named checkers (any registered spelling);
    empty/None means all.  Findings come back sorted by (path, line,
    checker, message) so output and baselines are deterministic.
    Unparseable target files are reported as ``parse`` findings (a linter
    that silently skips what it cannot read is not checking anything).
    """

    names = [CHECKERS.canonical(n) for n in (only or CHECKERS.names())]
    findings: List[Finding] = list(project.parse_errors)
    for name in names:
        checker = CHECKERS.get(name)
        for finding in checker.check(project):
            module = next(
                (m for m in project.targets if m.rel == finding.path), None
            )
            if module is not None and module.suppressed(
                finding.line, finding.checker
            ):
                continue
            findings.append(finding)
    return sorted(
        findings, key=lambda f: (f.path, f.line, f.checker, f.message)
    )


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child -> parent links for every node (checkers share this helper)."""

    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def call_name(node: ast.Call) -> str:
    """Dotted best-effort name of a call target (``"time.perf_counter"``)."""

    return dotted_name(node.func)


def dotted_name(node: ast.AST) -> str:
    """Render a Name/Attribute chain as ``a.b.c`` ("" when not a chain)."""

    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def iter_functions(
    tree: ast.AST,
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualified_name, def_node)`` for every function/method.

    Qualified names are dotted through enclosing classes/functions
    (``ResultCache.key``), which is how the purity checker names sinks.
    """

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from walk(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")
