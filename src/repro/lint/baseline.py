"""The shrink-only baseline: grandfathered findings that may only go away.

A lint gate retrofitted onto a living tree needs a way to adopt the rules
without fixing every historical violation in one commit.  The baseline
file is that mechanism, with one hard property: **it may only shrink**.

* Each line is a finding's :attr:`~repro.lint.framework.Finding.baseline_key`
  (``path:checker:message`` -- deliberately line-number-free, so
  unrelated edits shifting code do not churn the file).  ``#`` comments
  and blank lines are ignored; a comment above each entry should say why
  it is grandfathered rather than fixed.
* A fresh finding **not** in the baseline fails the run (new debt is
  rejected).
* A baseline entry **not** matched by any fresh finding also fails the
  run, as *stale*: the violation was fixed, so the entry must be deleted
  in the same change.  This is what makes the file shrink-only -- it
  cannot quietly accumulate entries for code that no longer exists, and
  every fix permanently ratchets the gate tighter.

Entries are counted as a multiset: two identical findings in one file
need two baseline lines, so fixing one of them still ratchets.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from .framework import Finding

__all__ = ["load_baseline", "apply_baseline", "format_baseline"]


def load_baseline(path: Path) -> Counter:
    """Parse a baseline file into a multiset of finding keys."""

    entries: Counter = Counter()
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        entries[line] += 1
    return entries


def apply_baseline(
    findings: Iterable[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings against the baseline.

    Returns ``(new, grandfathered, stale)``: findings not covered by the
    baseline, findings the baseline absorbs, and baseline entries no
    fresh finding matches (which must be deleted -- shrink-only).
    """

    remaining = Counter(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key
        if remaining[key] > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = sorted(
        key for key, count in remaining.items() for _ in range(count)
    )
    return new, grandfathered, stale


def format_baseline(findings: Iterable[Finding]) -> str:
    """Render findings as baseline-file content (for bootstrapping)."""

    lines = [
        "# repro.lint baseline -- grandfathered findings, shrink-only.",
        "# A fixed finding MUST be removed from this file in the same",
        "# change (stale entries fail the lint run).  Document why each",
        "# remaining entry is grandfathered rather than fixed.",
        "",
    ]
    lines.extend(sorted(f.baseline_key for f in findings))
    return "\n".join(lines) + "\n"
