"""``repro.serve`` -- the compilation service.

An asyncio HTTP/JSON front door over :func:`repro.compile`: prewarmed
forked workers (:mod:`.pool`), online batching by topology group and
bounded-queue admission control (:mod:`.server`), an in-memory LRU over
the batch harness's cache keys (:mod:`.lru`), and the versioned
request/response schema shared with the library (:mod:`.api`).  Run it
with ``python -m repro.serve``; talk to it with
:class:`~repro.serve.client.ServeClient`.
"""

from .api import (
    API_VERSION,
    ApiError,
    CompileRequest,
    CompileResponse,
    execute_request,
)
from .client import (
    ServeClient,
    ServeError,
    ServeOverloaded,
    ServeRequestError,
    ServeUnreachable,
)
from .lru import LRUCache
from .pool import PoolShutdown, WarmWorkerPool
from .server import CompileService, ServeConfig

__all__ = [
    "API_VERSION",
    "ApiError",
    "CompileRequest",
    "CompileResponse",
    "CompileService",
    "LRUCache",
    "PoolShutdown",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeOverloaded",
    "ServeRequestError",
    "ServeUnreachable",
    "WarmWorkerPool",
    "execute_request",
]
