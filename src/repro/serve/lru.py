"""A counted LRU map over cache keys -- the server's in-memory hot set.

Keys are :func:`repro.eval.cache.cell_cache_key` strings (the same keys the
disk/store cache uses), values are
:class:`~repro.eval.metrics.CompilationResult` dicts.  Deliberately tiny:
no locks (the asyncio server touches it from one event loop thread only),
no TTL (cache keys embed the code version, so entries can never go stale
within one server process), just bounded recency eviction plus the
hit/miss/eviction counters ``/v1/stats`` reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables the cache entirely (every ``get`` misses,
    ``put`` is a no-op) -- the server's ``--lru-size 0`` escape hatch.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._data: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[object]:
        if key not in self._data:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return self._data[key]

    def put(self, key: str, value: object) -> None:
        if self.capacity <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
