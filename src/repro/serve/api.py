"""The versioned request/response API shared by the library and the server.

One schema, three consumers:

* ``repro.compile()`` -- :class:`CompileRequest` fields mirror the compile
  kwargs verbatim (``to_compile_kwargs()`` is a dict-splat away), so a
  request object is exactly "a compile call, reified";
* the serve wire format -- ``to_json``/``from_json`` are a *strict* JSON
  round-trip: unknown fields are rejected with did-you-mean suggestions
  (same :mod:`difflib` treatment the registries give unknown names),
  wrong-typed fields raise :class:`ApiError`, and ``api_version`` is pinned
  so an old client talking to a new server fails loudly, not subtly;
* :class:`~repro.serve.client.ServeClient` -- the client builds requests
  from the same kwargs and parses responses through the same classes.

``normalized()`` resolves every name through the registries (canonical
spellings, validated options, verify policy), which is what makes requests
*comparable*: the batching group key and the cache key are derived from the
normalized form, so ``architecture="9x9"`` and ``architecture="grid"`` hit
the same batch and the same cache line.  The cache key itself is
:func:`repro.eval.cache.cell_cache_key` -- byte-identical to the keys batch
sweeps write, so a served request can hit store entries produced offline.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

from ..approaches import get_approach
from ..arch.registry import ARCHITECTURES, architecture_key
from ..workloads import get_workload

__all__ = [
    "API_VERSION",
    "ApiError",
    "CompileRequest",
    "CompileResponse",
    "execute_request",
]

#: the wire-format version this tree speaks; bump on breaking schema change
API_VERSION = "1"

#: verify spellings accepted on the wire (bools normalize to policies)
_VERIFY_POLICIES = ("full", "sample", "off")


class ApiError(ValueError):
    """A malformed request/response payload (the server's 400, typed)."""


def _reject_unknown(kind: str, data: Dict[str, object], known: Tuple[str, ...]) -> None:
    unknown = sorted(set(data) - set(known))
    if not unknown:
        return
    msg = f"unknown {kind} field(s): {', '.join(repr(u) for u in unknown)}"
    hints = []
    for u in unknown:
        close = difflib.get_close_matches(u, known, n=1, cutoff=0.6)
        if close:
            hints.append(f"{u!r} -> did you mean {close[0]!r}?")
    if hints:
        msg += " (" + "; ".join(hints) + ")"
    msg += f"; accepted: {', '.join(known)}"
    raise ApiError(msg)


def _check_version(kind: str, version: object) -> str:
    if not isinstance(version, str):
        raise ApiError(
            f"{kind}.api_version must be a string (got {type(version).__name__})"
        )
    if version != API_VERSION:
        raise ApiError(
            f"unsupported {kind} api_version {version!r}; this build speaks "
            f"{API_VERSION!r}"
        )
    return version


def _typed(kind: str, name: str, value: object, types, what: str):
    if value is not None and not isinstance(value, types):
        raise ApiError(
            f"{kind}.{name} must be {what} (got {type(value).__name__})"
        )
    return value


@dataclass
class CompileRequest:
    """One compilation, reified: ``repro.compile()``'s kwargs as data.

    Field-for-field the keyword surface of :func:`repro.compile`, plus the
    envelope fields the wire needs: ``api_version`` (pinned schema) and
    ``options`` (the ``**opts`` catch-all -- approach options such as the
    SABRE ``seed``).  ``architecture`` is always a registry *name* here
    (the wire cannot carry a live ``Topology``), so ``size`` is required.
    """

    workload: str = "qft"
    architecture: str = "grid"
    size: Optional[int] = None
    approach: str = "ours"
    num_qubits: Optional[int] = None
    workload_params: Dict[str, object] = field(default_factory=dict)
    verify: Union[bool, str] = True
    timeout_s: Optional[float] = None
    max_qubits: Optional[int] = None
    options: Dict[str, object] = field(default_factory=dict)
    api_version: str = API_VERSION

    _FIELDS = (
        "workload",
        "architecture",
        "size",
        "approach",
        "num_qubits",
        "workload_params",
        "verify",
        "timeout_s",
        "max_qubits",
        "options",
        "api_version",
    )

    # -- wire format -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["verify"] = self.verify_policy()
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompileRequest":
        if not isinstance(data, dict):
            raise ApiError(
                f"request must be a JSON object (got {type(data).__name__})"
            )
        _reject_unknown("request", data, cls._FIELDS)
        _check_version("request", data.get("api_version", API_VERSION))
        kind = "request"
        req = cls(
            workload=_typed(kind, "workload", data.get("workload", "qft"), str, "a string"),
            architecture=_typed(
                kind, "architecture", data.get("architecture", "grid"), str, "a string"
            ),
            size=_typed(kind, "size", data.get("size"), int, "an integer"),
            approach=_typed(kind, "approach", data.get("approach", "ours"), str, "a string"),
            num_qubits=_typed(
                kind, "num_qubits", data.get("num_qubits"), int, "an integer"
            ),
            workload_params=dict(
                _typed(
                    kind,
                    "workload_params",
                    data.get("workload_params") or {},
                    dict,
                    "an object",
                )
            ),
            verify=_typed(kind, "verify", data.get("verify", True), (bool, str), "a policy"),
            timeout_s=_typed(
                kind, "timeout_s", data.get("timeout_s"), (int, float), "a number"
            ),
            max_qubits=_typed(
                kind, "max_qubits", data.get("max_qubits"), int, "an integer"
            ),
            options=dict(
                _typed(kind, "options", data.get("options") or {}, dict, "an object")
            ),
            api_version=API_VERSION,
        )
        if any(
            isinstance(v, bool)
            for v in (req.size, req.num_qubits, req.max_qubits, req.timeout_s)
        ):
            raise ApiError(
                "request.size/num_qubits/max_qubits/timeout_s must be "
                "numbers, not booleans"
            )
        return req

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "CompileRequest":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ApiError(f"request is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    # -- semantics ---------------------------------------------------------
    def verify_policy(self) -> str:
        policy = {True: "full", False: "off"}.get(self.verify, self.verify)
        if policy not in _VERIFY_POLICIES:
            raise ApiError(
                f"request.verify must be a bool or one of "
                f"{', '.join(map(repr, _VERIFY_POLICIES))} (got {self.verify!r})"
            )
        return policy

    def normalized(self) -> "CompileRequest":
        """Registry-validated copy with canonical names.

        Resolves every name through the registries (raising
        :class:`~repro.registry.UnknownNameError` with did-you-mean
        suggestions for typos), validates approach options and workload
        parameters, and normalizes ``verify`` to its policy string.  The
        canonical form is what batching groups and cache keys hash, so
        synonym spellings of the same cell coalesce.
        """

        wl = get_workload(self.workload)
        entry = get_approach(self.approach)
        entry.validate_kwargs(self.options)
        wl.resolve_params(**self.workload_params)  # unknown params raise
        arch = ARCHITECTURES.canonical(self.architecture)
        if self.size is None:
            raise ApiError(
                "request.size is required (architecture is given by name "
                f"{self.architecture!r})"
            )
        return replace(
            self,
            workload=wl.name,
            architecture=arch,
            approach=entry.name,
            verify=self.verify_policy(),
            workload_params=dict(self.workload_params),
            options=dict(self.options),
        )

    def group_key(self) -> Tuple[str, int]:
        """Topology identity for online batching (call on a normalized req)."""

        return architecture_key(self.architecture, self.size)

    def identity_kwargs(self) -> Tuple[Tuple[str, object], ...]:
        """The kwargs tuple of this request's cell identity.

        ``num_qubits``/``max_qubits`` are folded in (cell specs carry them
        in the kwargs tuple), so full-device requests -- where both stay
        None -- produce exactly the keys batch sweeps write, and a served
        hot point can hit entries computed offline.
        """

        kwargs = dict(self.options)
        if self.num_qubits is not None:
            kwargs["num_qubits"] = self.num_qubits
        if self.max_qubits is not None:
            kwargs["max_qubits"] = self.max_qubits
        return tuple(kwargs.items())

    def cache_key(self, *, code: Optional[str] = None) -> str:
        """The :func:`cell_cache_key` for this request (normalized form)."""

        from ..eval.cache import cell_cache_key

        return cell_cache_key(
            self.approach,
            self.architecture,
            self.size,
            kwargs=self.identity_kwargs(),
            timeout_s=self.timeout_s,
            workload=self.workload,
            workload_params=tuple(self.workload_params.items()),
            verify=self.verify_policy(),
            code=code,
        )

    def to_compile_kwargs(self) -> Dict[str, object]:
        """Kwargs for :func:`repro.compile` -- the shared-verbatim contract."""

        return {
            "workload": self.workload,
            "architecture": self.architecture,
            "size": self.size,
            "approach": self.approach,
            "num_qubits": self.num_qubits,
            "workload_params": dict(self.workload_params) or None,
            "verify": self.verify_policy() != "off",
            "timeout_s": self.timeout_s,
            "max_qubits": self.max_qubits,
            **self.options,
        }


@dataclass
class CompileResponse:
    """What one served compilation returned (the wire's response body).

    ``metrics`` is the full
    :class:`~repro.eval.metrics.CompilationResult` row as a dict -- the
    same shape the cache and the store persist, so "bit-equal to serial
    ``repro.compile()``" is checkable field by field.  ``cache`` records
    where the answer came from: ``None`` (computed), ``"lru"`` (in-memory
    hot set) or ``"store"`` (persistent backing store).
    """

    status: str
    workload: str
    approach: str
    architecture: str
    num_qubits: int
    metrics: Dict[str, object] = field(default_factory=dict)
    wall_s: Optional[float] = None
    cache: Optional[str] = None
    message: str = ""
    api_version: str = API_VERSION

    _FIELDS = (
        "status",
        "workload",
        "approach",
        "architecture",
        "num_qubits",
        "metrics",
        "wall_s",
        "cache",
        "message",
        "api_version",
    )

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @classmethod
    def from_result(cls, row, *, cache: Optional[str] = None) -> "CompileResponse":
        """Wrap an eval-harness ``CompilationResult`` row."""

        return cls(
            status=row.status,
            workload=row.workload,
            approach=row.approach,
            architecture=row.architecture,
            num_qubits=row.num_qubits,
            metrics=row.to_dict(),
            wall_s=row.compile_time_s,
            cache=cache,
            message=row.message or "",
        )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompileResponse":
        if not isinstance(data, dict):
            raise ApiError(
                f"response must be a JSON object (got {type(data).__name__})"
            )
        _reject_unknown("response", data, cls._FIELDS)
        _check_version("response", data.get("api_version", API_VERSION))
        kind = "response"
        for name in ("status", "workload", "approach", "architecture"):
            if not isinstance(data.get(name), str):
                raise ApiError(f"response.{name} must be a string")
        return cls(
            status=data["status"],
            workload=data["workload"],
            approach=data["approach"],
            architecture=data["architecture"],
            num_qubits=_typed(kind, "num_qubits", data.get("num_qubits", 0), int, "an integer"),
            metrics=dict(
                _typed(kind, "metrics", data.get("metrics") or {}, dict, "an object")
            ),
            wall_s=_typed(kind, "wall_s", data.get("wall_s"), (int, float), "a number"),
            cache=_typed(kind, "cache", data.get("cache"), str, "a string"),
            message=_typed(kind, "message", data.get("message", ""), str, "a string"),
            api_version=API_VERSION,
        )

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "CompileResponse":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ApiError(f"response is not valid JSON: {exc}") from None
        return cls.from_dict(data)


def execute_request(req: CompileRequest):
    """Run one (normalized) request through the cell machinery.

    Injects the process-local warm topology (:func:`cached_topology`), so
    pool workers that prewarmed a ``(kind, size)`` never rebuild distance
    matrices or SABRE tables per request.  Returns the
    :class:`~repro.eval.metrics.CompilationResult` row; per-cell failures
    (timeout, unsupported, construction errors) come back as typed statuses,
    exactly as in batch sweeps.
    """

    from ..eval.runners import cached_topology, run_cell

    topology = None
    if req.size is not None:
        topology = cached_topology(req.architecture, req.size)
    return run_cell(
        req.approach,
        req.architecture,
        req.size,
        workload=req.workload,
        workload_params=dict(req.workload_params) or None,
        num_qubits=req.num_qubits,
        verify=req.verify_policy(),
        timeout_s=req.timeout_s,
        max_qubits=req.max_qubits,
        topology=topology,
        **req.options,
    )
