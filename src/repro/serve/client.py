"""``ServeClient`` -- the typed client of the compilation service.

The client speaks the same :class:`~repro.serve.api.CompileRequest` /
:class:`~repro.serve.api.CompileResponse` schema the server does (one
``api_version``, strict parsing both ways), and its ``compile(**kwargs)``
takes exactly the :func:`repro.compile` keyword surface -- swapping a local
``repro.compile(...)`` call for ``client.compile(...)`` is a one-line
change.

Transport errors are typed the same way the dispatcher's client types
them: transient connection trouble is retried with capped exponential
backoff and per-client deterministic jitter
(:class:`~repro.eval.dispatch.DispatchClient` is the template); a server
that *answered* is never blindly retried -- 400 raises
:class:`ServeRequestError` with the server's did-you-mean message, 429/503
raise :class:`ServeOverloaded` carrying the advisory ``Retry-After`` (the
caller owns its load-shedding policy; ``retry_overload=True`` opts into
honoring it client-side).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.error
import urllib.request
import zlib
from typing import Dict, Optional

from .api import API_VERSION, CompileRequest, CompileResponse

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeRequestError",
    "ServeOverloaded",
    "ServeUnreachable",
]

#: exception types treated as transient connection trouble (retried with
#: backoff); HTTP *status* errors are answers and are handled typed.
_TRANSIENT_ERRORS = (
    urllib.error.URLError,
    http.client.HTTPException,
    ConnectionError,
    TimeoutError,
    socket.timeout,
)


class ServeError(RuntimeError):
    """Base class of every serve-client failure."""


class ServeRequestError(ServeError):
    """The server rejected the request as malformed (HTTP 400)."""


class ServeOverloaded(ServeError):
    """The server shed load (HTTP 429) or is draining (HTTP 503)."""

    def __init__(self, status: int, message: str, retry_after_s: Optional[int]):
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


class ServeUnreachable(ServeError):
    """The server stayed unreachable through the whole backoff budget."""


class ServeClient:
    """JSON-over-HTTP client for one ``repro.serve`` endpoint."""

    def __init__(
        self,
        url: str,
        *,
        name: str = "client",
        timeout_s: float = 60.0,
        max_tries: int = 5,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        retry_overload: bool = False,
    ) -> None:
        import random  # seeded instance only; never the global generator

        self.url = url.rstrip("/")
        self._timeout_s = timeout_s
        self._max_tries = max(1, int(max_tries))
        self._base = backoff_base_s
        self._cap = backoff_cap_s
        self._retry_overload = retry_overload
        self._rng = random.Random(zlib.crc32(name.encode()))
        self.retries = 0  # transient errors survived (for tests/monitoring)

    # -- public surface ----------------------------------------------------
    def compile(self, **kwargs: object) -> CompileResponse:
        """``repro.compile`` kwargs, served remotely.

        Keywords that are :class:`CompileRequest` fields map directly;
        everything else is an approach option (``seed=3``), exactly as with
        ``repro.compile(..., **opts)``.
        """

        fields = {}
        options: Dict[str, object] = {}
        for key, value in kwargs.items():
            if key in CompileRequest._FIELDS and key != "options":
                fields[key] = value
            else:
                options[key] = value
        if options:
            fields["options"] = {**options, **dict(fields.get("options", {}))}
        return self.submit(CompileRequest(**fields))

    def submit(self, request: CompileRequest) -> CompileResponse:
        """Send one request; returns the typed response (or raises)."""

        payload = self._exchange(
            "POST", "/v1/compile", request.to_json().encode()
        )
        return CompileResponse.from_dict(payload)

    def health(self) -> Dict[str, object]:
        return self._exchange("GET", "/v1/health", None)

    def stats(self) -> Dict[str, object]:
        return self._exchange("GET", "/v1/stats", None)

    # -- transport ---------------------------------------------------------
    def backoff_s(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based): capped doubling + jitter."""

        raw = min(self._cap, self._base * (2 ** (attempt - 1)))
        return raw * (0.5 + 0.5 * self._rng.random())

    def _exchange(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Dict[str, object]:
        last_error: Optional[Exception] = None
        for attempt in range(self._max_tries):
            if attempt:
                time.sleep(self.backoff_s(attempt))
            try:
                request = urllib.request.Request(
                    self.url + path,
                    data=body,
                    method=method,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(
                    request, timeout=self._timeout_s
                ) as response:
                    return json.loads(response.read().decode())
            except urllib.error.HTTPError as exc:
                typed = self._status_error(path, exc)
                if typed is None:  # overload with retry_overload=True
                    last_error = ServeOverloaded(exc.code, "overloaded", None)
                    continue
                raise typed
            except _TRANSIENT_ERRORS as exc:
                last_error = exc
                self.retries += 1
        raise ServeUnreachable(
            f"server at {self.url} unreachable after {self._max_tries} "
            f"tries to {path}: {last_error!r}"
        )

    def _status_error(self, path, exc) -> Optional[ServeError]:
        """Typed error for an HTTP status answer (None = retry overload)."""

        try:
            detail = json.loads(exc.read().decode()).get("error", "")
        except (ValueError, OSError):
            detail = ""
        message = detail or f"HTTP {exc.code} {exc.reason}"
        if exc.code in (429, 503):
            retry_after = exc.headers.get("Retry-After")
            retry_after = int(retry_after) if retry_after else None
            if self._retry_overload:
                wait_s = retry_after if retry_after is not None else 0.1
                time.sleep(wait_s)
                self.retries += 1
                return None
            return ServeOverloaded(exc.code, message, retry_after)
        if exc.code == 400:
            return ServeRequestError(message)
        return ServeError(f"server rejected {path}: {message}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ServeClient({self.url!r}, api_version={API_VERSION!r})"
