"""CLI entry point: ``python -m repro.serve [--host] [--port] [--workers]``.

Prints one ``listening on http://HOST:PORT`` line once the pool is warm and
the socket is bound (``--port 0`` binds an ephemeral port; tools parse this
line to discover it), then serves until SIGTERM/SIGINT triggers a graceful
drain.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional, Tuple

from .server import CompileService, ServeConfig


def _prewarm_target(text: str) -> Tuple[str, int]:
    """Parse one ``KIND:SIZE`` prewarm target (e.g. ``grid:5``)."""

    kind, sep, size = text.partition(":")
    if not sep or not kind:
        raise argparse.ArgumentTypeError(
            f"prewarm target must look like KIND:SIZE (got {text!r})"
        )
    try:
        return kind, int(size)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"prewarm size must be an integer (got {size!r})"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve repro.compile() over HTTP/JSON with warm workers.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8181, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="compile worker processes"
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help="ExperimentStore .db backing persistent cache hits",
    )
    parser.add_argument(
        "--lru-size", type=int, default=256, help="in-memory hot entries (0 off)"
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=10.0,
        help="batching window: how long arrivals coalesce before a flush",
    )
    parser.add_argument(
        "--max-batch", type=int, default=8, help="largest per-worker batch"
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admission cap: in-flight requests beyond this are 429'd",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="default per-request compile budget (requests may override)",
    )
    parser.add_argument(
        "--prewarm",
        type=_prewarm_target,
        action="append",
        default=None,
        metavar="KIND:SIZE",
        help="topology to warm in every worker (repeatable), e.g. grid:5",
    )
    parser.add_argument(
        "--max-respawns",
        type=int,
        default=None,
        help="worker crash budget (default: 2x workers)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store=args.store,
        lru_size=args.lru_size,
        batch_window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        default_timeout_s=args.timeout_s,
        prewarm=tuple(args.prewarm or ()),
        max_respawns=args.max_respawns,
    )


async def _serve(config: ServeConfig) -> None:
    service = CompileService(config)
    await service.start()
    service.install_signal_handlers()
    print(
        f"repro.serve listening on http://{config.host}:{service.port} "
        f"(workers={config.workers}, lru={config.lru_size}, "
        f"store={config.store or '-'})",
        flush=True,
    )
    await service.run_until_stopped()
    print("repro.serve drained and stopped", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    asyncio.run(_serve(config_from_args(args)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
