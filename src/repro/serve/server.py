"""The asyncio compilation service: batching front end over warm workers.

One event loop owns everything client-facing: a minimal HTTP/1.1 JSON
protocol (stdlib streams, same spirit as the dispatcher's
``ThreadingHTTPServer`` protocol, but async so thousands of waiting clients
cost a coroutine each, not a thread each), the admission queue, the
in-memory LRU, and the batcher.  Compilation itself happens in the
:class:`~repro.serve.pool.WarmWorkerPool` -- forked processes that hold
prewarmed topology tables -- so the loop never blocks on a mapper.

Request lifecycle::

    POST /v1/compile
      -> parse + strict-validate (ApiError/UnknownNameError -> 400 + hints)
      -> draining?                     -> 503 + Retry-After
      -> LRU hit?                      -> 200 (cache="lru")
      -> store hit? (--store DB)       -> 200 (cache="store"), LRU warmed
      -> admission: inflight >= cap    -> 429 + Retry-After
      -> queue; the batcher sleeps one batching window, groups the queue
         by topology (the sweep grouping of PR 2/4, applied online), and
         submits per-group chunks to the pool
      -> worker computes -> 200, ok rows populate LRU + store

Backpressure is by *bounded inflight count*: the queue cap counts queued +
batched-but-unfinished requests, so a stalled pool turns arrivals away with
429 instead of accumulating unbounded futures.  Graceful drain (SIGTERM /
``stop()``): new requests get 503, every accepted request is answered, then
the pool is dismissed -- drain-without-loss is a test invariant.

Per-request ``timeout_s`` rides the existing harness budget
(:func:`repro.utils.cell_budget` inside the worker), so a runaway cell
yields a typed ``status == "timeout"`` response, never a hung connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..registry import UnknownNameError
from .api import API_VERSION, ApiError, CompileRequest, CompileResponse
from .lru import LRUCache
from .pool import PoolShutdown, WarmWorkerPool

__all__ = ["ServeConfig", "CompileService"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _PoolFailure(RuntimeError):
    """A batch failed at the pool layer (crash budget exhausted)."""


@dataclass
class ServeConfig:
    """Knobs of one :class:`CompileService` instance."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; the bound port is ``service.port``
    workers: int = 2
    #: how long the batcher waits after the first arrival before flushing --
    #: the window in which concurrent requests coalesce into one batch
    batch_window_s: float = 0.01
    max_batch: int = 8  #: largest batch handed to one worker at once
    #: admission cap: queued + in-flight requests beyond this are 429'd
    max_queue: int = 64
    lru_size: int = 256  #: in-memory hot-set entries (0 disables)
    store: Optional[str] = None  #: ``.db`` path for persistent cache hits
    #: server-side default for requests that carry no ``timeout_s``
    default_timeout_s: Optional[float] = None
    #: topologies every worker warms before the server accepts traffic
    prewarm: Sequence[Tuple[str, int]] = ()
    drain_timeout_s: float = 30.0
    ready_timeout_s: float = 120.0
    retry_after_s: int = 1  #: advisory Retry-After on 429/503
    max_respawns: Optional[int] = None  #: worker crash budget (pool default)


class CompileService:
    """The serving state machine; ``start()``/``stop()`` from one loop."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[WarmWorkerPool] = None
        self._cache = None  # ResultCache over --store, if configured
        self._lru = LRUCache(self.config.lru_size)
        self._queue: List[Tuple[CompileRequest, asyncio.Future]] = []
        self._batches: Dict[int, List[Tuple[CompileRequest, asyncio.Future]]] = {}
        self._wake = asyncio.Event()
        self._batcher: Optional[asyncio.Task] = None
        self._draining = False
        self._stopping = False
        self._stopped = asyncio.Event()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "computed": 0,
            "lru_hits": 0,
            "store_hits": 0,
            "batches": 0,
            "rejected_400": 0,
            "rejected_429": 0,
            "rejected_503": 0,
            "pool_failures": 0,
        }

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Fork + prewarm the pool, then bind and start serving."""

        self._loop = asyncio.get_running_loop()
        # Workers fork *before* the store's SQLite handle exists: forked
        # children must never inherit an open database connection.
        self._pool = WarmWorkerPool(
            self.config.workers,
            on_result=self._pool_result,
            prewarm=self.config.prewarm,
            max_respawns=self.config.max_respawns,
        )
        ready = await self._loop.run_in_executor(
            None, self._pool.wait_ready, self.config.ready_timeout_s
        )
        if not ready:
            self._pool.close(drain=False)
            raise RuntimeError("worker pool failed to come up (prewarm hang?)")
        if self.config.store:
            from ..eval.cache import ResultCache

            self._cache = ResultCache(Path(self.config.store))
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._batcher = asyncio.create_task(self._batch_loop())

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (main thread only)."""

        import signal

        if self._loop is None:
            raise RuntimeError("install_signal_handlers requires start() first")
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.stop())
            )

    async def stop(self) -> None:
        """Drain: 503 new arrivals, answer everything accepted, shut down."""

        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        self._draining = True
        deadline = self._loop.time() + self.config.drain_timeout_s
        while self._inflight() and self._loop.time() < deadline:
            await asyncio.sleep(0.02)
        if self._batcher is not None:
            self._batcher.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pool is not None:
            await self._loop.run_in_executor(
                None,
                lambda: self._pool.close(
                    drain=True, timeout_s=self.config.drain_timeout_s
                ),
            )
        if self._cache is not None:
            self._cache.close()
        self._stopped.set()

    async def run_until_stopped(self) -> None:
        await self._stopped.wait()

    # -- pool results ------------------------------------------------------
    def _pool_result(
        self, batch_id: int, rows: Optional[List[dict]], error: Optional[str]
    ) -> None:
        """Pump-thread callback: trampoline into the event loop."""

        self._loop.call_soon_threadsafe(self._finish_batch, batch_id, rows, error)

    def _finish_batch(
        self, batch_id: int, rows: Optional[List[dict]], error: Optional[str]
    ) -> None:
        chunk = self._batches.pop(batch_id, None)
        if chunk is None:
            return
        if rows is None:
            self.counters["pool_failures"] += 1
            for _, fut in chunk:
                if not fut.done():
                    fut.set_exception(_PoolFailure(error or "pool failure"))
            return
        for (request, fut), row in zip(chunk, rows):
            if row.get("status") == "ok":
                # Mirror the batch harness: only ok cells are cacheable
                # (timeouts depend on the machine, errors on the moment).
                key = self._key_for(request)
                self._lru.put(key, row)
                if self._cache is not None:
                    from ..eval.metrics import CompilationResult

                    self._cache.put(key, CompilationResult.from_dict(row))
            self.counters["computed"] += 1
            if not fut.done():
                fut.set_result(row)

    # -- batching ----------------------------------------------------------
    async def _batch_loop(self) -> None:
        """Coalesce the live queue into topology-grouped pool batches."""

        while True:
            await self._wake.wait()
            self._wake.clear()
            if not self._queue:
                continue
            # The batching window: arrivals during this sleep join the
            # flush, which is where concurrent same-topology requests
            # coalesce into one warm-worker batch.
            await asyncio.sleep(self.config.batch_window_s)
            pending, self._queue = self._queue, []
            groups: Dict[Tuple[str, int], List] = {}
            for item in pending:
                groups.setdefault(item[0].group_key(), []).append(item)
            for group in sorted(groups):
                items = groups[group]
                for lo in range(0, len(items), self.config.max_batch):
                    chunk = items[lo : lo + self.config.max_batch]
                    try:
                        batch_id = self._pool.submit([r for r, _ in chunk])
                    except PoolShutdown as exc:
                        for _, fut in chunk:
                            if not fut.done():
                                fut.set_exception(_PoolFailure(str(exc)))
                        continue
                    self._batches[batch_id] = chunk
                    self.counters["batches"] += 1

    def _inflight(self) -> int:
        return len(self._queue) + sum(len(c) for c in self._batches.values())

    def _key_for(self, request: CompileRequest) -> str:
        """Cache key; via :meth:`ResultCache.key` when a store is attached
        (that path stashes the denormalized identity columns the store
        indexes), plain :func:`cell_cache_key` otherwise -- both derive the
        identical key string."""

        if self._cache is not None:
            return self._cache.key(
                request.approach,
                request.architecture,
                request.size,
                kwargs=request.identity_kwargs(),
                timeout_s=request.timeout_s,
                workload=request.workload,
                workload_params=tuple(request.workload_params.items()),
                verify=request.verify_policy(),
            )
        return request.cache_key()

    # -- request handling --------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            status, payload, retry_after = await self._route(method, path, body)
            self._write_response(writer, status, payload, retry_after)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader) -> Optional[Tuple[str, str, bytes]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    @staticmethod
    def _write_response(
        writer, status: int, payload: dict, retry_after: Optional[int]
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if retry_after is not None:
            head += f"Retry-After: {retry_after}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + body)

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, dict, Optional[int]]:
        if path == "/v1/compile":
            if method != "POST":
                return 405, {"error": "POST only"}, None
            return await self._compile(body)
        if path == "/v1/health" and method == "GET":
            status = "draining" if self._draining else "ok"
            return 200, {"status": status, "api_version": API_VERSION}, None
        if path == "/v1/stats" and method == "GET":
            return 200, self.stats(), None
        return 404, {"error": f"unknown endpoint {method} {path}"}, None

    async def _compile(self, body: bytes) -> Tuple[int, dict, Optional[int]]:
        self.counters["requests"] += 1
        retry_after = self.config.retry_after_s
        try:
            request = CompileRequest.from_json(body)
            if request.timeout_s is None:
                request.timeout_s = self.config.default_timeout_s
            request = request.normalized()
        except (ApiError, UnknownNameError, ValueError) as exc:
            self.counters["rejected_400"] += 1
            return 400, {"error": str(exc), "api_version": API_VERSION}, None
        if self._draining:
            self.counters["rejected_503"] += 1
            return (
                503,
                {"error": "server is draining", "api_version": API_VERSION},
                retry_after,
            )
        key = self._key_for(request)
        row = self._lru.get(key)
        if row is not None:
            self.counters["lru_hits"] += 1
            return 200, self._response_for(row, cache="lru"), None
        if self._cache is not None:
            cached = self._cache.get(key)
            if cached is not None:
                self.counters["store_hits"] += 1
                row = cached.to_dict()
                row.get("extra", {}).pop("cache", None)
                self._lru.put(key, row)
                return 200, self._response_for(row, cache="store"), None
        if self._inflight() >= self.config.max_queue:
            self.counters["rejected_429"] += 1
            return (
                429,
                {
                    "error": (
                        f"admission queue full "
                        f"({self.config.max_queue} requests in flight)"
                    ),
                    "api_version": API_VERSION,
                },
                retry_after,
            )
        fut = self._loop.create_future()
        self._queue.append((request, fut))
        self._wake.set()
        try:
            row = await fut
        except _PoolFailure as exc:
            return 503, {"error": str(exc), "api_version": API_VERSION}, retry_after
        return 200, self._response_for(row, cache=None), None

    @staticmethod
    def _response_for(row: dict, *, cache: Optional[str]) -> dict:
        from ..eval.metrics import CompilationResult

        result = CompilationResult.from_dict(dict(row))
        return CompileResponse.from_result(result, cache=cache).to_dict()

    # -- introspection -----------------------------------------------------
    def stats(self) -> Dict[str, object]:
        data: Dict[str, object] = dict(self.counters)
        data["api_version"] = API_VERSION
        data["inflight"] = self._inflight()
        data["draining"] = self._draining
        data["lru"] = self._lru.stats()
        if self._pool is not None:
            data["pool"] = self._pool.stats()
        return data
