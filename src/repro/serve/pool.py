"""Prewarmed process-pool backend for the compilation service.

Workers are long-lived forked processes that build their hot state *once* --
:func:`~repro.eval.runners.prepare_topology` for every prewarm target
(topology instance, all-pairs distance matrix, SABRE routing tables, and the
C kernel import) -- then loop on a per-worker task queue.  Batches are
addressed to a specific worker, which is what makes the pool *warm*: the
server routes a topology group's batches at workers that already hold that
topology's tables (any worker keeps a process-local
:func:`~repro.eval.runners.cached_topology` memo, so even unrouted groups
pay construction once per worker, not once per request).

Fault model, in the :class:`~repro.eval.dispatch._WorkerFleet` mold: a
supervisor thread reaps dead workers, respawns them under a bounded budget,
and *resubmits* the dead worker's in-flight batches to a live worker -- the
parent tracks every assignment, so a SIGKILLed worker (chaos:
``kill-worker``) costs latency, never an error surfaced to a client.  A
batch that was computed twice (worker finished, then died before the parent
reaped it) is delivered once: completions for unknown batch ids are
dropped, and re-execution is safe because cells are deterministic.

Results travel over a **per-worker pipe** whose only writer is that
worker's main thread -- deliberately not a shared ``multiprocessing.Queue``.
A queue's write end is guarded by a lock shared by every writer *process*,
taken by a background feeder thread; SIGKILL a worker in the window where
its feeder holds that lock (on one CPU the feeder routinely waits out the
main thread's whole GIL slice there) and the lock is orphaned, wedging
every surviving and future worker's sends forever.  With one pipe per
worker and in-thread ``Connection.send``, a killed worker can tear nothing
but its own channel: the parent-side reader thread sees ``EOFError`` and
exits, and the supervisor's reap/respawn path owns recovery.  Each reader
thread delivers its worker's results via the ``on_result`` callback; the
asyncio server trampolines that back into its event loop with
``call_soon_threadsafe``.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..eval import chaos
from .api import CompileRequest, execute_request

__all__ = ["WarmWorkerPool", "PoolShutdown"]


class PoolShutdown(RuntimeError):
    """Submission after ``close()``: the pool is no longer accepting work."""


#: (batch_id, rows or None, error message or None)
ResultCallback = Callable[[int, Optional[List[dict]], Optional[str]], None]


def _worker_main(
    worker_id: str,
    tasks: "multiprocessing.queues.Queue",
    results: "multiprocessing.connection.Connection",
    prewarm: Sequence[Tuple[str, int]],
) -> None:
    """One pool worker: prewarm, announce readiness, then serve batches."""

    # A *respawned* worker forks after the server installed its asyncio
    # signal handlers and bound its socket, so the child inherits both: a
    # SIGTERM disposition that only writes to the parent's (dead) wakeup
    # pipe, and the listening fd.  Reset the dispositions so the default
    # actions apply again -- otherwise a worker orphaned by a killed server
    # shrugs off SIGTERM and keeps the port open forever.
    import os
    import signal

    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)

    # Orphan watchdog: if the server dies without dismissing us (SIGKILL --
    # nothing runs parent-side), exit instead of blocking on tasks.get()
    # forever with the inherited listening socket still open.
    parent = os.getppid()

    def _watch_parent() -> None:  # pragma: no cover - exercised via e2e kill
        while True:
            time.sleep(1.0)
            if os.getppid() != parent:
                os._exit(0)

    threading.Thread(
        target=_watch_parent, name="repro-serve-orphan-watch", daemon=True
    ).start()

    chaos.reload()  # fresh fire counters; a fork must not inherit the parent's
    cfg = chaos.active()
    from ..eval.runners import prepare_topology

    for kind, size in prewarm:
        prepare_topology(kind, size)
    # In-thread sends on a pipe this process alone writes: no feeder
    # thread, no cross-process lock a SIGKILL could orphan (see module
    # docstring).
    results.send(("ready", None))
    ordinal = 0
    while True:
        task = tasks.get()
        if task is None:
            break
        batch_id, requests = task
        rows = []
        for request in requests:
            ordinal += 1
            if cfg.fires("kill-worker", worker=worker_id, cell=ordinal):
                chaos.kill_self()  # pragma: no cover - the process dies here
            try:
                rows.append(execute_request(request).to_dict())
            except Exception as exc:  # caller bugs -> typed error rows
                results.send(
                    ("failed", (batch_id, f"{type(exc).__name__}: {exc}"))
                )
                break
        else:
            results.send(("done", (batch_id, rows)))
    results.close()


class WarmWorkerPool:
    """Supervised fleet of prewarmed compile workers.

    Parameters
    ----------
    workers:
        Number of worker processes.
    on_result:
        ``on_result(batch_id, rows, error)`` -- invoked from a worker's
        reader thread for every finished batch (``rows`` is a list of
        ``CompilationResult`` dicts; on unrecoverable failure ``rows`` is
        None and ``error`` the message).
    prewarm:
        ``(kind, size)`` topology targets every worker warms before
        announcing readiness.
    max_respawns:
        Crash budget across the pool's lifetime (default ``2 * workers``);
        once exhausted, the dead worker's batches fail instead of hanging.
    """

    def __init__(
        self,
        workers: int,
        *,
        on_result: ResultCallback,
        prewarm: Sequence[Tuple[str, int]] = (),
        max_respawns: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker (got {workers})")
        self._mp = multiprocessing.get_context()
        self._on_result = on_result
        self._prewarm = tuple(prewarm)
        self._lock = threading.Lock()
        self._procs: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._queues: Dict[str, "multiprocessing.queues.Queue"] = {}
        self._readers: Dict[str, threading.Thread] = {}
        #: batch_id -> (worker_id, requests) for every in-flight batch
        self._assigned: Dict[int, Tuple[str, List[CompileRequest]]] = {}
        self._ready: set = set()
        self._all_ready = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._next_worker = 0
        self._next_batch = 0
        self._closed = False
        self._stop = threading.Event()
        self.respawns = 0
        self.reassigned_batches = 0
        self._respawns_left = (
            max_respawns if max_respawns is not None else 2 * workers
        )
        for _ in range(workers):
            self._spawn_one()
        self._supervisor = threading.Thread(
            target=self._supervise_loop, name="repro-serve-supervisor", daemon=True
        )
        self._supervisor.start()

    # -- lifecycle ---------------------------------------------------------
    def _spawn_one(self) -> str:
        """Start one worker with a fresh task queue (caller holds no lock)."""

        worker_id = f"w{self._next_worker}"
        self._next_worker += 1
        tasks = self._mp.Queue()
        recv_conn, send_conn = self._mp.Pipe(duplex=False)
        proc = self._mp.Process(
            target=_worker_main,
            args=(worker_id, tasks, send_conn, self._prewarm),
            name=f"repro-serve-{worker_id}",
            daemon=True,
        )
        proc.start()
        send_conn.close()  # the child holds the only write end now
        reader = threading.Thread(
            target=self._reader_loop,
            args=(worker_id, recv_conn),
            name=f"repro-serve-read-{worker_id}",
            daemon=True,
        )
        with self._lock:
            self._procs[worker_id] = proc
            self._queues[worker_id] = tasks
            self._readers[worker_id] = reader
        reader.start()
        return worker_id

    def wait_ready(self, timeout_s: float = 60.0) -> bool:
        """Block until every worker finished prewarming (True on success)."""

        return self._all_ready.wait(timeout_s)

    # -- submission --------------------------------------------------------
    def submit(self, requests: Sequence[CompileRequest]) -> int:
        """Queue one batch on the least-loaded live worker; returns batch id."""

        requests = list(requests)
        with self._lock:
            if self._closed:
                raise PoolShutdown("pool is shut down")
            batch_id = self._next_batch
            self._next_batch += 1
            worker_id = self._pick_worker_locked()
            self._assigned[batch_id] = (worker_id, requests)
            self._idle.clear()
            self._queues[worker_id].put((batch_id, requests))
        return batch_id

    def _pick_worker_locked(self) -> str:
        """Least-loaded worker by in-flight batch count (ready ones first)."""

        load = {wid: 0 for wid in self._procs}
        for wid, _ in self._assigned.values():
            if wid in load:
                load[wid] += 1
        candidates = [wid for wid in load if wid in self._ready] or list(load)
        if not candidates:
            raise PoolShutdown("no live workers")
        return min(candidates, key=lambda wid: (load[wid], wid))

    # -- readers + supervision ---------------------------------------------
    def _reader_loop(
        self,
        worker_id: str,
        conn: "multiprocessing.connection.Connection",
    ) -> None:
        """Drain one worker's result pipe until it dies or closes it."""

        try:
            while True:
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError):
                    return  # worker exited (or was killed); supervisor reaps
                if kind == "ready":
                    with self._lock:
                        self._ready.add(worker_id)
                        if self._ready >= set(self._procs):
                            self._all_ready.set()
                    continue
                batch_id, body = payload
                with self._lock:
                    known = self._assigned.pop(batch_id, None)
                    if not self._assigned:
                        self._idle.set()
                if known is None:
                    continue  # duplicate completion after a reassignment
                if kind == "done":
                    self._on_result(batch_id, body, None)
                else:
                    self._on_result(batch_id, None, body)
        finally:
            conn.close()
            with self._lock:
                self._readers.pop(worker_id, None)

    def _supervise_loop(self) -> None:
        while not self._stop.wait(0.1):
            self._reap_dead()

    def _reap_dead(self) -> None:
        """Respawn crashed workers and resubmit their in-flight batches."""

        with self._lock:
            dead = [
                wid for wid, proc in self._procs.items() if not proc.is_alive()
            ]
            if not dead:
                return
            orphaned: List[Tuple[int, List[CompileRequest]]] = []
            for wid in dead:
                self._procs.pop(wid, None)
                self._queues.pop(wid, None)
                self._ready.discard(wid)
                for batch_id, (owner, requests) in list(self._assigned.items()):
                    if owner == wid:
                        orphaned.append((batch_id, requests))
            closing = self._closed and not orphaned
            can_respawn = self._respawns_left > 0 and not self._closed
            if can_respawn:
                self._respawns_left -= len(dead)
                self.respawns += len(dead)
        if closing:
            return
        fresh = [self._spawn_one() for _ in dead] if can_respawn else []
        with self._lock:
            for batch_id, requests in orphaned:
                targets = fresh or [
                    wid for wid in self._procs if self._procs[wid].is_alive()
                ]
                if not targets:
                    self._assigned.pop(batch_id, None)
                    if not self._assigned:
                        self._idle.set()
                    self._on_result(
                        batch_id,
                        None,
                        "worker crashed and the respawn budget is exhausted",
                    )
                    continue
                target = min(targets)
                self._assigned[batch_id] = (target, requests)
                self.reassigned_batches += 1
                self._queues[target].put((batch_id, requests))

    # -- shutdown ----------------------------------------------------------
    def drain(self, timeout_s: float = 30.0) -> bool:
        """Wait for every in-flight batch to finish (True if none remain)."""

        return self._idle.wait(timeout_s)

    def close(self, *, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop the pool: optionally drain, then dismiss and join workers."""

        if drain:
            self.drain(timeout_s)
        with self._lock:
            self._closed = True
            queues = list(self._queues.values())
            procs = list(self._procs.values())
        for tasks in queues:
            try:
                tasks.put(None)
            except (ValueError, OSError):  # pragma: no cover - closed queue
                pass
        deadline = time.monotonic() + 10.0
        for proc in procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._stop.set()
        self._supervisor.join(timeout=5.0)
        with self._lock:
            readers = list(self._readers.values())
        for reader in readers:
            reader.join(timeout=5.0)

    # -- introspection -----------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "workers": len(self._procs),
                "ready": len(self._ready),
                "inflight_batches": len(self._assigned),
                "respawns": self.respawns,
                "reassigned_batches": self.reassigned_batches,
            }
