"""SABRE qubit mapping (Li, Ding, Xie -- ASPLOS 2019), re-implemented.

SABRE is the paper's main baseline (Section 7): a heuristic SWAP-insertion
router that maintains a *front layer* of gates whose dependences are resolved,
greedily executes whatever is already hardware-compliant, and otherwise
inserts the SWAP that minimises a distance heuristic combining the front layer
with a look-ahead *extended set*, modulated by per-qubit decay factors to
spread SWAPs across qubits.  The initial mapping is improved with
forward/backward passes over the circuit ("reverse traversal").

This re-implementation follows the published algorithm; it is seeded (the
paper's Fig. 27 shows how strongly SABRE's output depends on the seed, and
:mod:`repro.eval.experiments` reproduces that observation).  The default
routing path scores candidate SWAPs by *exact deltas* against maintained
base sums: the front term costs O(1) per candidate (front gates are
vertex-disjoint), and the extended-set term is gathered only for candidates
incident to an extended-set endpoint -- every other candidate's ext delta is
exactly 0 -- so the per-iteration cost no longer carries the full
``candidates x extended-set`` relabel matrix and 1024-qubit instances route
at a near-flat per-swap-iteration cost (see EXPERIMENTS.md "Performance").
A cross-iteration per-candidate score cache (``incremental=True``) is
available and bit-identical, but stays opt-in: on QFT workloads the front
layer turns over every ~2 swaps, which invalidates it before it amortises.
The reference path (``vectorized=False``) keeps the textbook per-candidate
loop and stays bit-identical.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..arch.topology import Topology
from ..utils import BoundedCache
from ..circuit.circuit import Circuit
from ..circuit.gates import GateKind
from ..circuit.qft import qft_circuit
from ..circuit.schedule import MappedCircuit, MappingBuilder

__all__ = ["SabreMapper", "sabre_tables_for", "SABRE_KERNELS", "KERNEL_ENV_VAR"]

#: recognised values for ``SabreMapper(kernel=...)`` / ``REPRO_SABRE_KERNEL``
SABRE_KERNELS = ("auto", "c", "python")

#: environment override for the routing kernel; wins over the constructor
#: argument, so CI (and operators) can force the fallback path repo-wide
#: without touching call sites
KERNEL_ENV_VAR = "REPRO_SABRE_KERNEL"

# Process-wide cache of the static per-topology tables the fast path uses
# (adjacency mask, lexicographic edge ids, per-qubit incidence bitsets).
# Keyed by the coupling graph identity (`Topology.graph_key`) so seed sweeps
# and topology-grouped evaluation workers build them once per (process,
# topology) instead of once per mapper instance.  LRU-bounded like the
# distance-matrix cache in :mod:`repro.arch.topology`.
_TABLE_CACHE: BoundedCache = BoundedCache(16)



def sabre_tables_for(
    topology: Topology,
) -> Tuple[np.ndarray, List[Tuple[int, int]], np.ndarray, np.ndarray]:
    """Static routing tables for ``topology``: ``(adjacency mask, edge list,
    edge array, incidence bitsets)``, shared process-wide.

    Edge id order equals ``sorted(edge_set)`` order, so an ascending array of
    edge ids enumerates candidate SWAPs exactly like the reference path's
    ``sorted(candidates)`` over (a, b) tuples.  Incidence is stored as
    little-endian bitsets: one row of bytes per qubit, bit ``eid`` set iff
    edge ``eid`` touches the qubit; the union of incident edges over any
    qubit set is then a single ``bitwise_or.reduce`` + ``unpackbits``.
    """

    key = topology.graph_key()
    hit = _TABLE_CACHE.lookup(key)
    if hit is not None:
        return hit
    n = topology.num_qubits
    mask = np.zeros((n, n), dtype=bool)
    for a, b in topology.edge_set:
        mask[a, b] = mask[b, a] = True
    mask.setflags(write=False)
    edge_list = sorted(topology.edge_set)
    edge_arr = np.asarray(edge_list, dtype=np.intp).reshape(len(edge_list), 2)
    nbytes = (len(edge_list) + 7) // 8
    edge_bits = np.zeros((n, max(1, nbytes)), dtype=np.uint8)
    for eid, (a, b) in enumerate(edge_list):
        edge_bits[a, eid >> 3] |= 1 << (eid & 7)
        edge_bits[b, eid >> 3] |= 1 << (eid & 7)
    edge_arr.setflags(write=False)
    edge_bits.setflags(write=False)
    return _TABLE_CACHE.store(key, (mask, edge_list, edge_arr, edge_bits))


@dataclass
class _Dag:
    """Lightweight per-qubit-chain dependence DAG (program order)."""

    num_gates: int
    successors: List[List[int]]
    indegree: List[int]

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "_Dag":
        last_on_qubit: Dict[int, int] = {}
        successors: List[List[int]] = [[] for _ in circuit.gates]
        indegree = [0] * len(circuit.gates)
        for idx, gate in enumerate(circuit.gates):
            preds = set()
            for q in gate.qubits:
                if q in last_on_qubit:
                    preds.add(last_on_qubit[q])
                last_on_qubit[q] = idx
            for p in preds:
                successors[p].append(idx)
                indegree[idx] += 1
        return cls(len(circuit.gates), successors, indegree)


def _extended_set_of(
    successors: List[List[int]],
    is2q: List[bool],
    front_2q: List[int],
    size: int,
) -> List[int]:
    """Look-ahead extended set: BFS over DAG successors of the front layer,
    collecting up to ``size`` two-qubit gates.  Layout-independent, shared by
    the reference and vectorized routing paths so they cannot drift apart.
    """

    out: List[int] = []
    frontier = list(front_2q)
    seen = set(front_2q)
    while frontier and len(out) < size:
        nxt: List[int] = []
        for g in frontier:
            for s in successors[g]:
                if s in seen:
                    continue
                seen.add(s)
                if is2q[s]:
                    out.append(s)
                    if len(out) >= size:
                        break
                nxt.append(s)
            if len(out) >= size:
                break
        frontier = nxt
    return out


class SabreMapper:
    """SABRE-style heuristic mapper.

    Parameters
    ----------
    topology:
        Target coupling graph.
    seed:
        RNG seed for the initial mapping (and tie breaking).
    passes:
        Number of traversal passes used to refine the initial mapping
        (1 = single forward pass with the seed mapping, 3 = the classic
        forward/backward/forward schedule).
    extended_set_size:
        Number of look-ahead gates in the extended set.
    extended_set_weight:
        Weight of the extended-set term in the heuristic.
    decay_delta / decay_reset_interval:
        Decay-factor parameters from the SABRE paper.
    vectorized:
        Score candidate SWAPs with numpy batch lookups against the distance
        matrix (default).  ``False`` selects the original per-candidate
        Python loop; both paths produce bit-identical routed circuits (the
        equivalence is covered by tests), the reference path just exists for
        cross-checking and for pedagogical clarity.
    incremental:
        Additionally keep per-candidate score components cached *across* swap
        iterations, rescoring only candidates the applied swap invalidated.
        Off by default: on QFT workloads the front layer turns over every ~2
        swaps (measured; see EXPERIMENTS.md "Performance"), which invalidates
        the cache before it amortises, so the default path rescores per
        iteration -- cheaply, because the extended-set term is only gathered
        for candidates incident to an extended-set endpoint (every other
        candidate's ext delta is exactly 0).  Output is bit-identical either
        way.
    kernel:
        Which routing engine runs the swap loop.  ``"auto"`` (default) uses
        the compiled C kernel (:mod:`repro.baselines._sabre_kernel`, built
        via ``python setup.py build_ext --inplace``) whenever it is built
        *and* the mapper is in its default scoring configuration
        (``vectorized=True``, ``incremental=False``), falling back to the
        vectorized Python path otherwise; ``"c"`` requires the extension and
        raises with a build hint when it is missing; ``"python"`` never
        touches the extension.  All kernels are bit-identical -- same swaps,
        same depth/SWAP metrics, same RNG consumption -- so the choice can
        never change results, only wall-clock (the equivalence suite in
        ``tests/test_sabre_kernel.py`` pins this).  The environment variable
        ``REPRO_SABRE_KERNEL`` overrides the constructor argument; circuits
        containing *logical* SWAP gates always route through the reference
        path (as before), whatever the kernel selection.  The engine that
        actually routed the last ``map_circuit`` call is recorded in
        ``last_kernel`` and in the mapped circuit's ``metadata["kernel"]``.
    """

    name = "sabre"

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int = 0,
        passes: int = 3,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        decay_delta: float = 0.001,
        decay_reset_interval: int = 5,
        trivial_initial_layout: bool = False,
        vectorized: bool = True,
        incremental: bool = False,
        kernel: str = "auto",
    ) -> None:
        self.topology = topology
        self.seed = seed
        self.passes = max(1, passes)
        self.extended_set_size = extended_set_size
        self.extended_set_weight = extended_set_weight
        self.decay_delta = decay_delta
        self.decay_reset_interval = decay_reset_interval
        self.trivial_initial_layout = trivial_initial_layout
        self.vectorized = vectorized
        self.incremental = incremental
        if kernel not in SABRE_KERNELS:
            raise ValueError(
                f"unknown SABRE kernel {kernel!r} (one of {SABRE_KERNELS})"
            )
        self.kernel = kernel
        #: routing engine used by the most recent ``map_circuit`` call
        #: ("c" or "python"); also recorded in the mapped metadata
        self.last_kernel: Optional[str] = None
        # Stats of the most recent fast-path routing pass ({iterations,
        # front_rebuilds, candidates_mean}); the perf harness uses them to
        # check the per-swap-iteration cost stays flat at paper scale.
        self.last_routing_stats: Optional[Dict[str, float]] = None
        self._dist = topology.distance_matrix()

    # ------------------------------------------------------------------
    def _resolve_kernel(self) -> str:
        """Effective routing engine for this call: ``"c"`` or ``"python"``.

        The ``REPRO_SABRE_KERNEL`` environment variable overrides the
        constructor argument (checked per call, so CI legs and tests can
        flip it without rebuilding mappers).  The compiled kernel only
        implements the default scoring configuration; a mapper explicitly
        configured for the reference loop (``vectorized=False``) or the
        opt-in cross-iteration score cache (``incremental=True``) keeps its
        Python path -- outputs are bit-identical either way, so this is a
        speed decision, never a semantic one.
        """

        from .sabre_kernel import KERNEL_BUILD_HINT, kernel_available

        choice = os.environ.get(KERNEL_ENV_VAR, "").strip() or self.kernel
        if choice not in SABRE_KERNELS:
            raise ValueError(
                f"unknown SABRE kernel {choice!r} from {KERNEL_ENV_VAR} "
                f"(one of {SABRE_KERNELS})"
            )
        if choice == "python":
            return "python"
        if choice == "c" and not kernel_available():
            raise RuntimeError(KERNEL_BUILD_HINT)
        if not self.vectorized or self.incremental:
            return "python"
        if choice == "auto" and not kernel_available():
            return "python"
        return "c"

    # ------------------------------------------------------------------
    def map_qft(self, num_qubits: Optional[int] = None) -> MappedCircuit:
        n = num_qubits if num_qubits is not None else self.topology.num_qubits
        return self.map_circuit(qft_circuit(n))

    def map_circuit(self, circuit: Circuit) -> MappedCircuit:
        n = circuit.num_qubits
        if n > self.topology.num_qubits:
            raise ValueError("more logical qubits than physical qubits")

        rng = random.Random(self.seed)
        if self.trivial_initial_layout:
            layout = list(range(n))
        else:
            phys = list(range(self.topology.num_qubits))
            rng.shuffle(phys)
            layout = phys[:n]

        # Reverse-traversal refinement of the initial layout.
        forward = circuit
        backward = circuit.reversed()
        current = layout
        for p in range(self.passes - 1):
            circ = forward if p % 2 == 0 else backward
            _, final_layout = self._route(circ, current, rng, emit=False)
            current = final_layout
        ops_layout = current

        builder, _ = self._route(forward, ops_layout, rng, emit=True)
        mapped = builder.build(
            metadata={
                "mapper": self.name,
                "seed": self.seed,
                "passes": self.passes,
                # Which engine routed this circuit.  Purely informational:
                # every kernel is bit-identical, so this never forks metrics
                # (the eval cache treats it as volatile when merging).
                "kernel": self.last_kernel,
            }
        )
        return mapped

    # ------------------------------------------------------------------
    def _route(
        self,
        circuit: Circuit,
        initial_layout: Sequence[int],
        rng: random.Random,
        *,
        emit: bool,
    ) -> Tuple[Optional[MappingBuilder], List[int]]:
        """Route one traversal pass; dispatches to the fast or reference path.

        All paths follow the identical algorithm (same execution order, same
        candidate enumeration, same float arithmetic, same RNG consumption),
        so they produce bit-identical routed circuits; the fast path batches
        the per-candidate scoring and executability checks through numpy,
        and the compiled kernel (:mod:`repro.baselines.sabre_kernel`,
        selected at runtime via ``kernel=``/``REPRO_SABRE_KERNEL``) runs the
        whole loop in C.  Both fast paths assume executing a gate never
        changes the layout mid-sweep, which fails for circuits containing
        *logical* SWAP gates -- those fall back to the reference path.
        """

        swap_free = not any(g.kind == GateKind.SWAP for g in circuit.gates)
        if swap_free and self._resolve_kernel() == "c":
            from .sabre_kernel import route_compiled

            self.last_kernel = "c"
            return route_compiled(self, circuit, initial_layout, rng, emit=emit)
        self.last_kernel = "python"
        if self.vectorized and swap_free:
            return self._route_fast(circuit, initial_layout, rng, emit=emit)
        return self._route_reference(circuit, initial_layout, rng, emit=emit)

    # ------------------------------------------------------------------
    def _route_reference(
        self,
        circuit: Circuit,
        initial_layout: Sequence[int],
        rng: random.Random,
        *,
        emit: bool,
    ) -> Tuple[Optional[MappingBuilder], List[int]]:
        n = circuit.num_qubits
        topo = self.topology
        dist = self._dist
        dag = _Dag.from_circuit(circuit)
        gates = circuit.gates

        builder = (
            MappingBuilder(topo, initial_layout, num_logical=n, name=self.name)
            if emit
            else None
        )
        # local layout tracking (kept even when emitting, for speed)
        log_to_phys = list(initial_layout)
        phys_to_log: Dict[int, int] = {p: l for l, p in enumerate(initial_layout)}

        indegree = list(dag.indegree)
        front: Set[int] = {i for i, d in enumerate(indegree) if d == 0}
        decay = np.ones(topo.num_qubits)
        swaps_since_reset = 0

        def gate_executable(idx: int) -> bool:
            g = gates[idx]
            if not g.is_two_qubit:
                return True
            a, b = g.qubits
            return topo.has_edge(log_to_phys[a], log_to_phys[b])

        def execute(idx: int) -> None:
            g = gates[idx]
            if emit:
                if g.kind == GateKind.H:
                    builder.h(log_to_phys[g.qubits[0]], tag="sabre")
                elif g.kind == GateKind.RZ:
                    builder.rz(log_to_phys[g.qubits[0]], g.angle, tag="sabre")
                elif g.kind == GateKind.CPHASE:
                    a, b = g.qubits
                    builder.cphase(log_to_phys[a], log_to_phys[b], g.angle, tag="sabre")
                elif g.kind == GateKind.CNOT:
                    a, b = g.qubits
                    builder.cnot(log_to_phys[a], log_to_phys[b], tag="sabre")
                elif g.kind == GateKind.SWAP:
                    a, b = g.qubits
                    builder.swap(log_to_phys[a], log_to_phys[b], tag="sabre")
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unsupported gate kind {g.kind!r}")
            if g.kind == GateKind.SWAP:
                a, b = g.qubits
                pa, pb = log_to_phys[a], log_to_phys[b]
                log_to_phys[a], log_to_phys[b] = pb, pa
                phys_to_log[pa], phys_to_log[pb] = b, a
            front.discard(idx)
            for succ in dag.successors[idx]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    front.add(succ)

        def apply_swap(pa: int, pb: int) -> None:
            if emit:
                builder.swap(pa, pb, tag="sabre-swap")
            la = phys_to_log.get(pa)
            lb = phys_to_log.get(pb)
            if la is not None:
                log_to_phys[la] = pb
            if lb is not None:
                log_to_phys[lb] = pa
            if la is not None:
                phys_to_log[pb] = la
            elif pb in phys_to_log:
                del phys_to_log[pb]
            if lb is not None:
                phys_to_log[pa] = lb
            elif pa in phys_to_log:
                del phys_to_log[pa]

        is2q_list = [g.is_two_qubit for g in gates]

        def extended_set(front_2q: List[int]) -> List[int]:
            return _extended_set_of(
                dag.successors, is2q_list, front_2q, self.extended_set_size
            )

        def heuristic(front_2q: List[int], ext: List[int], pa: int, pb: int) -> float:
            # Score the layout obtained by swapping (pa, pb).
            la = phys_to_log.get(pa)
            lb = phys_to_log.get(pb)

            def phys_of(lq: int) -> int:
                p = log_to_phys[lq]
                if p == pa:
                    return pb
                if p == pb:
                    return pa
                return p

            s_front = 0.0
            for g in front_2q:
                a, b = gates[g].qubits
                s_front += dist[phys_of(a), phys_of(b)]
            s_front /= max(1, len(front_2q))
            s_ext = 0.0
            if ext:
                for g in ext:
                    a, b = gates[g].qubits
                    s_ext += dist[phys_of(a), phys_of(b)]
                s_ext = self.extended_set_weight * s_ext / len(ext)
            return max(decay[pa], decay[pb]) * (s_front + s_ext)

        # Main routing loop -------------------------------------------------
        guard = 0
        max_iterations = 50 * (len(gates) + 1) + 10_000
        while front:
            guard += 1
            if guard > max_iterations:  # pragma: no cover - safety net
                raise RuntimeError("SABRE routing did not converge")

            executed_any = True
            while executed_any:
                executed_any = False
                for idx in sorted(front):
                    if gate_executable(idx):
                        execute(idx)
                        executed_any = True
            if not front:
                break

            front_2q = [i for i in sorted(front) if gates[i].is_two_qubit]
            if not front_2q:
                # only blocked single-qubit gates cannot happen (they are
                # always executable); defensive guard
                raise RuntimeError("SABRE front layer contains no 2-qubit gate")

            ext = extended_set(front_2q)
            candidates: Set[Tuple[int, int]] = set()
            for g in front_2q:
                for lq in gates[g].qubits:
                    p = log_to_phys[lq]
                    for nb in topo.neighbors(p):
                        candidates.add((p, nb) if p < nb else (nb, p))
            best_score = None
            best_swaps: List[Tuple[int, int]] = []
            for pa, pb in sorted(candidates):
                score = heuristic(front_2q, ext, pa, pb)
                if best_score is None or score < best_score - 1e-12:
                    best_score = score
                    best_swaps = [(pa, pb)]
                elif abs(score - best_score) <= 1e-12:
                    best_swaps.append((pa, pb))
            pa, pb = rng.choice(best_swaps)
            apply_swap(pa, pb)
            swaps_since_reset += 1
            decay[pa] += self.decay_delta
            decay[pb] += self.decay_delta
            if swaps_since_reset >= self.decay_reset_interval:
                decay[:] = 1.0
                swaps_since_reset = 0

        final_layout = list(log_to_phys)
        return builder, final_layout

    # ------------------------------------------------------------------
    def _route_fast(
        self,
        circuit: Circuit,
        initial_layout: Sequence[int],
        rng: random.Random,
        *,
        emit: bool,
    ) -> Tuple[Optional[MappingBuilder], List[int]]:
        """Vectorised, incrementally-scored routing pass (see :meth:`_route`).

        Bit-identical to :meth:`_route_reference` by construction: gates are
        executed in the same sorted-front sweep order, candidate SWAPs are
        enumerated into the same sorted list, every distance sum is a sum of
        integer-valued float64 entries (exact regardless of summation order
        or regrouping, which is what licenses the delta bookkeeping below),
        and the scalar post-processing (divide, weight, decay, tie-break,
        RNG draw) applies the same operations in the same order.

        Incremental scoring
        -------------------
        For a candidate swap ``e = (pa, pb)`` the heuristic needs the front
        and extended-set distance sums *after* hypothetically applying ``e``.
        Both are maintained as ``base + delta[e]``:

        * ``base_front`` / ``base_ext`` are the sums at the *current* layout,
          updated in O(moved gates) after each applied swap;
        * ``cand_front[e]`` / ``cand_ext[e]`` hold
          ``sum(after e) - sum(current)``, which only involves gates incident
          to ``e``.  After applying a swap ``s``, ``delta[e]`` can only change
          for candidates that share a physical position with a front or
          extended-set gate that ``s`` moved -- those few candidates are
          invalidated (via the incidence bitsets) and lazily rescored; every
          other cached component is reused as-is.

        A front-layer change replaces the extended set wholesale, so it
        invalidates all cached components.

        The cross-iteration *score cache* (``incremental=True``) only pays
        for itself when many swap iterations elapse between front-layer
        changes; on QFT workloads the front turns over every ~2 swaps, so the
        default keeps the per-iteration rescore (made cheap by the ext
        incidence split) and the cache stays opt-in.  The O(1) base-sum and
        position-table maintenance is always on (it replaces a per-iteration
        O(front) rebuild).  Both settings are bit-identical; only speed
        differs.
        """

        n = circuit.num_qubits
        topo = self.topology
        dist = self._dist
        dist_flat = np.ascontiguousarray(dist).ravel()
        dag = _Dag.from_circuit(circuit)
        gates = circuit.gates
        num_gates = len(gates)

        builder = (
            MappingBuilder(topo, initial_layout, num_logical=n, name=self.name)
            if emit
            else None
        )
        log_to_phys = list(initial_layout)
        phys_to_log: Dict[int, int] = {p: l for l, p in enumerate(initial_layout)}
        # numpy mirror of log_to_phys for batch gather
        ltp = np.array(log_to_phys, dtype=np.intp)

        # Static per-gate tables (logical endpoints; q1 == q0 for 1q gates).
        gq0 = np.fromiter((g.qubits[0] for g in gates), dtype=np.intp, count=num_gates)
        gq1 = np.fromiter((g.qubits[-1] for g in gates), dtype=np.intp, count=num_gates)
        is2q = np.fromiter((g.is_two_qubit for g in gates), dtype=bool, count=num_gates)
        is2q_list = is2q.tolist()  # python bools for scalar-indexed hot paths

        adj1, edge_list, edge_arr, edge_bits = sabre_tables_for(topo)
        num_edges = len(edge_list)
        use_cache = self.incremental

        indegree = list(dag.indegree)
        front: Set[int] = {i for i, d in enumerate(indegree) if d == 0}
        decay = np.ones(topo.num_qubits)
        swaps_since_reset = 0

        front_dirty = True
        front_2q: List[int] = []
        ext: List[int] = []
        fq0 = fq1 = None

        def execute(idx: int) -> None:
            nonlocal front_dirty
            if emit:
                g = gates[idx]
                if g.kind == GateKind.H:
                    builder.h(log_to_phys[g.qubits[0]], tag="sabre")
                elif g.kind == GateKind.RZ:
                    builder.rz(log_to_phys[g.qubits[0]], g.angle, tag="sabre")
                elif g.kind == GateKind.CPHASE:
                    a, b = g.qubits
                    builder.cphase(log_to_phys[a], log_to_phys[b], g.angle, tag="sabre")
                elif g.kind == GateKind.CNOT:
                    a, b = g.qubits
                    builder.cnot(log_to_phys[a], log_to_phys[b], tag="sabre")
                else:  # pragma: no cover - defensive (SWAPs excluded by _route)
                    raise ValueError(f"unsupported gate kind {g.kind!r}")
            front.discard(idx)
            for succ in dag.successors[idx]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    front.add(succ)
            front_dirty = True

        esize = self.extended_set_size
        successors = dag.successors

        def extended_set(front_2q: List[int]) -> List[int]:
            return _extended_set_of(successors, is2q_list, front_2q, esize)

        # Incremental scorer state.  `pos_in_front` / `pos_other` describe the
        # front layer by physical position: front gates are vertex-disjoint
        # (the DAG is built from per-qubit chains, so two front gates can
        # never share a qubit), hence each position hosts at most one
        # front-gate endpoint.  `cand_front` / `cand_ext` hold the per-edge
        # score deltas described in the docstring; `cand_valid` tracks which
        # of them are current for this front layer and layout.
        N = topo.num_qubits
        pos_other = np.zeros(N, dtype=np.intp)  # other endpoint of the front
        pos_in_front = np.zeros(N, dtype=bool)  # gate at this position, if any
        cand_front = np.zeros(num_edges)
        cand_ext = np.zeros(num_edges)
        cand_valid = np.zeros(num_edges, dtype=bool)
        base_front = 0.0
        base_ext = 0.0
        n_front = n_ext = 0
        ext_q: Optional[np.ndarray] = None  # [a(ext) | b(ext)] logical ids
        ext_pos_arr: Optional[np.ndarray] = None  # their physical positions
        ext_pos: List[int] = []  # same, as a list for cheap membership scans
        ext_touch: Optional[np.ndarray] = None  # uint8 by eid: edge meets ext
        ext_stale = False  # ext position tables need a lazy recompute
        cand_dirty = True  # the set of front positions (hence edges) changed
        eids: Optional[np.ndarray] = None

        # Routing statistics (exposed as `last_routing_stats`; used by the
        # perf harness to check the per-swap-iteration cost stays flat).
        n_iterations = 0
        n_rebuilds = 0
        cand_total = 0

        # Main routing loop -------------------------------------------------
        guard = 0
        max_iterations = 50 * (num_gates + 1) + 10_000
        need_sweep = True
        while front:
            guard += 1
            if guard > max_iterations:  # pragma: no cover - safety net
                raise RuntimeError("SABRE routing did not converge")

            # Execute everything executable, in sorted-front sweeps.  The
            # layout cannot change mid-sweep (no logical SWAPs), so one
            # vectorised adjacency lookup decides the whole sweep.
            if need_sweep:
                while front:
                    ready = sorted(front)
                    arr = np.fromiter(ready, dtype=np.intp, count=len(ready))
                    ok = ~is2q[arr] | adj1[ltp[gq0[arr]], ltp[gq1[arr]]]
                    if not ok.any():
                        break
                    for i, idx in enumerate(ready):
                        if ok[i]:
                            execute(idx)
                if not front:
                    break

            if front_dirty:
                front_2q = [i for i in sorted(front) if is2q_list[i]]
                if not front_2q:
                    # only blocked single-qubit gates cannot happen (they are
                    # always executable); defensive guard
                    raise RuntimeError("SABRE front layer contains no 2-qubit gate")
                ext = extended_set(front_2q)
                n_rebuilds += 1
                f_arr = np.fromiter(front_2q, dtype=np.intp, count=len(front_2q))
                fq0, fq1 = gq0[f_arr], gq1[f_arr]
                n_front, n_ext = len(front_2q), len(ext)
                fa, fb = ltp[fq0], ltp[fq1]
                # Every distance is an integer-valued float64, so base sums
                # and deltas reproduce the reference's in-order summation
                # exactly, no matter how they are regrouped.
                base_front = float(dist_flat.take(fa * N + fb).sum())
                pos_in_front.fill(False)
                pos_in_front[fa] = True
                pos_in_front[fb] = True
                pos_other[fa] = fb
                pos_other[fb] = fa
                if n_ext:
                    e_arr = np.fromiter(ext, dtype=np.intp, count=n_ext)
                    ext_q = np.concatenate((gq0[e_arr], gq1[e_arr]))
                    ext_stale = True
                else:
                    ext_q = ext_pos_arr = ext_touch = None
                    base_ext = 0.0
                    ext_pos = []
                    ext_stale = False
                cand_valid.fill(False)
                cand_dirty = True
                front_dirty = False

            # Candidate SWAPs = unique edges incident to a front-gate
            # position, in lexicographic (a, b) order == ascending edge-id
            # order (bitset union over the positions' incidence rows).
            # Recomputed only when the *set* of front positions changed -- a
            # swap between two front endpoints leaves it intact.
            if cand_dirty:
                union = np.bitwise_or.reduce(
                    edge_bits[np.flatnonzero(pos_in_front)], axis=0
                )
                eids = np.flatnonzero(
                    np.unpackbits(union, bitorder="little")[:num_edges]
                )
                cand_dirty = False

            if ext_stale:
                # Lazy refresh of the extended-set position tables (ext is
                # capped at ~20 gates): current endpoint positions, the base
                # distance sum, and the edges-meeting-ext incidence mask.
                ext_pos_arr = ltp[ext_q]
                base_ext = float(
                    dist_flat.take(
                        ext_pos_arr[:n_ext] * N + ext_pos_arr[n_ext:]
                    ).sum()
                )
                ext_pos = ext_pos_arr.tolist()
                ext_touch = np.unpackbits(
                    np.bitwise_or.reduce(edge_bits[ext_pos_arr], axis=0),
                    bitorder="little",
                )[:num_edges]
                ext_stale = False

            n_iterations += 1
            cand_total += eids.size

            # Rescore only the candidates whose cached components are stale
            # (new to the candidate set, or invalidated by an applied swap);
            # without the score cache, every candidate, every iteration.
            stale = eids[~cand_valid[eids]] if use_cache else eids
            fdel = edel = None
            if stale.size:
                sarr = edge_arr[stale]
                spa, spb = sarr[:, 0], sarr[:, 1]
                # Front delta: vertex-disjoint front gates mean a candidate
                # (pa, pb) perturbs the front sum by at most two corrections.
                o1 = pos_other[spa]
                o2 = pos_other[spb]
                d1 = np.where(
                    pos_in_front[spa] & (o1 != spb),
                    dist_flat.take(spb * N + o1) - dist_flat.take(spa * N + o1),
                    0.0,
                )
                d2 = np.where(
                    pos_in_front[spb] & (o2 != spa),
                    dist_flat.take(spa * N + o2) - dist_flat.take(spb * N + o2),
                    0.0,
                )
                fdel = d1 + d2
                if n_ext:
                    # Extended-set delta.  A candidate that meets no
                    # extended-set position leaves every ext pair in place,
                    # so its delta is exactly 0 -- only candidates incident
                    # to an ext endpoint need the relabel-and-gather matrix:
                    # relabel their endpoints (pa <-> pb), gather the pair
                    # distances, subtract the current-layout base sum.  When
                    # nearly every candidate touches the ext set (small
                    # topologies) the subset machinery costs more than the
                    # skipped rows, so relabel everything instead -- a
                    # non-touching row's gathered sum equals base_ext, hence
                    # its delta is the exact same 0 either way.
                    sel = ext_touch[stale].view(bool)
                    n_touch = int(sel.sum())
                    ab = ext_pos_arr
                    if stale.size - n_touch < 16:
                        tpa, tpb = spa, spb
                    else:
                        tpa, tpb = spa[sel], spb[sel]
                    if n_touch:
                        ab2 = np.where(
                            ab[None, :] == tpa[:, None],
                            tpb[:, None],
                            np.where(
                                ab[None, :] == tpb[:, None], tpa[:, None], ab[None, :]
                            ),
                        )
                        flat = ab2[:, :n_ext]
                        flat = flat * N
                        flat += ab2[:, n_ext:]
                        sums = dist_flat.take(flat).sum(axis=1) - base_ext
                        if tpa is spa:
                            edel = sums
                        else:
                            edel = np.zeros(stale.size)
                            edel[sel] = sums
                    else:
                        edel = np.zeros(stale.size)
                if use_cache:
                    cand_front[stale] = fdel
                    if n_ext:
                        cand_ext[stale] = edel
                    cand_valid[stale] = True

            if use_cache:
                carr = edge_arr[eids]
                pa_v, pb_v = carr[:, 0], carr[:, 1]
                fdel = cand_front[eids]
                edel = cand_ext[eids]
            else:  # stale == eids: the freshly computed deltas are the scores
                pa_v, pb_v = spa, spb
            s_front = (base_front + fdel) / max(1, n_front)
            if n_ext:
                s_ext = self.extended_set_weight * (base_ext + edel) / n_ext
            else:
                s_ext = 0.0
            scores = np.maximum(decay[pa_v], decay[pb_v]) * (s_front + s_ext)

            # Tie-break exactly like the reference loop.  With a unique
            # minimum (no other score within the 2e-12 tie window) the
            # reference loop provably ends with best_swaps == [argmin], and
            # the scalar scan can be restricted to the near-minimum subset:
            # a candidate with score > min + 2e-12 can neither take over the
            # running best (the running best never exceeds min + 1e-12) nor
            # land inside its 1e-12 tie window, so it is a no-op in the
            # reference scan.
            min_score = scores.min()
            near = np.flatnonzero(scores <= min_score + 2e-12)
            if near.size == 1:
                best_swaps = [edge_list[eids[near[0]]]]
            else:
                best_score = None
                best_swaps = []
                near_eids = eids[near]
                for e, score in zip(near_eids.tolist(), scores[near].tolist()):
                    if best_score is None or score < best_score - 1e-12:
                        best_score = score
                        best_swaps = [edge_list[e]]
                    elif abs(score - best_score) <= 1e-12:
                        best_swaps.append(edge_list[e])
            pa, pb = rng.choice(best_swaps)

            if emit:
                builder.swap(pa, pb, tag="sabre-swap")
            la = phys_to_log.get(pa)
            lb = phys_to_log.get(pb)
            if la is not None:
                log_to_phys[la] = pb
                ltp[la] = pb
            if lb is not None:
                log_to_phys[lb] = pa
                ltp[lb] = pa
            if la is not None:
                phys_to_log[pb] = la
            elif pb in phys_to_log:
                del phys_to_log[pb]
            if lb is not None:
                phys_to_log[pa] = lb
            elif pa in phys_to_log:
                del phys_to_log[pa]

            # Incremental maintenance: update the base sums and position
            # tables for the front / extended-set gates the swap moved, and
            # invalidate the cached components of exactly the candidates
            # incident to a position such a gate touches.  Candidates away
            # from every moved gate keep their deltas (the delta of a
            # candidate only involves gates incident to it).
            invalid_positions: List[int] = []
            need_sweep = False

            if n_ext and (pa in ext_pos or pb in ext_pos):
                if use_cache:
                    # Incremental update: adjust the base sum by the moved
                    # gates and remember their endpoints for invalidation.
                    p0, p1 = ext_pos_arr[:n_ext], ext_pos_arr[n_ext:]
                    moved = (p0 == pa) | (p0 == pb) | (p1 == pa) | (p1 == pb)
                    m0, m1 = p0[moved], p1[moved]
                    n0 = np.where(m0 == pa, pb, np.where(m0 == pb, pa, m0))
                    n1 = np.where(m1 == pa, pb, np.where(m1 == pb, pa, m1))
                    base_ext += float(
                        dist_flat.take(n0 * N + n1).sum()
                        - dist_flat.take(m0 * N + m1).sum()
                    )
                    invalid_positions.extend(m0.tolist())
                    invalid_positions.extend(m1.tolist())
                    ext_pos_arr = np.where(
                        ext_pos_arr == pa,
                        pb,
                        np.where(ext_pos_arr == pb, pa, ext_pos_arr),
                    )
                    ext_pos = ext_pos_arr.tolist()
                    ext_touch = np.unpackbits(
                        np.bitwise_or.reduce(edge_bits[ext_pos_arr], axis=0),
                        bitorder="little",
                    )[:num_edges]
                else:
                    # No score cache to patch up: just refresh lazily.
                    ext_stale = True

            in_a = bool(pos_in_front[pa])
            in_b = bool(pos_in_front[pb])
            if in_a != in_b:
                cand_dirty = True  # the set of front positions changed
            if in_a or in_b:
                oa = int(pos_other[pa]) if in_a else -1
                ob = int(pos_other[pb]) if in_b else -1
                pos_in_front[pa], pos_in_front[pb] = in_b, in_a
                # A front gate spanning (pa, pb) itself cannot occur here --
                # candidates are coupled edges, so such a gate would have been
                # executed by the sweep -- but the oa != pb / ob != pa guards
                # keep the bookkeeping exact even for that degenerate case
                # (the gate's position pair, hence everything derived from it,
                # would be unchanged).
                if in_a and oa != pb:
                    base_front += dist[pb, oa] - dist[pa, oa]
                    invalid_positions.append(oa)
                    pos_other[pb] = oa
                    pos_other[oa] = pb
                    if adj1[pb, oa]:
                        need_sweep = True
                if in_b and ob != pa:
                    base_front += dist[pa, ob] - dist[pb, ob]
                    invalid_positions.append(ob)
                    pos_other[pa] = ob
                    pos_other[ob] = pa
                    if adj1[pa, ob]:
                        need_sweep = True

            if use_cache and invalid_positions:
                invalid_positions.append(pa)
                invalid_positions.append(pb)
                pts = np.fromiter(set(invalid_positions), dtype=np.intp)
                touched = np.bitwise_or.reduce(edge_bits[pts], axis=0)
                cand_valid[
                    np.flatnonzero(
                        np.unpackbits(touched, bitorder="little")[:num_edges]
                    )
                ] = False

            swaps_since_reset += 1
            decay[pa] += self.decay_delta
            decay[pb] += self.decay_delta
            if swaps_since_reset >= self.decay_reset_interval:
                decay[:] = 1.0
                swaps_since_reset = 0

        self.last_routing_stats = {
            "iterations": n_iterations,
            "front_rebuilds": n_rebuilds,
            "candidates_mean": cand_total / max(1, n_iterations),
        }
        final_layout = list(log_to_phys)
        return builder, final_layout
