"""SABRE qubit mapping (Li, Ding, Xie -- ASPLOS 2019), re-implemented.

SABRE is the paper's main baseline (Section 7): a heuristic SWAP-insertion
router that maintains a *front layer* of gates whose dependences are resolved,
greedily executes whatever is already hardware-compliant, and otherwise
inserts the SWAP that minimises a distance heuristic combining the front layer
with a look-ahead *extended set*, modulated by per-qubit decay factors to
spread SWAPs across qubits.  The initial mapping is improved with
forward/backward passes over the circuit ("reverse traversal").

This re-implementation follows the published algorithm; it is seeded (the
paper's Fig. 27 shows how strongly SABRE's output depends on the seed, and
:mod:`repro.eval.experiments` reproduces that observation).  Hot paths use a
precomputed numpy distance matrix; the control flow stays in plain Python, so
very large instances (>~500 qubits) are slow -- the benchmark harness caps
SABRE sizes accordingly (see DESIGN.md "Substitutions").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..arch.topology import Topology
from ..circuit.circuit import Circuit
from ..circuit.gates import GateKind
from ..circuit.qft import qft_circuit
from ..circuit.schedule import MappedCircuit, MappingBuilder

__all__ = ["SabreMapper"]


@dataclass
class _Dag:
    """Lightweight per-qubit-chain dependence DAG (program order)."""

    num_gates: int
    successors: List[List[int]]
    indegree: List[int]

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "_Dag":
        last_on_qubit: Dict[int, int] = {}
        successors: List[List[int]] = [[] for _ in circuit.gates]
        indegree = [0] * len(circuit.gates)
        for idx, gate in enumerate(circuit.gates):
            preds = set()
            for q in gate.qubits:
                if q in last_on_qubit:
                    preds.add(last_on_qubit[q])
                last_on_qubit[q] = idx
            for p in preds:
                successors[p].append(idx)
                indegree[idx] += 1
        return cls(len(circuit.gates), successors, indegree)


class SabreMapper:
    """SABRE-style heuristic mapper.

    Parameters
    ----------
    topology:
        Target coupling graph.
    seed:
        RNG seed for the initial mapping (and tie breaking).
    passes:
        Number of traversal passes used to refine the initial mapping
        (1 = single forward pass with the seed mapping, 3 = the classic
        forward/backward/forward schedule).
    extended_set_size:
        Number of look-ahead gates in the extended set.
    extended_set_weight:
        Weight of the extended-set term in the heuristic.
    decay_delta / decay_reset_interval:
        Decay-factor parameters from the SABRE paper.
    """

    name = "sabre"

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int = 0,
        passes: int = 3,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        decay_delta: float = 0.001,
        decay_reset_interval: int = 5,
        trivial_initial_layout: bool = False,
    ) -> None:
        self.topology = topology
        self.seed = seed
        self.passes = max(1, passes)
        self.extended_set_size = extended_set_size
        self.extended_set_weight = extended_set_weight
        self.decay_delta = decay_delta
        self.decay_reset_interval = decay_reset_interval
        self.trivial_initial_layout = trivial_initial_layout
        self._dist = topology.distance_matrix()

    # ------------------------------------------------------------------
    def map_qft(self, num_qubits: Optional[int] = None) -> MappedCircuit:
        n = num_qubits if num_qubits is not None else self.topology.num_qubits
        return self.map_circuit(qft_circuit(n))

    def map_circuit(self, circuit: Circuit) -> MappedCircuit:
        n = circuit.num_qubits
        if n > self.topology.num_qubits:
            raise ValueError("more logical qubits than physical qubits")

        rng = random.Random(self.seed)
        if self.trivial_initial_layout:
            layout = list(range(n))
        else:
            phys = list(range(self.topology.num_qubits))
            rng.shuffle(phys)
            layout = phys[:n]

        # Reverse-traversal refinement of the initial layout.
        forward = circuit
        backward = circuit.reversed()
        current = layout
        for p in range(self.passes - 1):
            circ = forward if p % 2 == 0 else backward
            _, final_layout = self._route(circ, current, rng, emit=False)
            current = final_layout
        ops_layout = current

        builder, _ = self._route(forward, ops_layout, rng, emit=True)
        mapped = builder.build(metadata={"mapper": self.name, "seed": self.seed, "passes": self.passes})
        return mapped

    # ------------------------------------------------------------------
    def _route(
        self,
        circuit: Circuit,
        initial_layout: Sequence[int],
        rng: random.Random,
        *,
        emit: bool,
    ) -> Tuple[Optional[MappingBuilder], List[int]]:
        n = circuit.num_qubits
        topo = self.topology
        dist = self._dist
        dag = _Dag.from_circuit(circuit)
        gates = circuit.gates

        builder = (
            MappingBuilder(topo, initial_layout, num_logical=n, name=self.name)
            if emit
            else None
        )
        # local layout tracking (kept even when emitting, for speed)
        log_to_phys = list(initial_layout)
        phys_to_log: Dict[int, int] = {p: l for l, p in enumerate(initial_layout)}

        indegree = list(dag.indegree)
        front: Set[int] = {i for i, d in enumerate(indegree) if d == 0}
        decay = np.ones(topo.num_qubits)
        swaps_since_reset = 0

        def gate_executable(idx: int) -> bool:
            g = gates[idx]
            if not g.is_two_qubit:
                return True
            a, b = g.qubits
            return topo.has_edge(log_to_phys[a], log_to_phys[b])

        def execute(idx: int) -> None:
            g = gates[idx]
            if emit:
                if g.kind == GateKind.H:
                    builder.h(log_to_phys[g.qubits[0]], tag="sabre")
                elif g.kind == GateKind.RZ:
                    builder.rz(log_to_phys[g.qubits[0]], g.angle, tag="sabre")
                elif g.kind == GateKind.CPHASE:
                    a, b = g.qubits
                    builder.cphase(log_to_phys[a], log_to_phys[b], g.angle, tag="sabre")
                elif g.kind == GateKind.CNOT:
                    a, b = g.qubits
                    builder.cnot(log_to_phys[a], log_to_phys[b], tag="sabre")
                elif g.kind == GateKind.SWAP:
                    a, b = g.qubits
                    builder.swap(log_to_phys[a], log_to_phys[b], tag="sabre")
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unsupported gate kind {g.kind!r}")
            if g.kind == GateKind.SWAP:
                a, b = g.qubits
                pa, pb = log_to_phys[a], log_to_phys[b]
                log_to_phys[a], log_to_phys[b] = pb, pa
                phys_to_log[pa], phys_to_log[pb] = b, a
            front.discard(idx)
            for succ in dag.successors[idx]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    front.add(succ)

        def apply_swap(pa: int, pb: int) -> None:
            if emit:
                builder.swap(pa, pb, tag="sabre-swap")
            la = phys_to_log.get(pa)
            lb = phys_to_log.get(pb)
            if la is not None:
                log_to_phys[la] = pb
            if lb is not None:
                log_to_phys[lb] = pa
            if la is not None:
                phys_to_log[pb] = la
            elif pb in phys_to_log:
                del phys_to_log[pb]
            if lb is not None:
                phys_to_log[pa] = lb
            elif pa in phys_to_log:
                del phys_to_log[pa]

        def extended_set(front_2q: List[int]) -> List[int]:
            out: List[int] = []
            frontier = list(front_2q)
            seen = set(front_2q)
            while frontier and len(out) < self.extended_set_size:
                nxt: List[int] = []
                for g in frontier:
                    for s in dag.successors[g]:
                        if s in seen:
                            continue
                        seen.add(s)
                        if gates[s].is_two_qubit:
                            out.append(s)
                            if len(out) >= self.extended_set_size:
                                break
                        nxt.append(s)
                    if len(out) >= self.extended_set_size:
                        break
                frontier = nxt
            return out

        def heuristic(front_2q: List[int], ext: List[int], pa: int, pb: int) -> float:
            # Score the layout obtained by swapping (pa, pb).
            la = phys_to_log.get(pa)
            lb = phys_to_log.get(pb)

            def phys_of(lq: int) -> int:
                p = log_to_phys[lq]
                if p == pa:
                    return pb
                if p == pb:
                    return pa
                return p

            s_front = 0.0
            for g in front_2q:
                a, b = gates[g].qubits
                s_front += dist[phys_of(a), phys_of(b)]
            s_front /= max(1, len(front_2q))
            s_ext = 0.0
            if ext:
                for g in ext:
                    a, b = gates[g].qubits
                    s_ext += dist[phys_of(a), phys_of(b)]
                s_ext = self.extended_set_weight * s_ext / len(ext)
            return max(decay[pa], decay[pb]) * (s_front + s_ext)

        # Main routing loop -------------------------------------------------
        guard = 0
        max_iterations = 50 * (len(gates) + 1) + 10_000
        while front:
            guard += 1
            if guard > max_iterations:  # pragma: no cover - safety net
                raise RuntimeError("SABRE routing did not converge")

            executed_any = True
            while executed_any:
                executed_any = False
                for idx in sorted(front):
                    if gate_executable(idx):
                        execute(idx)
                        executed_any = True
            if not front:
                break

            front_2q = [i for i in sorted(front) if gates[i].is_two_qubit]
            if not front_2q:
                # only blocked single-qubit gates cannot happen (they are
                # always executable); defensive guard
                raise RuntimeError("SABRE front layer contains no 2-qubit gate")

            ext = extended_set(front_2q)
            candidates: Set[Tuple[int, int]] = set()
            for g in front_2q:
                for lq in gates[g].qubits:
                    p = log_to_phys[lq]
                    for nb in topo.neighbors(p):
                        candidates.add((p, nb) if p < nb else (nb, p))
            best_score = None
            best_swaps: List[Tuple[int, int]] = []
            for pa, pb in sorted(candidates):
                score = heuristic(front_2q, ext, pa, pb)
                if best_score is None or score < best_score - 1e-12:
                    best_score = score
                    best_swaps = [(pa, pb)]
                elif abs(score - best_score) <= 1e-12:
                    best_swaps.append((pa, pb))
            pa, pb = rng.choice(best_swaps)
            apply_swap(pa, pb)
            swaps_since_reset += 1
            decay[pa] += self.decay_delta
            decay[pb] += self.decay_delta
            if swaps_since_reset >= self.decay_reset_interval:
                decay[:] = 1.0
                swaps_since_reset = 0

        final_layout = list(log_to_phys)
        return builder, final_layout
