"""SABRE qubit mapping (Li, Ding, Xie -- ASPLOS 2019), re-implemented.

SABRE is the paper's main baseline (Section 7): a heuristic SWAP-insertion
router that maintains a *front layer* of gates whose dependences are resolved,
greedily executes whatever is already hardware-compliant, and otherwise
inserts the SWAP that minimises a distance heuristic combining the front layer
with a look-ahead *extended set*, modulated by per-qubit decay factors to
spread SWAPs across qubits.  The initial mapping is improved with
forward/backward passes over the circuit ("reverse traversal").

This re-implementation follows the published algorithm; it is seeded (the
paper's Fig. 27 shows how strongly SABRE's output depends on the seed, and
:mod:`repro.eval.experiments` reproduces that observation).  Hot paths use a
precomputed numpy distance matrix; the control flow stays in plain Python, so
very large instances (>~500 qubits) are slow -- the benchmark harness caps
SABRE sizes accordingly (see DESIGN.md "Substitutions").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..arch.topology import Topology
from ..circuit.circuit import Circuit
from ..circuit.gates import GateKind
from ..circuit.qft import qft_circuit
from ..circuit.schedule import MappedCircuit, MappingBuilder

__all__ = ["SabreMapper"]


@dataclass
class _Dag:
    """Lightweight per-qubit-chain dependence DAG (program order)."""

    num_gates: int
    successors: List[List[int]]
    indegree: List[int]

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "_Dag":
        last_on_qubit: Dict[int, int] = {}
        successors: List[List[int]] = [[] for _ in circuit.gates]
        indegree = [0] * len(circuit.gates)
        for idx, gate in enumerate(circuit.gates):
            preds = set()
            for q in gate.qubits:
                if q in last_on_qubit:
                    preds.add(last_on_qubit[q])
                last_on_qubit[q] = idx
            for p in preds:
                successors[p].append(idx)
                indegree[idx] += 1
        return cls(len(circuit.gates), successors, indegree)


def _extended_set_of(
    successors: List[List[int]],
    is2q: List[bool],
    front_2q: List[int],
    size: int,
) -> List[int]:
    """Look-ahead extended set: BFS over DAG successors of the front layer,
    collecting up to ``size`` two-qubit gates.  Layout-independent, shared by
    the reference and vectorized routing paths so they cannot drift apart.
    """

    out: List[int] = []
    frontier = list(front_2q)
    seen = set(front_2q)
    while frontier and len(out) < size:
        nxt: List[int] = []
        for g in frontier:
            for s in successors[g]:
                if s in seen:
                    continue
                seen.add(s)
                if is2q[s]:
                    out.append(s)
                    if len(out) >= size:
                        break
                nxt.append(s)
            if len(out) >= size:
                break
        frontier = nxt
    return out


class SabreMapper:
    """SABRE-style heuristic mapper.

    Parameters
    ----------
    topology:
        Target coupling graph.
    seed:
        RNG seed for the initial mapping (and tie breaking).
    passes:
        Number of traversal passes used to refine the initial mapping
        (1 = single forward pass with the seed mapping, 3 = the classic
        forward/backward/forward schedule).
    extended_set_size:
        Number of look-ahead gates in the extended set.
    extended_set_weight:
        Weight of the extended-set term in the heuristic.
    decay_delta / decay_reset_interval:
        Decay-factor parameters from the SABRE paper.
    vectorized:
        Score candidate SWAPs with numpy batch lookups against the distance
        matrix (default).  ``False`` selects the original per-candidate
        Python loop; both paths produce bit-identical routed circuits (the
        equivalence is covered by tests), the reference path just exists for
        cross-checking and for pedagogical clarity.
    """

    name = "sabre"

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int = 0,
        passes: int = 3,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        decay_delta: float = 0.001,
        decay_reset_interval: int = 5,
        trivial_initial_layout: bool = False,
        vectorized: bool = True,
    ) -> None:
        self.topology = topology
        self.seed = seed
        self.passes = max(1, passes)
        self.extended_set_size = extended_set_size
        self.extended_set_weight = extended_set_weight
        self.decay_delta = decay_delta
        self.decay_reset_interval = decay_reset_interval
        self.trivial_initial_layout = trivial_initial_layout
        self.vectorized = vectorized
        self._dist = topology.distance_matrix()
        self._adj_mask: Optional[np.ndarray] = None
        self._incident: Optional[
            Tuple[List[Tuple[int, int]], np.ndarray, np.ndarray]
        ] = None

    # ------------------------------------------------------------------
    def map_qft(self, num_qubits: Optional[int] = None) -> MappedCircuit:
        n = num_qubits if num_qubits is not None else self.topology.num_qubits
        return self.map_circuit(qft_circuit(n))

    def map_circuit(self, circuit: Circuit) -> MappedCircuit:
        n = circuit.num_qubits
        if n > self.topology.num_qubits:
            raise ValueError("more logical qubits than physical qubits")

        rng = random.Random(self.seed)
        if self.trivial_initial_layout:
            layout = list(range(n))
        else:
            phys = list(range(self.topology.num_qubits))
            rng.shuffle(phys)
            layout = phys[:n]

        # Reverse-traversal refinement of the initial layout.
        forward = circuit
        backward = circuit.reversed()
        current = layout
        for p in range(self.passes - 1):
            circ = forward if p % 2 == 0 else backward
            _, final_layout = self._route(circ, current, rng, emit=False)
            current = final_layout
        ops_layout = current

        builder, _ = self._route(forward, ops_layout, rng, emit=True)
        mapped = builder.build(metadata={"mapper": self.name, "seed": self.seed, "passes": self.passes})
        return mapped

    # ------------------------------------------------------------------
    def _route(
        self,
        circuit: Circuit,
        initial_layout: Sequence[int],
        rng: random.Random,
        *,
        emit: bool,
    ) -> Tuple[Optional[MappingBuilder], List[int]]:
        """Route one traversal pass; dispatches to the fast or reference path.

        Both paths follow the identical algorithm (same execution order, same
        candidate enumeration, same float arithmetic, same RNG consumption),
        so they produce bit-identical routed circuits; the fast path batches
        the per-candidate scoring and executability checks through numpy.
        The fast path assumes executing a gate never changes the layout
        mid-sweep, which fails for circuits containing *logical* SWAP gates
        -- those fall back to the reference path.
        """

        if self.vectorized and not any(
            g.kind == GateKind.SWAP for g in circuit.gates
        ):
            return self._route_fast(circuit, initial_layout, rng, emit=emit)
        return self._route_reference(circuit, initial_layout, rng, emit=emit)

    # ------------------------------------------------------------------
    def _route_reference(
        self,
        circuit: Circuit,
        initial_layout: Sequence[int],
        rng: random.Random,
        *,
        emit: bool,
    ) -> Tuple[Optional[MappingBuilder], List[int]]:
        n = circuit.num_qubits
        topo = self.topology
        dist = self._dist
        dag = _Dag.from_circuit(circuit)
        gates = circuit.gates

        builder = (
            MappingBuilder(topo, initial_layout, num_logical=n, name=self.name)
            if emit
            else None
        )
        # local layout tracking (kept even when emitting, for speed)
        log_to_phys = list(initial_layout)
        phys_to_log: Dict[int, int] = {p: l for l, p in enumerate(initial_layout)}

        indegree = list(dag.indegree)
        front: Set[int] = {i for i, d in enumerate(indegree) if d == 0}
        decay = np.ones(topo.num_qubits)
        swaps_since_reset = 0

        def gate_executable(idx: int) -> bool:
            g = gates[idx]
            if not g.is_two_qubit:
                return True
            a, b = g.qubits
            return topo.has_edge(log_to_phys[a], log_to_phys[b])

        def execute(idx: int) -> None:
            g = gates[idx]
            if emit:
                if g.kind == GateKind.H:
                    builder.h(log_to_phys[g.qubits[0]], tag="sabre")
                elif g.kind == GateKind.RZ:
                    builder.rz(log_to_phys[g.qubits[0]], g.angle, tag="sabre")
                elif g.kind == GateKind.CPHASE:
                    a, b = g.qubits
                    builder.cphase(log_to_phys[a], log_to_phys[b], g.angle, tag="sabre")
                elif g.kind == GateKind.CNOT:
                    a, b = g.qubits
                    builder.cnot(log_to_phys[a], log_to_phys[b], tag="sabre")
                elif g.kind == GateKind.SWAP:
                    a, b = g.qubits
                    builder.swap(log_to_phys[a], log_to_phys[b], tag="sabre")
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unsupported gate kind {g.kind!r}")
            if g.kind == GateKind.SWAP:
                a, b = g.qubits
                pa, pb = log_to_phys[a], log_to_phys[b]
                log_to_phys[a], log_to_phys[b] = pb, pa
                phys_to_log[pa], phys_to_log[pb] = b, a
            front.discard(idx)
            for succ in dag.successors[idx]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    front.add(succ)

        def apply_swap(pa: int, pb: int) -> None:
            if emit:
                builder.swap(pa, pb, tag="sabre-swap")
            la = phys_to_log.get(pa)
            lb = phys_to_log.get(pb)
            if la is not None:
                log_to_phys[la] = pb
            if lb is not None:
                log_to_phys[lb] = pa
            if la is not None:
                phys_to_log[pb] = la
            elif pb in phys_to_log:
                del phys_to_log[pb]
            if lb is not None:
                phys_to_log[pa] = lb
            elif pa in phys_to_log:
                del phys_to_log[pa]

        is2q_list = [g.is_two_qubit for g in gates]

        def extended_set(front_2q: List[int]) -> List[int]:
            return _extended_set_of(
                dag.successors, is2q_list, front_2q, self.extended_set_size
            )

        def heuristic(front_2q: List[int], ext: List[int], pa: int, pb: int) -> float:
            # Score the layout obtained by swapping (pa, pb).
            la = phys_to_log.get(pa)
            lb = phys_to_log.get(pb)

            def phys_of(lq: int) -> int:
                p = log_to_phys[lq]
                if p == pa:
                    return pb
                if p == pb:
                    return pa
                return p

            s_front = 0.0
            for g in front_2q:
                a, b = gates[g].qubits
                s_front += dist[phys_of(a), phys_of(b)]
            s_front /= max(1, len(front_2q))
            s_ext = 0.0
            if ext:
                for g in ext:
                    a, b = gates[g].qubits
                    s_ext += dist[phys_of(a), phys_of(b)]
                s_ext = self.extended_set_weight * s_ext / len(ext)
            return max(decay[pa], decay[pb]) * (s_front + s_ext)

        # Main routing loop -------------------------------------------------
        guard = 0
        max_iterations = 50 * (len(gates) + 1) + 10_000
        while front:
            guard += 1
            if guard > max_iterations:  # pragma: no cover - safety net
                raise RuntimeError("SABRE routing did not converge")

            executed_any = True
            while executed_any:
                executed_any = False
                for idx in sorted(front):
                    if gate_executable(idx):
                        execute(idx)
                        executed_any = True
            if not front:
                break

            front_2q = [i for i in sorted(front) if gates[i].is_two_qubit]
            if not front_2q:
                # only blocked single-qubit gates cannot happen (they are
                # always executable); defensive guard
                raise RuntimeError("SABRE front layer contains no 2-qubit gate")

            ext = extended_set(front_2q)
            candidates: Set[Tuple[int, int]] = set()
            for g in front_2q:
                for lq in gates[g].qubits:
                    p = log_to_phys[lq]
                    for nb in topo.neighbors(p):
                        candidates.add((p, nb) if p < nb else (nb, p))
            best_score = None
            best_swaps: List[Tuple[int, int]] = []
            for pa, pb in sorted(candidates):
                score = heuristic(front_2q, ext, pa, pb)
                if best_score is None or score < best_score - 1e-12:
                    best_score = score
                    best_swaps = [(pa, pb)]
                elif abs(score - best_score) <= 1e-12:
                    best_swaps.append((pa, pb))
            pa, pb = rng.choice(best_swaps)
            apply_swap(pa, pb)
            swaps_since_reset += 1
            decay[pa] += self.decay_delta
            decay[pb] += self.decay_delta
            if swaps_since_reset >= self.decay_reset_interval:
                decay[:] = 1.0
                swaps_since_reset = 0

        final_layout = list(log_to_phys)
        return builder, final_layout

    # ------------------------------------------------------------------
    def _adjacency_mask(self) -> np.ndarray:
        """Boolean coupling matrix (lazy, shared across routing passes)."""

        if self._adj_mask is None:
            n = self.topology.num_qubits
            mask = np.zeros((n, n), dtype=bool)
            for a, b in self.topology.edge_set:
                mask[a, b] = mask[b, a] = True
            self._adj_mask = mask
        return self._adj_mask

    def _edge_tables(
        self,
    ) -> Tuple[List[Tuple[int, int]], np.ndarray, np.ndarray]:
        """Edge ids in lexicographic order plus per-qubit incidence bitsets.

        Edge id order equals ``sorted(edge_set)`` order, so an ascending array
        of edge ids enumerates candidates exactly like the reference's
        ``sorted(candidates)`` over (a, b) tuples.
        """

        if self._incident is None:
            edge_list = sorted(self.topology.edge_set)
            edge_arr = np.asarray(edge_list, dtype=np.intp)
            # Incidence as little-endian bitsets: one row of bytes per qubit,
            # bit eid set iff edge eid touches the qubit.  The union of
            # incident edges over any qubit set is then a single
            # bitwise_or.reduce + unpackbits, and ascending bit position ==
            # lexicographic (a, b) edge order.
            nbytes = (len(edge_list) + 7) // 8
            edge_bits = np.zeros((self.topology.num_qubits, max(1, nbytes)), dtype=np.uint8)
            for eid, (a, b) in enumerate(edge_list):
                edge_bits[a, eid >> 3] |= 1 << (eid & 7)
                edge_bits[b, eid >> 3] |= 1 << (eid & 7)
            self._incident = (edge_list, edge_arr, edge_bits)
        return self._incident

    # ------------------------------------------------------------------
    def _route_fast(
        self,
        circuit: Circuit,
        initial_layout: Sequence[int],
        rng: random.Random,
        *,
        emit: bool,
    ) -> Tuple[Optional[MappingBuilder], List[int]]:
        """Vectorised routing pass (no logical SWAPs; see :meth:`_route`).

        Bit-identical to :meth:`_route_reference` by construction: gates are
        executed in the same sorted-front sweep order, candidate SWAPs are
        enumerated into the same sorted list, every distance sum is a sum of
        integer-valued float64 entries (exact regardless of summation order),
        and the scalar post-processing (divide, weight, decay, tie-break,
        RNG draw) applies the same operations in the same order.
        """

        n = circuit.num_qubits
        topo = self.topology
        dist = self._dist
        dist_flat = np.ascontiguousarray(dist).ravel()
        dag = _Dag.from_circuit(circuit)
        gates = circuit.gates
        num_gates = len(gates)

        builder = (
            MappingBuilder(topo, initial_layout, num_logical=n, name=self.name)
            if emit
            else None
        )
        log_to_phys = list(initial_layout)
        phys_to_log: Dict[int, int] = {p: l for l, p in enumerate(initial_layout)}
        # numpy mirror of log_to_phys for batch gather
        ltp = np.array(log_to_phys, dtype=np.intp)

        # Static per-gate tables (logical endpoints; q1 == q0 for 1q gates).
        gq0 = np.fromiter((g.qubits[0] for g in gates), dtype=np.intp, count=num_gates)
        gq1 = np.fromiter((g.qubits[-1] for g in gates), dtype=np.intp, count=num_gates)
        is2q = np.fromiter((g.is_two_qubit for g in gates), dtype=bool, count=num_gates)
        is2q_list = is2q.tolist()  # python bools for scalar-indexed hot paths

        adj1 = self._adjacency_mask()
        edge_list, edge_arr, edge_bits = self._edge_tables()
        num_edges = len(edge_list)

        indegree = list(dag.indegree)
        front: Set[int] = {i for i, d in enumerate(indegree) if d == 0}
        decay = np.ones(topo.num_qubits)
        swaps_since_reset = 0

        front_dirty = True
        front_2q: List[int] = []
        ext: List[int] = []
        fq0 = fq1 = None

        def execute(idx: int) -> None:
            nonlocal front_dirty
            if emit:
                g = gates[idx]
                if g.kind == GateKind.H:
                    builder.h(log_to_phys[g.qubits[0]], tag="sabre")
                elif g.kind == GateKind.RZ:
                    builder.rz(log_to_phys[g.qubits[0]], g.angle, tag="sabre")
                elif g.kind == GateKind.CPHASE:
                    a, b = g.qubits
                    builder.cphase(log_to_phys[a], log_to_phys[b], g.angle, tag="sabre")
                elif g.kind == GateKind.CNOT:
                    a, b = g.qubits
                    builder.cnot(log_to_phys[a], log_to_phys[b], tag="sabre")
                else:  # pragma: no cover - defensive (SWAPs excluded by _route)
                    raise ValueError(f"unsupported gate kind {g.kind!r}")
            front.discard(idx)
            for succ in dag.successors[idx]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    front.add(succ)
            front_dirty = True

        esize = self.extended_set_size
        successors = dag.successors

        def extended_set(front_2q: List[int]) -> List[int]:
            return _extended_set_of(successors, is2q_list, front_2q, esize)

        # Per-front cached scoring arrays (rebuilt only when `front` changes).
        # The front term is delta-scored: front gates are vertex-disjoint (the
        # DAG is built from per-qubit chains, so two front gates can never
        # share a qubit), hence each physical position hosts at most one
        # front-gate endpoint and a candidate swap (p, q) perturbs the front
        # distance sum by at most two O(1) corrections.  The extended set may
        # share qubits, so it keeps the batched relabel-and-gather path; it
        # is capped at extended_set_size (20) gates, which bounds that matrix.
        ext_q: Optional[np.ndarray] = None  # [a(ext) | b(ext)] logical ids
        n_front = n_ext = 0
        front_qubits: List[int] = []
        N = topo.num_qubits
        pos_other = np.zeros(N, dtype=np.intp)  # other endpoint of the front
        pos_in_front = np.zeros(N, dtype=bool)  # gate at this position, if any

        # Main routing loop -------------------------------------------------
        guard = 0
        max_iterations = 50 * (num_gates + 1) + 10_000
        need_sweep = True
        while front:
            guard += 1
            if guard > max_iterations:  # pragma: no cover - safety net
                raise RuntimeError("SABRE routing did not converge")

            # Execute everything executable, in sorted-front sweeps.  The
            # layout cannot change mid-sweep (no logical SWAPs), so one
            # vectorised adjacency lookup decides the whole sweep.
            if need_sweep:
                while front:
                    ready = sorted(front)
                    arr = np.fromiter(ready, dtype=np.intp, count=len(ready))
                    ok = ~is2q[arr] | adj1[ltp[gq0[arr]], ltp[gq1[arr]]]
                    if not ok.any():
                        break
                    for i, idx in enumerate(ready):
                        if ok[i]:
                            execute(idx)
                if not front:
                    break

            if front_dirty:
                front_2q = [i for i in sorted(front) if is2q_list[i]]
                if not front_2q:
                    # only blocked single-qubit gates cannot happen (they are
                    # always executable); defensive guard
                    raise RuntimeError("SABRE front layer contains no 2-qubit gate")
                ext = extended_set(front_2q)
                f_arr = np.fromiter(front_2q, dtype=np.intp, count=len(front_2q))
                fq0, fq1 = gq0[f_arr], gq1[f_arr]
                n_front, n_ext = len(front_2q), len(ext)
                if ext:
                    e_arr = np.fromiter(ext, dtype=np.intp, count=len(ext))
                    ext_q = np.concatenate((gq0[e_arr], gq1[e_arr]))
                else:
                    ext_q = None
                front_qubits = sorted(
                    {q for g in front_2q for q in gates[g].qubits}
                )
                front_q_arr = np.fromiter(
                    front_qubits, dtype=np.intp, count=len(front_qubits)
                )
                front_dirty = False

            # Candidate SWAPs = unique edges incident to a front-gate qubit,
            # in lexicographic (a, b) order == ascending edge-id order
            # (bitset union over the front qubits' incidence rows).
            union = np.bitwise_or.reduce(edge_bits[ltp[front_q_arr]], axis=0)
            eids = np.flatnonzero(
                np.unpackbits(union, bitorder="little")[:num_edges]
            )
            carr = edge_arr[eids]
            pa_v, pb_v = carr[:, 0], carr[:, 1]

            # Front term by exact deltas.  Every value involved is an
            # integer-valued float64, so base_sum + corrections is the exact
            # same float the reference's in-order summation produces.
            fa, fb = ltp[fq0], ltp[fq1]
            base_sum = dist_flat.take(fa * N + fb).sum()
            pos_in_front.fill(False)
            pos_in_front[fa] = True
            pos_in_front[fb] = True
            pos_other[fa] = fb
            pos_other[fb] = fa
            o1 = pos_other[pa_v]
            o2 = pos_other[pb_v]
            d1 = np.where(
                pos_in_front[pa_v] & (o1 != pb_v),
                dist_flat.take(pb_v * N + o1) - dist_flat.take(pa_v * N + o1),
                0.0,
            )
            d2 = np.where(
                pos_in_front[pb_v] & (o2 != pa_v),
                dist_flat.take(pa_v * N + o2) - dist_flat.take(pb_v * N + o2),
                0.0,
            )
            s_front = (base_sum + d1 + d2) / max(1, n_front)

            # Extended-set term: relabel every endpoint per candidate
            # (pa <-> pb) and gather the pair distances in one shot.
            if n_ext:
                ab = ltp[ext_q]
                ab2 = np.where(
                    ab[None, :] == pa_v[:, None],
                    pb_v[:, None],
                    np.where(
                        ab[None, :] == pb_v[:, None], pa_v[:, None], ab[None, :]
                    ),
                )
                flat = ab2[:, :n_ext]
                flat = flat * N
                flat += ab2[:, n_ext:]
                s_ext = (
                    self.extended_set_weight
                    * dist_flat.take(flat).sum(axis=1)
                    / n_ext
                )
            else:
                s_ext = 0.0
            scores = np.maximum(decay[pa_v], decay[pb_v]) * (s_front + s_ext)

            # Tie-break exactly like the reference loop.  With a unique
            # minimum (no other score within the 2e-12 tie window) the
            # reference loop provably ends with best_swaps == [argmin], so the
            # scalar scan is only needed when scores genuinely cluster.
            min_score = scores.min()
            near = np.flatnonzero(scores <= min_score + 2e-12)
            if near.size == 1:
                best_swaps = [edge_list[eids[near[0]]]]
            else:
                best_score = None
                best_swaps = []
                cand = [edge_list[e] for e in eids.tolist()]
                for (pa, pb), score in zip(cand, scores.tolist()):
                    if best_score is None or score < best_score - 1e-12:
                        best_score = score
                        best_swaps = [(pa, pb)]
                    elif abs(score - best_score) <= 1e-12:
                        best_swaps.append((pa, pb))
            pa, pb = rng.choice(best_swaps)

            if emit:
                builder.swap(pa, pb, tag="sabre-swap")
            la = phys_to_log.get(pa)
            lb = phys_to_log.get(pb)
            if la is not None:
                log_to_phys[la] = pb
                ltp[la] = pb
            if lb is not None:
                log_to_phys[lb] = pa
                ltp[lb] = pa
            if la is not None:
                phys_to_log[pb] = la
            elif pb in phys_to_log:
                del phys_to_log[pb]
            if lb is not None:
                phys_to_log[pa] = lb
            elif pa in phys_to_log:
                del phys_to_log[pa]

            swaps_since_reset += 1
            decay[pa] += self.decay_delta
            decay[pb] += self.decay_delta
            if swaps_since_reset >= self.decay_reset_interval:
                decay[:] = 1.0
                swaps_since_reset = 0

            # After sweeps converge the front holds only blocked 2-qubit
            # gates, so the sweep can be skipped entirely unless this swap
            # made one of them executable (one cached adjacency probe).
            need_sweep = bool(adj1[ltp[fq0], ltp[fq1]].any())

        final_layout = list(log_to_phys)
        return builder, final_layout
