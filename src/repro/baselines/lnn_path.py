"""LNN baseline: Maslov-style line QFT along a Hamiltonian path.

The paper's Fig. 19 compares against "LNN" on the lattice-surgery backend:
find a Hamiltonian path through the grid (a serpentine always exists there),
then run the known linear-depth LNN QFT along it, *ignoring* the heterogeneous
link latencies.  The path's turns use the slow vertical links, and every SWAP
along the serpentine is charged at the link's true cost when the depth is
evaluated -- which is exactly why the unit-based mapper of Section 6 wins.

On Sycamore and heavy-hex no Hamiltonian path through all qubits exists
(Section 2.2), so -- like the paper -- this baseline only applies to grid-like
topologies; :class:`LNNPathMapper` raises otherwise.
"""

from __future__ import annotations

from typing import List, Optional

from ..arch.topology import Topology
from ..circuit.schedule import MappedCircuit
from ..core.lnn_mapper import map_qft_on_line
from ..core.qft_specialist import QFTSpecialistMixin

__all__ = ["LNNPathMapper"]


class LNNPathMapper(QFTSpecialistMixin):
    """QFT via the LNN solution along a Hamiltonian (serpentine) path."""

    name = "lnn-path"

    def __init__(self, topology: Topology, path: Optional[List[int]] = None) -> None:
        self.topology = topology
        if path is not None:
            self.path = list(path)
        elif hasattr(topology, "serpentine_order"):
            self.path = list(topology.serpentine_order())
        elif hasattr(topology, "line_order"):
            # an LNN line is its own (trivial) Hamiltonian path
            self.path = list(topology.line_order())
        else:
            raise ValueError(
                f"no Hamiltonian path known for {topology.name}; "
                "pass one explicitly if it exists"
            )
        for a, b in zip(self.path, self.path[1:]):
            if not topology.has_edge(a, b):
                raise ValueError(f"path entries {a} and {b} are not coupled")
        if len(set(self.path)) != topology.num_qubits:
            raise ValueError("path must visit every physical qubit exactly once")

    def map_qft(self, num_qubits: Optional[int] = None) -> MappedCircuit:
        return map_qft_on_line(self.topology, self.path, num_qubits, name=self.name)
