"""Python side of the compiled SABRE routing kernel.

The C extension (:mod:`repro.baselines._sabre_kernel`, built via
``python setup.py build_ext --inplace``) runs the entire SABRE swap loop --
executable-gate sweeps, front/extended-set maintenance, exact delta scoring,
the reference tie-break and the swap application -- in one call over flat
tables.  This module owns everything around that call:

* **availability**: :func:`kernel_available` probes the import once; callers
  (``SabreMapper``'s runtime kernel selection) fall back to the bit-identical
  vectorized Python path when the extension is not built;
* **table preparation**: per-topology tables (distance matrix, adjacency
  mask, edge endpoints, per-qubit incidence CSR) are derived from the same
  shared :func:`~repro.baselines.sabre.sabre_tables_for` cache the Python
  fast path uses, and cached process-wide per coupling graph; per-circuit
  tables (gate endpoint arrays and the dependence-DAG CSR) are built with
  vectorized numpy passes that reproduce ``_Dag.from_circuit`` exactly
  (successor lists ascending, indegree = number of *distinct* predecessors);
* **RNG round-trip**: the caller's ``random.Random`` state is exported into
  the kernel (which implements CPython's MT19937 / ``getrandbits`` /
  ``_randbelow`` verbatim) and re-imported afterwards, so RNG consumption is
  word-for-word identical to the Python paths -- including the draw CPython
  makes even for single-candidate tie-breaks;
* **event replay**: the kernel reports its decisions as an event stream
  (gate index >= 0: execute the gate at the current layout; ``-(eid+1)``:
  apply the swap on edge ``eid``), which :func:`route_compiled` replays
  through the ordinary :class:`~repro.circuit.schedule.MappingBuilder` --
  emitted ops are constructed (and adjacency-validated) by the same code as
  the Python paths, so the output is the same object graph, not just the
  same metrics.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..arch.topology import Topology
from ..circuit.circuit import Circuit
from ..circuit.gates import GateKind
from ..circuit.schedule import MappingBuilder
from ..utils import BoundedCache

try:  # pragma: no cover - exercised via both CI legs
    from . import _sabre_kernel as _kernel
except ImportError:  # extension not built: callers fall back / raise typed
    _kernel = None

__all__ = ["kernel_available", "KERNEL_BUILD_HINT", "route_compiled"]

KERNEL_BUILD_HINT = (
    "the compiled SABRE kernel is not built; build it with "
    "`python setup.py build_ext --inplace` (requires a C compiler), or "
    "select kernel='python' / export REPRO_SABRE_KERNEL=python to use the "
    "bit-identical Python path"
)


def kernel_available() -> bool:
    """True when the C extension imported (i.e. has been built)."""

    return _kernel is not None


# Process-wide cache of the kernel-shaped per-topology tables, keyed like
# every other per-topology cache by the coupling-graph identity.
_KERNEL_TABLES: BoundedCache = BoundedCache(16)


def _kernel_tables_for(topology: Topology):
    """Flat per-topology tables in the dtypes the C kernel expects.

    Returns ``(dist, adj, eu, ev, inc_off, inc_eid, edge_list)``: float64
    distance matrix, uint8 adjacency, int32 edge endpoint arrays
    (lexicographic edge order, shared with the Python fast path), and the
    per-qubit incident-edge CSR (edge ids ascending per qubit).
    """

    key = topology.graph_key()
    hit = _KERNEL_TABLES.lookup(key)
    if hit is not None:
        return hit

    from .sabre import sabre_tables_for

    mask, edge_list, edge_arr, _edge_bits = sabre_tables_for(topology)
    n = topology.num_qubits
    num_edges = len(edge_list)
    dist = np.ascontiguousarray(topology.distance_matrix(), dtype=np.float64)
    adj = np.ascontiguousarray(mask, dtype=np.uint8)
    eu = np.ascontiguousarray(edge_arr[:, 0], dtype=np.int32)
    ev = np.ascontiguousarray(edge_arr[:, 1], dtype=np.int32)

    # Per-qubit incidence CSR: stable sort by (qubit, edge id) groups each
    # qubit's incident edges in ascending-eid order.
    qubits = edge_arr.ravel()
    eids = np.repeat(np.arange(num_edges, dtype=np.int64), 2)
    order = np.lexsort((eids, qubits))
    inc_eid = np.ascontiguousarray(eids[order], dtype=np.int32)
    counts = np.bincount(qubits, minlength=n)
    inc_off = np.zeros(n + 1, dtype=np.int32)
    inc_off[1:] = np.cumsum(counts)

    for arr in (dist, adj, eu, ev, inc_off, inc_eid):
        arr.setflags(write=False)
    return _KERNEL_TABLES.store(
        key, (dist, adj, eu, ev, inc_off, inc_eid, edge_list)
    )


def _circuit_tables(circuit: Circuit):
    """Per-circuit tables: gate endpoints + dependence-DAG CSR + indegree.

    Reproduces :meth:`repro.baselines.sabre._Dag.from_circuit` exactly, but
    with vectorized passes: program-order per-qubit chains give the edges
    (prev gate on the qubit -> this gate), duplicate edges collapse (a gate
    whose two qubits share one predecessor depends on it *once*), successor
    lists come out ascending per gate, and indegree counts distinct
    predecessors.
    """

    gates = circuit.gates
    m = len(gates)
    gq0 = np.fromiter((g.qubits[0] for g in gates), dtype=np.int32, count=m)
    gq1 = np.fromiter((g.qubits[-1] for g in gates), dtype=np.int32, count=m)
    is2q = np.fromiter((g.is_two_qubit for g in gates), dtype=bool, count=m)

    two = np.flatnonzero(is2q)
    qs = np.concatenate([gq0.astype(np.int64), gq1[two].astype(np.int64)])
    idx = np.concatenate([np.arange(m, dtype=np.int64), two])
    order = np.lexsort((idx, qs))
    sq, si = qs[order], idx[order]
    same = sq[1:] == sq[:-1]
    src, dst = si[:-1][same], si[1:][same]
    if m:
        uniq = np.unique(src * m + dst)  # dedupe; sorts by (src, dst)
        src, dst = uniq // m, uniq % m
    indeg = np.ascontiguousarray(np.bincount(dst, minlength=m), dtype=np.int32)
    succ_off = np.zeros(m + 1, dtype=np.int32)
    succ_off[1:] = np.cumsum(np.bincount(src, minlength=m))
    succ = np.ascontiguousarray(dst, dtype=np.int32)
    return gq0, gq1, is2q.astype(np.uint8), succ_off, succ, indeg


def route_compiled(
    mapper,
    circuit: Circuit,
    initial_layout: Sequence[int],
    rng: random.Random,
    *,
    emit: bool,
) -> Tuple[Optional[MappingBuilder], List[int]]:
    """One compiled routing pass; drop-in for ``SabreMapper._route_fast``.

    Exports ``rng``'s Mersenne-Twister state into the kernel, runs the whole
    swap loop in C, re-imports the advanced state, and (for emitting passes)
    replays the kernel's event stream through a :class:`MappingBuilder`.
    Updates ``mapper.last_routing_stats`` like the Python fast path.
    """

    if _kernel is None:  # pragma: no cover - dispatch checks availability
        raise RuntimeError(KERNEL_BUILD_HINT)

    topo = mapper.topology
    n = circuit.num_qubits
    dist, adj, eu, ev, inc_off, inc_eid, edge_list = _kernel_tables_for(topo)
    gq0, gq1, is2q, succ_off, succ, indeg = _circuit_tables(circuit)
    layout = np.array(list(initial_layout), dtype=np.int64)

    version, internal, gauss_next = rng.getstate()
    state = np.array(internal, dtype=np.uint32)  # 624 words + index

    events, n_iterations, n_rebuilds, cand_total = _kernel.route(
        state,
        topo.num_qubits,
        n,
        len(circuit.gates),
        len(edge_list),
        dist,
        adj,
        eu,
        ev,
        inc_off,
        inc_eid,
        gq0,
        gq1,
        is2q,
        succ_off,
        succ,
        indeg,
        layout,
        int(mapper.extended_set_size),
        float(mapper.extended_set_weight),
        float(mapper.decay_delta),
        int(mapper.decay_reset_interval),
        bool(emit),
    )

    rng.setstate((version, tuple(int(x) for x in state), gauss_next))
    mapper.last_routing_stats = {
        "iterations": int(n_iterations),
        "front_rebuilds": int(n_rebuilds),
        "candidates_mean": cand_total / max(1, n_iterations),
    }
    final_layout = layout.tolist()
    if not emit:
        return None, final_layout

    # Replay the event stream through the ordinary builder: same op
    # construction, same adjacency validation, same tags as the Python paths.
    builder = MappingBuilder(topo, initial_layout, num_logical=n, name=mapper.name)
    gates = circuit.gates
    ltp = builder.log_to_phys  # live reference, maintained by builder.swap
    h, rz = builder.h, builder.rz
    cphase, cnot, swap = builder.cphase, builder.cnot, builder.swap
    for code in np.frombuffer(events, dtype=np.int64).tolist():
        if code >= 0:
            g = gates[code]
            kind = g.kind
            if kind == GateKind.H:
                h(ltp[g.qubits[0]], tag="sabre")
            elif kind == GateKind.RZ:
                rz(ltp[g.qubits[0]], g.angle, tag="sabre")
            elif kind == GateKind.CPHASE:
                a, b = g.qubits
                cphase(ltp[a], ltp[b], g.angle, tag="sabre")
            elif kind == GateKind.CNOT:
                a, b = g.qubits
                cnot(ltp[a], ltp[b], tag="sabre")
            else:  # pragma: no cover - SWAPs are excluded by the dispatch
                raise ValueError(f"unsupported gate kind {kind!r}")
        else:
            pa, pb = edge_list[-code - 1]
            swap(pa, pb, tag="sabre-swap")
    if builder.log_to_phys != final_layout:  # pragma: no cover - kernel bug net
        raise RuntimeError(
            "compiled SABRE kernel and replay disagree about the final layout"
        )
    return builder, final_layout
