"""SATMAP stand-in: exact minimum-SWAP routing with a wall-clock timeout.

SATMAP (Molavi et al., MICRO 2022) phrases qubit mapping as a MaxSAT problem
and returns SWAP-count-optimal solutions -- at the cost of a search space that
explodes with the qubit count.  In the paper's evaluation its only role is:

* on tiny instances (<= ~10 qubits) it produces the optimal SWAP count, which
  the other approaches are compared against;
* on everything larger it hits the 2-hour timeout ("TLE" in Table 1).

We reproduce that role without an external MaxSAT solver (none is available
offline) by an exact uniform-cost (Dijkstra) search over
``(qubit placement, progress into the gate list)`` states:

* the gate list is processed in program order (like SATMAP's per-layer
  encoding, the gate order is fixed);
* a state transition either executes the next gate for free (if its qubits are
  adjacent) or applies one SWAP at cost 1;
* the search also explores every initial placement implicitly by starting from
  a configurable set of seeds (identity plus a few shuffles) -- for the 2x2 /
  line instances in Table 1 the identity seed already yields the optimum.

The search is *provably optimal for the explored seeds* and raises
:class:`SatmapTimeout` when the time budget is exhausted, mirroring the TLE
behaviour reported in the paper.  DESIGN.md documents this substitution.
"""

from __future__ import annotations

import heapq
import itertools
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.topology import Topology
from ..circuit.circuit import Circuit
from ..circuit.gates import GateKind
from ..circuit.qft import qft_circuit
from ..circuit.schedule import MappedCircuit, MappingBuilder

__all__ = ["SatmapMapper", "SatmapTimeout"]


class SatmapTimeout(TimeoutError):
    """Raised when the exact search exceeds its time budget (the paper's TLE)."""


@dataclass(frozen=True)
class _State:
    layout: Tuple[int, ...]  # logical -> physical
    progress: int            # number of two-qubit gates already executed


class SatmapMapper:
    """Exact (branch-and-bound) SWAP-minimising router with a timeout."""

    name = "satmap"

    def __init__(
        self,
        topology: Topology,
        *,
        timeout_s: float = 60.0,
        extra_seeds: int = 2,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.timeout_s = timeout_s
        self.extra_seeds = extra_seeds
        self.seed = seed

    # ------------------------------------------------------------------
    def map_qft(self, num_qubits: Optional[int] = None) -> MappedCircuit:
        n = num_qubits if num_qubits is not None else self.topology.num_qubits
        return self.map_circuit(qft_circuit(n))

    def map_circuit(self, circuit: Circuit) -> MappedCircuit:
        n = circuit.num_qubits
        topo = self.topology
        if n > topo.num_qubits:
            raise ValueError("more logical qubits than physical qubits")

        two_qubit = [g for g in circuit.gates if g.is_two_qubit]
        deadline = time.monotonic() + self.timeout_s

        rng = random.Random(self.seed)
        seeds: List[Tuple[int, ...]] = [tuple(range(n))]
        phys = list(range(topo.num_qubits))
        for _ in range(self.extra_seeds):
            rng.shuffle(phys)
            seeds.append(tuple(phys[:n]))

        best: Optional[Tuple[int, Tuple[int, ...], List[Tuple[int, int]]]] = None
        for seed_layout in seeds:
            result = self._search(two_qubit, seed_layout, deadline)
            if result is None:
                continue
            cost, swap_plan = result
            if best is None or cost < best[0]:
                best = (cost, seed_layout, swap_plan)
        if best is None:
            raise SatmapTimeout(
                f"exact search exceeded {self.timeout_s:.0f}s without a solution"
            )
        _, layout, swap_plan = best
        return self._emit(circuit, layout, swap_plan)

    # ------------------------------------------------------------------
    def _search(
        self,
        two_qubit_gates: Sequence,
        initial_layout: Tuple[int, ...],
        deadline: float,
    ) -> Optional[Tuple[int, List[Tuple[int, int]]]]:
        """Dijkstra over (layout, progress); returns (swap count, swap plan)."""

        topo = self.topology
        dist = topo.distance_matrix()
        total = len(two_qubit_gates)

        def advance(layout: Tuple[int, ...], progress: int) -> int:
            """Greedily execute every next gate that is already adjacent."""

            while progress < total:
                a, b = two_qubit_gates[progress].qubits
                if topo.has_edge(layout[a], layout[b]):
                    progress += 1
                else:
                    break
            return progress

        def lower_bound(layout: Tuple[int, ...], progress: int) -> int:
            if progress >= total:
                return 0
            a, b = two_qubit_gates[progress].qubits
            return max(0, int(dist[layout[a], layout[b]]) - 1)

        start_progress = advance(initial_layout, 0)
        start = _State(initial_layout, start_progress)
        frontier: List[Tuple[int, int, int, _State]] = []
        counter = itertools.count()
        heapq.heappush(
            frontier, (lower_bound(start.layout, start.progress), 0, next(counter), start)
        )
        came_from: Dict[_State, Tuple[Optional[_State], Optional[Tuple[int, int]]]] = {
            start: (None, None)
        }
        best_cost: Dict[_State, int] = {start: 0}

        while frontier:
            if time.monotonic() > deadline:
                return None
            _, cost, _, state = heapq.heappop(frontier)
            if cost > best_cost.get(state, float("inf")):
                continue
            if state.progress >= total:
                # reconstruct swap plan
                plan: List[Tuple[int, int]] = []
                cur: Optional[_State] = state
                while cur is not None:
                    prev, swap = came_from[cur]
                    if swap is not None:
                        plan.append(swap)
                    cur = prev
                plan.reverse()
                return cost, plan

            occupied = set(state.layout)
            for pa, pb in topo.edge_list():
                if pa not in occupied and pb not in occupied:
                    continue
                new_layout = list(state.layout)
                for l, p in enumerate(state.layout):
                    if p == pa:
                        new_layout[l] = pb
                    elif p == pb:
                        new_layout[l] = pa
                new_progress = advance(tuple(new_layout), state.progress)
                nxt = _State(tuple(new_layout), new_progress)
                ncost = cost + 1
                if ncost < best_cost.get(nxt, float("inf")):
                    best_cost[nxt] = ncost
                    came_from[nxt] = (state, (pa, pb))
                    heapq.heappush(
                        frontier,
                        (ncost + lower_bound(tuple(new_layout), new_progress), ncost, next(counter), nxt),
                    )
        return None

    # ------------------------------------------------------------------
    def _emit(
        self,
        circuit: Circuit,
        initial_layout: Tuple[int, ...],
        swap_plan: Sequence[Tuple[int, int]],
    ) -> MappedCircuit:
        """Replay the circuit, inserting the planned SWAPs where needed."""

        topo = self.topology
        builder = MappingBuilder(topo, list(initial_layout), num_logical=circuit.num_qubits, name=self.name)
        plan = list(swap_plan)
        plan_idx = 0
        for gate in circuit.gates:
            if gate.is_two_qubit:
                a, b = gate.qubits
                while not topo.has_edge(builder.phys_of(a), builder.phys_of(b)):
                    if plan_idx >= len(plan):
                        raise RuntimeError("SWAP plan exhausted before circuit completed")
                    pa, pb = plan[plan_idx]
                    plan_idx += 1
                    builder.swap(pa, pb, tag="satmap")
                if gate.kind == GateKind.CPHASE:
                    builder.cphase(builder.phys_of(a), builder.phys_of(b), gate.angle, tag="satmap")
                elif gate.kind == GateKind.CNOT:
                    builder.cnot(builder.phys_of(a), builder.phys_of(b), tag="satmap")
                else:
                    builder.swap(builder.phys_of(a), builder.phys_of(b), tag="satmap")
            else:
                if gate.kind == GateKind.H:
                    builder.h(builder.phys_of(gate.qubits[0]), tag="satmap")
                else:
                    builder.rz(builder.phys_of(gate.qubits[0]), gate.angle, tag="satmap")
        # Any trailing planned swaps are unnecessary; drop them.
        return builder.build(metadata={"mapper": self.name, "optimal_for_seed": True})
