"""Baseline compilers the paper compares against (Section 7)."""

from .lnn_path import LNNPathMapper
from .sabre import SabreMapper
from .satmap import SatmapMapper, SatmapTimeout

__all__ = ["LNNPathMapper", "SabreMapper", "SatmapMapper", "SatmapTimeout"]
