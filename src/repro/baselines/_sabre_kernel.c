/* Compiled SABRE routing kernel.
 *
 * One C pass over the whole SABRE swap loop -- executable-gate sweeps,
 * front-layer / extended-set maintenance, exact delta scoring against the
 * maintained base sums, the reference tie-break scan and the swap
 * application -- operating on the flat tables the vectorized Python path
 * already maintains (distance matrix, adjacency mask, lexicographic edge
 * list, per-qubit incidence CSR).
 *
 * Bit-identical to ``SabreMapper._route_fast`` / ``_route_reference`` by
 * construction:
 *
 * - gates are executed in the same sorted-front sweep order, candidate
 *   SWAPs are enumerated in the same ascending-edge-id order, and the
 *   tie-break is the literal reference scan (running best, 1e-12 window);
 * - every distance sum is a sum of integer-valued float64 entries, so the
 *   delta bookkeeping is exact regardless of summation order, and the
 *   scalar score composition applies the same IEEE-754 double operations
 *   in the same order as the numpy expressions;
 * - the tie-break RNG reproduces CPython's ``random.Random`` exactly: the
 *   MT19937 generator below is the one from CPython's ``_randommodule.c``,
 *   ``getrandbits``/``_randbelow``/``choice`` consume 32-bit words the way
 *   the stdlib does, and the caller imports/exports the ``Random`` state
 *   around the call, so Python-side RNG use before and after a routing
 *   pass sees exactly the stream it would have seen with the Python
 *   kernel.
 *
 * The kernel returns the routing decisions as an *event stream* (executed
 * gate indices and applied swap edge ids, interleaved in exact order); the
 * Python wrapper replays it through the ordinary ``MappingBuilder``, so
 * emitted ops are constructed by the same code as the Python paths.
 *
 * No numpy C API: inputs arrive through the buffer protocol as
 * C-contiguous arrays of fixed dtypes (lengths validated here; the Python
 * wrapper owns the dtype discipline).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* MT19937, exactly as in CPython's Modules/_randommodule.c            */
/* ------------------------------------------------------------------ */

#define MT_N 624
#define MT_M 397
#define MT_MATRIX_A 0x9908b0dfUL
#define MT_UPPER_MASK 0x80000000UL
#define MT_LOWER_MASK 0x7fffffffUL

typedef struct {
    uint32_t *mt;   /* borrowed: the caller's 625-word state buffer */
    uint32_t index; /* stored back into mt[624] on exit */
} mt_state;

static uint32_t
mt_genrand(mt_state *st)
{
    uint32_t y;
    static const uint32_t mag01[2] = {0x0UL, MT_MATRIX_A};
    uint32_t *mt = st->mt;

    if (st->index >= MT_N) {
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (mt[kk] & MT_UPPER_MASK) | (mt[kk + 1] & MT_LOWER_MASK);
            mt[kk] = mt[kk + MT_M] ^ (y >> 1) ^ mag01[y & 0x1UL];
        }
        for (; kk < MT_N - 1; kk++) {
            y = (mt[kk] & MT_UPPER_MASK) | (mt[kk + 1] & MT_LOWER_MASK);
            mt[kk] = mt[kk + (MT_M - MT_N)] ^ (y >> 1) ^ mag01[y & 0x1UL];
        }
        y = (mt[MT_N - 1] & MT_UPPER_MASK) | (mt[0] & MT_LOWER_MASK);
        mt[MT_N - 1] = mt[MT_M - 1] ^ (y >> 1) ^ mag01[y & 0x1UL];
        st->index = 0;
    }

    y = mt[st->index++];
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680UL;
    y ^= (y << 15) & 0xefc60000UL;
    y ^= (y >> 18);
    return y;
}

/* random.getrandbits(k) for 0 < k <= 32 (the only range choice() needs). */
static uint32_t
mt_getrandbits(mt_state *st, uint32_t k)
{
    return mt_genrand(st) >> (32 - k);
}

/* random.Random._randbelow_with_getrandbits(n), n >= 1: draw k = n.bit_length()
 * bits, redrawing while the value lands at or above n.  choice(seq) is
 * seq[_randbelow(len(seq))] -- note CPython consumes words even for a
 * single-element sequence, which is why the kernel must run this dance for
 * every iteration, tie or no tie. */
static uint32_t
mt_randbelow(mt_state *st, uint32_t n)
{
    uint32_t k = 0, m = n, r;
    while (m) {
        k++;
        m >>= 1;
    }
    r = mt_getrandbits(st, k);
    while (r >= n)
        r = mt_getrandbits(st, k);
    return r;
}

/* ------------------------------------------------------------------ */
/* Helpers                                                             */
/* ------------------------------------------------------------------ */

static int
cmp_i32(const void *a, const void *b)
{
    int32_t x = *(const int32_t *)a, y = *(const int32_t *)b;
    return (x > y) - (x < y);
}

typedef struct {
    int64_t *data;
    Py_ssize_t len;
    Py_ssize_t cap;
} event_buf;

static int
events_push(event_buf *ev, int64_t value)
{
    if (ev->len == ev->cap) {
        Py_ssize_t cap = ev->cap ? ev->cap * 2 : 4096;
        int64_t *data =
            (int64_t *)realloc(ev->data, (size_t)cap * sizeof(int64_t));
        if (data == NULL)
            return -1;
        ev->data = data;
        ev->cap = cap;
    }
    ev->data[ev->len++] = value;
    return 0;
}

static int
check_len(const Py_buffer *buf, Py_ssize_t expect_bytes, const char *name)
{
    if (buf->len != expect_bytes) {
        PyErr_Format(PyExc_ValueError,
                     "_sabre_kernel.route: buffer %s has %zd bytes, "
                     "expected %zd",
                     name, buf->len, expect_bytes);
        return -1;
    }
    return 0;
}

#define ALLOC(var, type, count)                                             \
    do {                                                                    \
        var = (type *)malloc(sizeof(type) * (size_t)((count) > 0 ? (count) : 1)); \
        if (var == NULL) {                                                  \
            PyErr_NoMemory();                                               \
            goto cleanup;                                                   \
        }                                                                   \
    } while (0)

#define CALLOC(var, type, count)                                            \
    do {                                                                    \
        var = (type *)calloc((size_t)((count) > 0 ? (count) : 1), sizeof(type)); \
        if (var == NULL) {                                                  \
            PyErr_NoMemory();                                               \
            goto cleanup;                                                   \
        }                                                                   \
    } while (0)

/* ------------------------------------------------------------------ */
/* route(): the whole routing pass                                     */
/* ------------------------------------------------------------------ */

static PyObject *
route(PyObject *self, PyObject *args)
{
    /* scalars */
    int N, n_log, n_gates, num_edges, ext_size, decay_reset, want_events;
    double ext_weight, decay_delta;
    /* buffers */
    Py_buffer b_state = {0}, b_dist = {0}, b_adj = {0}, b_eu = {0}, b_ev = {0};
    Py_buffer b_inc_off = {0}, b_inc_eid = {0}, b_gq0 = {0}, b_gq1 = {0};
    Py_buffer b_is2q = {0}, b_succ_off = {0}, b_succ = {0}, b_indeg = {0};
    Py_buffer b_layout = {0};

    PyObject *result = NULL;
    event_buf events = {NULL, 0, 0};

    (void)self;

    /* working storage */
    int32_t *indeg = NULL, *front = NULL, *snapshot = NULL, *front_2q = NULL;
    int32_t *frontier = NULL, *next_frontier = NULL, *seen_stamp = NULL;
    int32_t *ext_gates = NULL, *cand_stamp = NULL, *eids = NULL, *best = NULL;
    int32_t *pos_other = NULL, *ext_pos = NULL, *ext_cnt = NULL;
    int64_t *ltp = NULL, *ptl = NULL;
    uint8_t *ok_flags = NULL, *pos_in_front = NULL;
    double *decay = NULL;

    if (!PyArg_ParseTuple(
            args, "w*iiiiy*y*y*y*y*y*y*y*y*y*y*y*w*iddip",
            &b_state, &N, &n_log, &n_gates, &num_edges, &b_dist, &b_adj,
            &b_eu, &b_ev, &b_inc_off, &b_inc_eid, &b_gq0, &b_gq1, &b_is2q,
            &b_succ_off, &b_succ, &b_indeg, &b_layout, &ext_size,
            &ext_weight, &decay_delta, &decay_reset, &want_events))
        return NULL;

    {
        const double *dist = (const double *)b_dist.buf;
        const uint8_t *adj = (const uint8_t *)b_adj.buf;
        const int32_t *eu = (const int32_t *)b_eu.buf;
        const int32_t *ev = (const int32_t *)b_ev.buf;
        const int32_t *inc_off = (const int32_t *)b_inc_off.buf;
        const int32_t *inc_eid = (const int32_t *)b_inc_eid.buf;
        const int32_t *gq0 = (const int32_t *)b_gq0.buf;
        const int32_t *gq1 = (const int32_t *)b_gq1.buf;
        const uint8_t *is2q = (const uint8_t *)b_is2q.buf;
        const int32_t *succ_off = (const int32_t *)b_succ_off.buf;
        const int32_t *succ = (const int32_t *)b_succ.buf;
        const int32_t *indeg_in = (const int32_t *)b_indeg.buf;
        int64_t *layout = (int64_t *)b_layout.buf;
        mt_state rng;

        int32_t front_n = 0, snap_n = 0, n_front = 0, n_ext = 0, n_cand = 0;
        int32_t ext_pos_n = 0; /* live ext_cnt marks (2 * previous n_ext) */
        int32_t seen_gen = 0, cand_gen = 0;
        double base_front = 0.0, base_ext = 0.0;
        int front_dirty = 1, cand_dirty = 1, ext_stale = 0, need_sweep = 1;
        int swaps_since_reset = 0;
        int64_t guard = 0, n_iterations = 0, n_rebuilds = 0, cand_total = 0;
        int64_t max_iterations = 50 * ((int64_t)n_gates + 1) + 10000;
        int32_t i;

        if (check_len(&b_state, 625 * (Py_ssize_t)sizeof(uint32_t), "state") ||
            check_len(&b_dist, (Py_ssize_t)N * N * (Py_ssize_t)sizeof(double), "dist") ||
            check_len(&b_adj, (Py_ssize_t)N * N, "adj") ||
            check_len(&b_eu, (Py_ssize_t)num_edges * (Py_ssize_t)sizeof(int32_t), "eu") ||
            check_len(&b_ev, (Py_ssize_t)num_edges * (Py_ssize_t)sizeof(int32_t), "ev") ||
            check_len(&b_inc_off, ((Py_ssize_t)N + 1) * (Py_ssize_t)sizeof(int32_t), "inc_off") ||
            check_len(&b_inc_eid, 2 * (Py_ssize_t)num_edges * (Py_ssize_t)sizeof(int32_t), "inc_eid") ||
            check_len(&b_gq0, (Py_ssize_t)n_gates * (Py_ssize_t)sizeof(int32_t), "gq0") ||
            check_len(&b_gq1, (Py_ssize_t)n_gates * (Py_ssize_t)sizeof(int32_t), "gq1") ||
            check_len(&b_is2q, (Py_ssize_t)n_gates, "is2q") ||
            check_len(&b_succ_off, ((Py_ssize_t)n_gates + 1) * (Py_ssize_t)sizeof(int32_t), "succ_off") ||
            check_len(&b_indeg, (Py_ssize_t)n_gates * (Py_ssize_t)sizeof(int32_t), "indeg") ||
            check_len(&b_layout, (Py_ssize_t)n_log * (Py_ssize_t)sizeof(int64_t), "layout"))
            goto cleanup;
        if (n_gates > 0 &&
            check_len(&b_succ, (Py_ssize_t)succ_off[n_gates] * (Py_ssize_t)sizeof(int32_t), "succ"))
            goto cleanup;

        rng.mt = (uint32_t *)b_state.buf;
        rng.index = rng.mt[624];

        ALLOC(indeg, int32_t, n_gates);
        ALLOC(front, int32_t, n_gates);
        ALLOC(snapshot, int32_t, n_gates);
        ALLOC(front_2q, int32_t, n_gates);
        ALLOC(frontier, int32_t, n_gates);
        ALLOC(next_frontier, int32_t, n_gates);
        CALLOC(seen_stamp, int32_t, n_gates);
        ALLOC(ok_flags, uint8_t, n_gates);
        ALLOC(ext_gates, int32_t, ext_size);
        CALLOC(cand_stamp, int32_t, num_edges);
        ALLOC(eids, int32_t, num_edges);
        ALLOC(best, int32_t, num_edges);
        ALLOC(pos_other, int32_t, N);
        CALLOC(pos_in_front, uint8_t, N);
        ALLOC(ext_pos, int32_t, 2 * (Py_ssize_t)(ext_size > 0 ? ext_size : 1));
        CALLOC(ext_cnt, int32_t, N);
        ALLOC(ltp, int64_t, n_log);
        ALLOC(ptl, int64_t, N);
        ALLOC(decay, double, N);

        memcpy(indeg, indeg_in, sizeof(int32_t) * (size_t)n_gates);
        for (i = 0; i < N; i++) {
            ptl[i] = -1;
            decay[i] = 1.0;
        }
        for (i = 0; i < n_log; i++) {
            ltp[i] = layout[i];
            ptl[layout[i]] = i;
        }
        for (i = 0; i < n_gates; i++)
            if (indeg[i] == 0)
                front[front_n++] = i;

        /* Main routing loop (mirrors SabreMapper._route_fast) ---------- */
        while (front_n > 0) {
            guard++;
            if (guard > max_iterations) {
                PyErr_SetString(PyExc_RuntimeError,
                                "SABRE routing did not converge");
                goto cleanup;
            }

            if (need_sweep) {
                /* Execute everything executable, in sorted-front sweeps.
                 * The layout cannot change mid-sweep (no logical SWAPs in
                 * the compiled path), so executability is decided for the
                 * whole snapshot up front, exactly like the numpy path. */
                while (front_n > 0) {
                    int any = 0;
                    int32_t k;
                    memcpy(snapshot, front, sizeof(int32_t) * (size_t)front_n);
                    snap_n = front_n;
                    qsort(snapshot, (size_t)snap_n, sizeof(int32_t), cmp_i32);
                    for (k = 0; k < snap_n; k++) {
                        int32_t g = snapshot[k];
                        uint8_t ok = !is2q[g] ||
                                     adj[(size_t)ltp[gq0[g]] * N + ltp[gq1[g]]];
                        ok_flags[k] = ok;
                        any |= ok;
                    }
                    if (!any)
                        break;
                    for (k = 0; k < snap_n; k++) {
                        int32_t g, e;
                        if (!ok_flags[k])
                            continue;
                        g = snapshot[k];
                        if (want_events && events_push(&events, g) < 0) {
                            PyErr_NoMemory();
                            goto cleanup;
                        }
                        /* remove g from front (swap-remove; order restored
                         * by the qsort at every snapshot/rebuild) */
                        for (i = 0; i < front_n; i++)
                            if (front[i] == g) {
                                front[i] = front[--front_n];
                                break;
                            }
                        for (e = succ_off[g]; e < succ_off[g + 1]; e++) {
                            int32_t s = succ[e];
                            if (--indeg[s] == 0)
                                front[front_n++] = s;
                        }
                        front_dirty = 1;
                    }
                }
                if (front_n == 0)
                    break;
            }

            if (front_dirty) {
                int32_t k, fn = 0;
                memcpy(snapshot, front, sizeof(int32_t) * (size_t)front_n);
                qsort(snapshot, (size_t)front_n, sizeof(int32_t), cmp_i32);
                for (k = 0; k < front_n; k++)
                    if (is2q[snapshot[k]])
                        front_2q[fn++] = snapshot[k];
                if (fn == 0) {
                    /* only blocked single-qubit gates cannot happen (they
                     * are always executable); defensive guard */
                    PyErr_SetString(
                        PyExc_RuntimeError,
                        "SABRE front layer contains no 2-qubit gate");
                    goto cleanup;
                }
                n_front = fn;
                n_rebuilds++;

                /* extended set: BFS over DAG successors, collecting up to
                 * ext_size two-qubit gates (mirrors _extended_set_of). */
                {
                    int32_t out_n = 0, fr_n = 0, nx_n;
                    seen_gen++;
                    for (k = 0; k < fn; k++) {
                        frontier[fr_n++] = front_2q[k];
                        seen_stamp[front_2q[k]] = seen_gen;
                    }
                    while (fr_n > 0 && out_n < ext_size) {
                        nx_n = 0;
                        for (k = 0; k < fr_n; k++) {
                            int32_t g = frontier[k], e;
                            for (e = succ_off[g]; e < succ_off[g + 1]; e++) {
                                int32_t s = succ[e];
                                if (seen_stamp[s] == seen_gen)
                                    continue;
                                seen_stamp[s] = seen_gen;
                                if (is2q[s]) {
                                    ext_gates[out_n++] = s;
                                    if (out_n >= ext_size)
                                        break;
                                }
                                next_frontier[nx_n++] = s;
                            }
                            if (out_n >= ext_size)
                                break;
                        }
                        memcpy(frontier, next_frontier,
                               sizeof(int32_t) * (size_t)nx_n);
                        fr_n = nx_n;
                    }
                    n_ext = out_n;
                }

                /* base front sum + per-position tables (front gates are
                 * vertex-disjoint: at most one endpoint per position). */
                base_front = 0.0;
                memset(pos_in_front, 0, (size_t)N);
                for (k = 0; k < fn; k++) {
                    int64_t fa = ltp[gq0[front_2q[k]]];
                    int64_t fb = ltp[gq1[front_2q[k]]];
                    base_front += dist[(size_t)fa * N + fb];
                    pos_in_front[fa] = 1;
                    pos_in_front[fb] = 1;
                    pos_other[fa] = (int32_t)fb;
                    pos_other[fb] = (int32_t)fa;
                }
                if (n_ext > 0) {
                    ext_stale = 1;
                } else {
                    for (k = 0; k < ext_pos_n; k++)
                        ext_cnt[ext_pos[k]] = 0;
                    ext_pos_n = 0;
                    base_ext = 0.0;
                    ext_stale = 0;
                }
                cand_dirty = 1;
                front_dirty = 0;
            }

            if (cand_dirty) {
                /* candidate SWAPs = unique edges incident to a front-gate
                 * position, ascending edge id (== lexicographic (a, b));
                 * generation-stamped dedupe, so no per-recompute clearing.
                 * `cand_gen` is bounded by the iteration guard (< 2^31),
                 * so the stamp never wraps within a call. */
                int32_t k, e;
                cand_gen++;
                n_cand = 0;
                for (k = 0; k < n_front; k++) {
                    int64_t ps[2];
                    int s;
                    ps[0] = ltp[gq0[front_2q[k]]];
                    ps[1] = ltp[gq1[front_2q[k]]];
                    for (s = 0; s < 2; s++)
                        for (e = inc_off[ps[s]]; e < inc_off[ps[s] + 1]; e++) {
                            int32_t eid = inc_eid[e];
                            if (cand_stamp[eid] != cand_gen) {
                                cand_stamp[eid] = cand_gen;
                                eids[n_cand++] = eid;
                            }
                        }
                }
                qsort(eids, (size_t)n_cand, sizeof(int32_t), cmp_i32);
                cand_dirty = 0;
            }

            if (ext_stale) {
                /* lazy refresh of the extended-set position tables */
                int32_t k;
                for (k = 0; k < ext_pos_n; k++)
                    ext_cnt[ext_pos[k]] = 0;
                base_ext = 0.0;
                for (k = 0; k < n_ext; k++) {
                    int32_t a = (int32_t)ltp[gq0[ext_gates[k]]];
                    int32_t b = (int32_t)ltp[gq1[ext_gates[k]]];
                    ext_pos[k] = a;
                    ext_pos[k + n_ext] = b;
                    base_ext += dist[(size_t)a * N + b];
                }
                ext_pos_n = 2 * n_ext;
                for (k = 0; k < ext_pos_n; k++)
                    ext_cnt[ext_pos[k]]++;
                ext_stale = 0;
            }

            n_iterations++;
            cand_total += n_cand;

            /* Score every candidate and tie-break exactly like the
             * reference loop (ascending edge id, running best, 1e-12
             * window), then draw with CPython's choice(). */
            {
                double best_score = 0.0;
                int have_best = 0;
                int32_t best_n = 0, k;
                int32_t pa, pb;
                double inv_front = (double)(n_front > 1 ? n_front : 1);

                for (k = 0; k < n_cand; k++) {
                    int32_t eid = eids[k];
                    int32_t ca = eu[eid], cb = ev[eid];
                    double fdel = 0.0, edel = 0.0, s_front, s_ext, dmax, score;
                    if (pos_in_front[ca]) {
                        int32_t o = pos_other[ca];
                        if (o != cb)
                            fdel += dist[(size_t)cb * N + o] -
                                    dist[(size_t)ca * N + o];
                    }
                    if (pos_in_front[cb]) {
                        int32_t o = pos_other[cb];
                        if (o != ca)
                            fdel += dist[(size_t)ca * N + o] -
                                    dist[(size_t)cb * N + o];
                    }
                    if (n_ext > 0 && (ext_cnt[ca] || ext_cnt[cb])) {
                        double s = 0.0;
                        int32_t j;
                        for (j = 0; j < n_ext; j++) {
                            int32_t a = ext_pos[j], b = ext_pos[j + n_ext];
                            if (a == ca)
                                a = cb;
                            else if (a == cb)
                                a = ca;
                            if (b == ca)
                                b = cb;
                            else if (b == cb)
                                b = ca;
                            s += dist[(size_t)a * N + b];
                        }
                        edel = s - base_ext;
                    }
                    s_front = (base_front + fdel) / inv_front;
                    if (n_ext > 0)
                        s_ext = ext_weight * (base_ext + edel) / (double)n_ext;
                    else
                        s_ext = 0.0;
                    dmax = decay[ca] > decay[cb] ? decay[ca] : decay[cb];
                    score = dmax * (s_front + s_ext);

                    if (!have_best || score < best_score - 1e-12) {
                        have_best = 1;
                        best_score = score;
                        best[0] = eid;
                        best_n = 1;
                    }
                    else if (fabs(score - best_score) <= 1e-12) {
                        best[best_n++] = eid;
                    }
                }
                if (best_n == 0) {
                    /* no candidates: disconnected or edgeless topology with
                     * a blocked 2q gate -- the Python paths would raise an
                     * IndexError out of rng.choice([]); fail typed here */
                    PyErr_SetString(PyExc_RuntimeError,
                                    "SABRE found no candidate SWAPs");
                    goto cleanup;
                }

                {
                    int32_t eid = best[mt_randbelow(&rng, (uint32_t)best_n)];
                    int64_t la, lb;
                    int in_a, in_b;
                    pa = eu[eid];
                    pb = ev[eid];
                    if (want_events &&
                        events_push(&events, -((int64_t)eid + 1)) < 0) {
                        PyErr_NoMemory();
                        goto cleanup;
                    }

                    /* apply the swap to the layout tables */
                    la = ptl[pa];
                    lb = ptl[pb];
                    if (la >= 0)
                        ltp[la] = pb;
                    if (lb >= 0)
                        ltp[lb] = pa;
                    ptl[pb] = la;
                    ptl[pa] = lb;

                    need_sweep = 0;

                    /* extended-set maintenance: the compiled path mirrors
                     * the default (non-incremental) Python path -- a swap
                     * touching an ext position marks the tables stale for
                     * a lazy from-scratch refresh next iteration. */
                    if (n_ext > 0 && (ext_cnt[pa] || ext_cnt[pb]))
                        ext_stale = 1;

                    /* front-position maintenance: O(1) base-sum updates for
                     * the (at most two) front gates the swap moved */
                    in_a = pos_in_front[pa];
                    in_b = pos_in_front[pb];
                    if (in_a != in_b)
                        cand_dirty = 1; /* the set of front positions changed */
                    if (in_a || in_b) {
                        int32_t oa = in_a ? pos_other[pa] : -1;
                        int32_t ob = in_b ? pos_other[pb] : -1;
                        pos_in_front[pa] = (uint8_t)in_b;
                        pos_in_front[pb] = (uint8_t)in_a;
                        if (in_a && oa != pb) {
                            base_front += dist[(size_t)pb * N + oa] -
                                          dist[(size_t)pa * N + oa];
                            pos_other[pb] = oa;
                            pos_other[oa] = pb;
                            if (adj[(size_t)pb * N + oa])
                                need_sweep = 1;
                        }
                        if (in_b && ob != pa) {
                            base_front += dist[(size_t)pa * N + ob] -
                                          dist[(size_t)pb * N + ob];
                            pos_other[pa] = ob;
                            pos_other[ob] = pa;
                            if (adj[(size_t)pa * N + ob])
                                need_sweep = 1;
                        }
                    }

                    swaps_since_reset++;
                    decay[pa] += decay_delta;
                    decay[pb] += decay_delta;
                    if (swaps_since_reset >= decay_reset) {
                        for (i = 0; i < N; i++)
                            decay[i] = 1.0;
                        swaps_since_reset = 0;
                    }
                }
            }
        }

        /* write results back ------------------------------------------ */
        rng.mt[624] = rng.index;
        for (i = 0; i < n_log; i++)
            layout[i] = ltp[i];

        {
            PyObject *ev_obj;
            if (want_events)
                ev_obj = PyBytes_FromStringAndSize(
                    (const char *)events.data,
                    events.len * (Py_ssize_t)sizeof(int64_t));
            else {
                ev_obj = Py_None;
                Py_INCREF(ev_obj);
            }
            if (ev_obj == NULL)
                goto cleanup;
            result = Py_BuildValue("(NLLL)", ev_obj, (long long)n_iterations,
                                   (long long)n_rebuilds,
                                   (long long)cand_total);
        }
    }

cleanup:
    free(indeg);
    free(front);
    free(snapshot);
    free(front_2q);
    free(frontier);
    free(next_frontier);
    free(seen_stamp);
    free(ok_flags);
    free(ext_gates);
    free(cand_stamp);
    free(eids);
    free(best);
    free(pos_other);
    free(pos_in_front);
    free(ext_pos);
    free(ext_cnt);
    free(ltp);
    free(ptl);
    free(decay);
    free(events.data);
    PyBuffer_Release(&b_state);
    PyBuffer_Release(&b_dist);
    PyBuffer_Release(&b_adj);
    PyBuffer_Release(&b_eu);
    PyBuffer_Release(&b_ev);
    PyBuffer_Release(&b_inc_off);
    PyBuffer_Release(&b_inc_eid);
    PyBuffer_Release(&b_gq0);
    PyBuffer_Release(&b_gq1);
    PyBuffer_Release(&b_is2q);
    PyBuffer_Release(&b_succ_off);
    PyBuffer_Release(&b_succ);
    PyBuffer_Release(&b_indeg);
    PyBuffer_Release(&b_layout);
    return result;
}

/* ------------------------------------------------------------------ */
/* Module boilerplate                                                  */
/* ------------------------------------------------------------------ */

static PyMethodDef kernel_methods[] = {
    {"route", route, METH_VARARGS,
     "Run one SABRE routing pass over flat tables; returns (events|None, "
     "iterations, front_rebuilds, candidates_total) and updates the MT "
     "state and layout buffers in place."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.baselines._sabre_kernel",
    "Compiled SABRE routing kernel (bit-identical to the Python paths).",
    -1,
    kernel_methods,
    NULL, /* m_slots */
    NULL, /* m_traverse */
    NULL, /* m_clear */
    NULL, /* m_free */
};

PyMODINIT_FUNC
PyInit__sabre_kernel(void)
{
    return PyModule_Create(&kernel_module);
}
