"""repro -- reproduction of "Optimizing QFT Kernels for Modern NISQ and FT
Architectures" (SC 2024).

Public API highlights
---------------------

The entry point (:mod:`repro.compile_api`):
    ``repro.compile(workload="qft", architecture="grid", size=9,
    approach="ours")`` -- one registry-driven call covering every workload,
    architecture and approach; returns a ``CompileResult`` bundling the
    mapped circuit, metrics, verification outcome and wall-clock.

Registries (:mod:`repro.workloads`, :mod:`repro.approaches`,
:mod:`repro.arch.registry`):
    ``register_workload`` / ``register_approach`` / ``register_architecture``
    plug new circuit families, mappers and backends into every consumer
    (``repro.compile``, the evaluation harness, the CLI) at once.

Architectures (:mod:`repro.arch`):
    ``LNNTopology``, ``GridTopology``, ``SycamoreTopology``,
    ``CaterpillarTopology`` / ``HeavyHexTopology``, ``LatticeSurgeryTopology``.

Compilation (:mod:`repro.core`):
    the individual mappers (``LNNQFTMapper``, ``HeavyHexQFTMapper``,
    ``SycamoreQFTMapper``, ``LatticeSurgeryQFTMapper``, ``GridQFTMapper``).
    The old ``compile_qft(topology)`` facade survives as a deprecated shim
    (importable, warns, not part of ``__all__``).

Serving (:mod:`repro.serve`):
    ``python -m repro.serve`` -- asyncio HTTP service over warm workers;
    ``CompileRequest`` / ``CompileResponse`` are the versioned wire schema
    (re-exported here) and ``ServeClient`` the blocking client.

Baselines (:mod:`repro.baselines`):
    ``SabreMapper`` (re-implemented SABRE), ``SatmapMapper`` (exact
    branch-and-bound stand-in for SATMAP), ``LNNPathMapper``.

Verification (:mod:`repro.verify`):
    ``verify_mapped_qft(mapped)`` -- structural + statevector checks; each
    workload also carries its own ``verify`` path.

Evaluation (:mod:`repro.eval`):
    experiment runners regenerating Table 1 and Figures 17-19/27.
"""

from .arch import (
    CaterpillarTopology,
    GridTopology,
    HeavyHexTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
    Topology,
    TwoRowTopology,
)
from .circuit import (
    Circuit,
    Gate,
    GateKind,
    MappedCircuit,
    MappingBuilder,
    Op,
    PartitionRange,
    qft_angle,
    qft_circuit,
    qft_partitioned,
)
from .core import (
    GreedyRouterMapper,
    GridQFTMapper,
    HeavyHexQFTMapper,
    LatticeSurgeryQFTMapper,
    LNNQFTMapper,
    QFTDependenceTracker,
    SycamoreQFTMapper,
    compile_qft,
    mapper_for,
)
from .verify import verify_mapped_qft
from .registry import (
    DuplicateRegistrationError,
    Registry,
    UnknownNameError,
    UnsupportedWorkload,
)
from .arch import (
    architecture_key,
    architecture_label,
    architecture_names,
    make_architecture,
    register_architecture,
)
from .workloads import (
    VerifyResult,
    Workload,
    get_workload,
    register_workload,
    workload_names,
)
from .approaches import (
    ApproachEntry,
    approach_names,
    get_approach,
    make_mapper,
    register_approach,
)
from .compile_api import CompileResult, compile

# the serve wire schema is part of the top-level surface: repro.compile
# kwargs and the HTTP request body share these field names verbatim
from .serve.api import ApiError, CompileRequest, CompileResponse

__version__ = "2.0.0"

__all__ = [
    "CaterpillarTopology",
    "GridTopology",
    "HeavyHexTopology",
    "LatticeSurgeryTopology",
    "LNNTopology",
    "SycamoreTopology",
    "Topology",
    "TwoRowTopology",
    "Circuit",
    "Gate",
    "GateKind",
    "MappedCircuit",
    "MappingBuilder",
    "Op",
    "PartitionRange",
    "qft_angle",
    "qft_circuit",
    "qft_partitioned",
    "GreedyRouterMapper",
    "GridQFTMapper",
    "HeavyHexQFTMapper",
    "LatticeSurgeryQFTMapper",
    "LNNQFTMapper",
    "QFTDependenceTracker",
    "SycamoreQFTMapper",
    "mapper_for",
    "verify_mapped_qft",
    "Registry",
    "UnknownNameError",
    "DuplicateRegistrationError",
    "UnsupportedWorkload",
    "architecture_key",
    "architecture_label",
    "architecture_names",
    "make_architecture",
    "register_architecture",
    "VerifyResult",
    "Workload",
    "get_workload",
    "register_workload",
    "workload_names",
    "ApproachEntry",
    "approach_names",
    "get_approach",
    "make_mapper",
    "register_approach",
    "CompileResult",
    "compile",
    "ApiError",
    "CompileRequest",
    "CompileResponse",
    "__version__",
]
