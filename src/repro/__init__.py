"""repro -- reproduction of "Optimizing QFT Kernels for Modern NISQ and FT
Architectures" (SC 2024).

Public API highlights
---------------------

Architectures (:mod:`repro.arch`):
    ``LNNTopology``, ``GridTopology``, ``SycamoreTopology``,
    ``CaterpillarTopology`` / ``HeavyHexTopology``, ``LatticeSurgeryTopology``.

Compilation (:mod:`repro.core`):
    ``compile_qft(topology)`` -- the one-call domain-specific mapper facade,
    plus the individual mappers (``LNNQFTMapper``, ``HeavyHexQFTMapper``,
    ``SycamoreQFTMapper``, ``LatticeSurgeryQFTMapper``, ``GridQFTMapper``).

Baselines (:mod:`repro.baselines`):
    ``SabreMapper`` (re-implemented SABRE), ``SatmapMapper`` (exact
    branch-and-bound stand-in for SATMAP), ``LNNPathMapper``.

Verification (:mod:`repro.verify`):
    ``verify_mapped_qft(mapped)`` -- structural + statevector checks.

Evaluation (:mod:`repro.eval`):
    experiment runners regenerating Table 1 and Figures 17-19/27.
"""

from .arch import (
    CaterpillarTopology,
    GridTopology,
    HeavyHexTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
    Topology,
    TwoRowTopology,
)
from .circuit import (
    Circuit,
    Gate,
    GateKind,
    MappedCircuit,
    MappingBuilder,
    Op,
    PartitionRange,
    qft_angle,
    qft_circuit,
    qft_partitioned,
)
from .core import (
    GreedyRouterMapper,
    GridQFTMapper,
    HeavyHexQFTMapper,
    LatticeSurgeryQFTMapper,
    LNNQFTMapper,
    QFTDependenceTracker,
    SycamoreQFTMapper,
    compile_qft,
    mapper_for,
)
from .verify import verify_mapped_qft

__version__ = "1.0.0"

__all__ = [
    "CaterpillarTopology",
    "GridTopology",
    "HeavyHexTopology",
    "LatticeSurgeryTopology",
    "LNNTopology",
    "SycamoreTopology",
    "Topology",
    "TwoRowTopology",
    "Circuit",
    "Gate",
    "GateKind",
    "MappedCircuit",
    "MappingBuilder",
    "Op",
    "PartitionRange",
    "qft_angle",
    "qft_circuit",
    "qft_partitioned",
    "GreedyRouterMapper",
    "GridQFTMapper",
    "HeavyHexQFTMapper",
    "LatticeSurgeryQFTMapper",
    "LNNQFTMapper",
    "QFTDependenceTracker",
    "SycamoreQFTMapper",
    "compile_qft",
    "mapper_for",
    "verify_mapped_qft",
    "__version__",
]
