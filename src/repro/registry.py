"""Name registries backing the public compiler API.

The paper's framework claims a *uniform interface* over per-backend
constructions.  This module is that uniformity's single source of truth:
workloads, approaches and architectures each register themselves in a
:class:`Registry`, and every consumer -- :func:`repro.compile`, the
``core.mapper_for`` facade and the evaluation harness -- resolves names
through the same tables.  Synonyms, allowed keyword arguments, per-entry
size caps and "did you mean ...?" diagnostics therefore cannot drift apart
between the library and the harness.

Three typed errors form the API contract:

``UnknownNameError``
    Raised on lookup of a name nobody registered; the message lists every
    registered name plus close-match suggestions.
``DuplicateRegistrationError``
    Raised when a second registration claims an existing name or synonym
    (registration bugs should fail at import time, not shadow silently).
``UnsupportedWorkload``
    Raised by a mapper asked to compile a workload outside its domain (the
    QFT-specialist mappers construct their output analytically and cannot
    route arbitrary circuits).  The evaluation harness records it as a
    ``status == "unsupported"`` cell instead of crashing the sweep.
"""

from __future__ import annotations

import difflib
from typing import Dict, Generic, Iterable, List, Optional, Tuple, TypeVar

__all__ = [
    "Registry",
    "UnknownNameError",
    "DuplicateRegistrationError",
    "UnsupportedWorkload",
]

T = TypeVar("T")


class UnknownNameError(ValueError):
    """Lookup of a name that was never registered (with suggestions)."""

    def __init__(self, kind: str, name: str, registered: Iterable[str]) -> None:
        names = sorted(registered)
        msg = f"unknown {kind} {name!r}; registered: {', '.join(names) or '(none)'}"
        close = difflib.get_close_matches(name, names, n=3, cutoff=0.5)
        if close:
            msg += f" -- did you mean {' or '.join(repr(c) for c in close)}?"
        super().__init__(msg)
        self.kind = kind
        self.name = name
        self.registered = tuple(names)
        self.suggestions = tuple(close)

    def __reduce__(self):
        # Exceptions pickle as (cls, self.args) by default, which would call
        # __init__ with the formatted message; rebuild from the real fields
        # instead (the parallel harness ships these across process pools).
        return (type(self), (self.kind, self.name, self.registered))


class DuplicateRegistrationError(ValueError):
    """A second registration tried to claim an already-registered name."""


class UnsupportedWorkload(ValueError):
    """A mapper cannot compile the requested workload (domain-specialist).

    This is the *typed* refusal of the uniform ``map_circuit`` surface: the
    analytic QFT mappers raise it for anything that is not a textbook QFT,
    and the harness reports the cell as ``status == "unsupported"``.
    """


class Registry(Generic[T]):
    """A named table of entries with synonym support.

    ``register(name, value, synonyms=...)`` claims the canonical name plus
    every synonym; all spellings are matched case-insensitively.  ``get``
    resolves any spelling to the value, ``canonical`` to the canonical name.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._canonical: Dict[str, T] = {}
        self._alias: Dict[str, str] = {}  # any spelling (lower) -> canonical

    # -- registration ------------------------------------------------------
    def register(
        self, name: str, value: T, *, synonyms: Iterable[str] = ()
    ) -> T:
        spellings = [name, *synonyms]
        for s in spellings:
            key = s.lower()
            if key in self._alias:
                raise DuplicateRegistrationError(
                    f"{self.kind} name {s!r} is already registered "
                    f"(for {self._alias[key]!r})"
                )
        self._canonical[name] = value
        for s in spellings:
            self._alias[s.lower()] = name
        return value

    # -- lookup ------------------------------------------------------------
    def canonical(self, name: str) -> str:
        try:
            return self._alias[name.lower()]
        except KeyError:
            raise UnknownNameError(self.kind, name, self._canonical) from None

    def get(self, name: str) -> T:
        return self._canonical[self.canonical(name)]

    def canonical_or_none(self, name: str) -> Optional[str]:
        """Canonical spelling, or None for unknown names (no raise)."""

        return self._alias.get(name.lower())

    def names(self) -> Tuple[str, ...]:
        """Canonical names, in registration order."""

        return tuple(self._canonical)

    def synonyms(self, name: str) -> Tuple[str, ...]:
        """Non-canonical spellings registered for ``name``."""

        canon = self.canonical(name)
        return tuple(
            sorted(
                alias
                for alias, target in self._alias.items()
                if target == canon and alias != canon.lower()
            )
        )

    def items(self) -> List[Tuple[str, T]]:
        return list(self._canonical.items())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._alias

    def __len__(self) -> int:
        return len(self._canonical)
