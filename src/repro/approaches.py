"""The approach registry: every way this repo can compile a workload.

An *approach* is a named mapper family: the paper's domain-specific
constructions (``ours``), the SABRE and SATMAP baselines, the LNN
Hamiltonian-path solution and the greedy shortest-path router.  Each entry
registers its factory, accepted options, synonyms and (optionally) a default
size cap in one place; :func:`repro.compile`, ``core.mapper_for`` consumers
and the evaluation harness all resolve through this table, so names and
option validation cannot drift between the library and the harness.

New approaches plug in with::

    @register_approach("annealer", kwargs={"seed"}, max_qubits=256)
    def _annealer(topology, *, seed=0):
        return AnnealingMapper(topology, seed=seed)

The factory returns a mapper exposing the uniform surface: ``map_circuit``
(always) and optionally ``map_qft`` (the workload-aware analytic fast path).
Option validation is strict: an unknown option (e.g. ``sede=3`` for
``seed=3``) raises instead of silently running with defaults and being
cached under the misspelled key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from .arch.topology import Topology
from .baselines import LNNPathMapper, SabreMapper, SatmapMapper
from .core import GreedyRouterMapper, mapper_for
from .registry import Registry, UnsupportedWorkload

__all__ = [
    "ApproachEntry",
    "APPROACH_REGISTRY",
    "ENGINE_KWARGS",
    "register_approach",
    "get_approach",
    "approach_names",
    "make_mapper",
]


@dataclass(frozen=True)
class ApproachEntry:
    """One registered approach."""

    name: str
    factory: Callable[..., object]
    #: option names the factory accepts (anything else is a caller typo)
    allowed_kwargs: FrozenSet[str]
    #: factory kwarg that receives the harness time budget (SATMAP), if any
    timeout_param: Optional[str] = None
    #: default size cap; instances above it are reported as "skipped" unless
    #: the caller overrides the cap explicitly
    max_qubits: Optional[int] = None

    def validate_kwargs(self, kwargs: Dict[str, object]) -> None:
        unknown = set(kwargs) - self.allowed_kwargs
        if unknown:
            raise ValueError(
                f"unknown option(s) for approach {self.name!r}: {sorted(unknown)}"
                f" (accepted: {sorted(self.allowed_kwargs) or 'none'})"
            )


#: the process-wide approach registry
APPROACH_REGISTRY: Registry[ApproachEntry] = Registry("approach")

#: approach options that select an *execution engine* rather than an
#: algorithm: they can never change the produced circuits or metrics (the
#: equivalence suites pin this), only wall-clock.  The evaluation harness
#: excludes them from cache keys, journal cell keys and verify-policy
#: sampling, so a sweep's identity does not fork on engine choice -- a cell
#: computed with the compiled SABRE kernel and the same cell computed with
#: the Python fallback share one cache entry.  The engine that actually ran
#: is recorded informationally in the result's ``extra["kernel"]``.
ENGINE_KWARGS = frozenset({"kernel"})


def register_approach(
    name: str,
    *,
    synonyms: Iterable[str] = (),
    kwargs: Iterable[str] = (),
    timeout_param: Optional[str] = None,
    max_qubits: Optional[int] = None,
) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Decorator registering ``factory(topology, **kwargs) -> mapper``."""

    def _register(factory: Callable[..., object]) -> Callable[..., object]:
        APPROACH_REGISTRY.register(
            name,
            ApproachEntry(
                name,
                factory,
                frozenset(kwargs),
                timeout_param=timeout_param,
                max_qubits=max_qubits,
            ),
            synonyms=synonyms,
        )
        return factory

    return _register


def get_approach(name: str) -> ApproachEntry:
    """Resolve an approach by any registered spelling (raises with hints)."""

    return APPROACH_REGISTRY.get(name)


def approach_names() -> Tuple[str, ...]:
    """Canonical names of every registered approach."""

    return APPROACH_REGISTRY.names()


def make_mapper(
    approach: str,
    topology: Topology,
    *,
    timeout_s: Optional[float] = None,
    **kwargs: object,
) -> object:
    """Build the mapper for ``approach`` on ``topology`` (options validated).

    ``timeout_s`` is forwarded only to approaches that declared a
    ``timeout_param`` (SATMAP's internal wall-clock deadline); every other
    approach is budgeted externally by the harness.
    """

    entry = get_approach(approach)
    entry.validate_kwargs(kwargs)
    if entry.timeout_param is not None and timeout_s is not None:
        kwargs = {**kwargs, entry.timeout_param: timeout_s}
    return entry.factory(topology, **kwargs)


# ---------------------------------------------------------------------------
# Built-in approaches (the paper's Section 7 set)
# ---------------------------------------------------------------------------


@register_approach("ours", synonyms=("our", "our-approach"), kwargs={"strict_ie"})
def _ours(topology: Topology, *, strict_ie: bool = False) -> object:
    """The domain-specific mapper for the architecture (Sections 4-6)."""

    return mapper_for(topology, strict_ie=strict_ie)


@register_approach("sabre", kwargs={"seed", "passes", "incremental", "kernel"})
def _sabre(
    topology: Topology,
    *,
    seed: int = 0,
    passes: int = 3,
    incremental: bool = False,
    kernel: str = "auto",
) -> object:
    """The SABRE re-implementation (heuristic SWAP insertion).

    ``kernel`` selects the routing engine (``"auto"``/``"c"``/``"python"``;
    see :class:`~repro.baselines.sabre.SabreMapper`): an :data:`ENGINE_KWARGS`
    option, bit-identical across engines and excluded from cache identity.
    """

    return SabreMapper(
        topology, seed=seed, passes=passes, incremental=incremental, kernel=kernel
    )


# Beyond ~10 qubits the exact search times out anyway (as in the paper);
# the default cap keeps a stray ``repro.compile(approach="satmap")`` on a
# large device from sitting in branch-and-bound for its full timeout.
@register_approach("satmap", timeout_param="timeout_s", max_qubits=64)
def _satmap(topology: Topology, *, timeout_s: Optional[float] = None) -> object:
    """The exact-with-timeout SATMAP stand-in."""

    return SatmapMapper(topology, timeout_s=60.0 if timeout_s is None else timeout_s)


@register_approach("lnn")
def _lnn(topology: Topology) -> object:
    """LNN along a Hamiltonian path (grid-like architectures only).

    Architectures with no known Hamiltonian path (Sycamore, heavy-hex --
    Section 2.2) are a *typed* refusal, so sweeps over the full
    approach x architecture cross-product record the cell as unsupported
    instead of crashing.
    """

    try:
        return LNNPathMapper(topology)
    except ValueError as exc:
        raise UnsupportedWorkload(str(exc)) from exc


@register_approach("greedy")
def _greedy(topology: Topology) -> object:
    """Naive shortest-path router (sanity baseline, not in the paper)."""

    return GreedyRouterMapper(topology)
