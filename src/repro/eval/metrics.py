"""Result records and metric extraction for the evaluation harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..circuit.schedule import MappedCircuit

__all__ = ["CompilationResult", "result_from_mapped"]


@dataclass
class CompilationResult:
    """One cell of a results table: an (approach, architecture, size) triple.

    ``status`` is ``"ok"``, ``"timeout"`` (the paper's TLE) or ``"skipped"``
    (size above the harness cap for that approach).  Metric fields are ``None``
    unless ``status == "ok"``.
    """

    approach: str
    architecture: str
    num_qubits: int
    status: str = "ok"
    depth: Optional[int] = None
    unit_depth: Optional[int] = None
    swap_count: Optional[int] = None
    cphase_count: Optional[int] = None
    total_ops: Optional[int] = None
    compile_time_s: Optional[float] = None
    verified: Optional[bool] = None
    extra: Dict[str, object] = field(default_factory=dict)

    # -- convenience -------------------------------------------------------
    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def depth_per_qubit(self) -> Optional[float]:
        if self.depth is None or self.num_qubits == 0:
            return None
        return self.depth / self.num_qubits

    def as_row(self) -> Dict[str, object]:
        return {
            "approach": self.approach,
            "architecture": self.architecture,
            "qubits": self.num_qubits,
            "status": self.status,
            "depth": self.depth if self.depth is not None else "-",
            "swaps": self.swap_count if self.swap_count is not None else "-",
            "cphase": self.cphase_count if self.cphase_count is not None else "-",
            "compile_s": (
                f"{self.compile_time_s:.2f}" if self.compile_time_s is not None else "-"
            ),
            "verified": self.verified if self.verified is not None else "-",
        }


def result_from_mapped(
    approach: str,
    architecture: str,
    mapped: MappedCircuit,
    compile_time_s: float,
    verified: Optional[bool] = None,
) -> CompilationResult:
    """Build a :class:`CompilationResult` from a mapped circuit."""

    return CompilationResult(
        approach=approach,
        architecture=architecture,
        num_qubits=mapped.num_logical,
        status="ok",
        depth=mapped.depth(),
        unit_depth=mapped.unit_depth(),
        swap_count=mapped.swap_count(),
        cphase_count=mapped.cphase_count(),
        total_ops=len(mapped.ops),
        compile_time_s=compile_time_s,
        verified=verified,
        extra=dict(mapped.metadata),
    )
