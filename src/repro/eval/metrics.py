"""Result records and metric extraction for the evaluation harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..circuit.schedule import MappedCircuit

__all__ = ["CompilationResult", "result_from_mapped"]


def _jsonify(value: object) -> object:
    """Coerce a metadata value to something json.dumps accepts."""

    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return str(value)


@dataclass
class CompilationResult:
    """One cell of a results table: an (approach, architecture, size) triple.

    ``status`` is ``"ok"``, ``"timeout"`` (the paper's TLE) or ``"skipped"``
    (size above the harness cap for that approach).  Metric fields are ``None``
    unless ``status == "ok"``.
    """

    approach: str
    architecture: str
    num_qubits: int
    status: str = "ok"
    depth: Optional[int] = None
    unit_depth: Optional[int] = None
    swap_count: Optional[int] = None
    cphase_count: Optional[int] = None
    total_ops: Optional[int] = None
    compile_time_s: Optional[float] = None
    verified: Optional[bool] = None
    message: Optional[str] = None
    extra: Dict[str, object] = field(default_factory=dict)

    # -- convenience -------------------------------------------------------
    @property
    def ok(self) -> bool:
        return self.status == "ok"

    # -- (de)serialisation (used by the on-disk result cache) --------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict representation (``extra`` values coerced via str)."""

        return {
            "approach": self.approach,
            "architecture": self.architecture,
            "num_qubits": self.num_qubits,
            "status": self.status,
            "depth": self.depth,
            "unit_depth": self.unit_depth,
            "swap_count": self.swap_count,
            "cphase_count": self.cphase_count,
            "total_ops": self.total_ops,
            "compile_time_s": self.compile_time_s,
            "verified": self.verified,
            "message": self.message,
            "extra": {k: _jsonify(v) for k, v in self.extra.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompilationResult":
        fields = {
            "approach",
            "architecture",
            "num_qubits",
            "status",
            "depth",
            "unit_depth",
            "swap_count",
            "cphase_count",
            "total_ops",
            "compile_time_s",
            "verified",
            "message",
            "extra",
        }
        return cls(**{k: v for k, v in data.items() if k in fields})

    def depth_per_qubit(self) -> Optional[float]:
        if self.depth is None or self.num_qubits == 0:
            return None
        return self.depth / self.num_qubits

    def as_row(self) -> Dict[str, object]:
        return {
            "approach": self.approach,
            "architecture": self.architecture,
            "qubits": self.num_qubits,
            "status": self.status,
            "depth": self.depth if self.depth is not None else "-",
            "swaps": self.swap_count if self.swap_count is not None else "-",
            "cphase": self.cphase_count if self.cphase_count is not None else "-",
            "compile_s": (
                f"{self.compile_time_s:.2f}" if self.compile_time_s is not None else "-"
            ),
            "verified": self.verified if self.verified is not None else "-",
            "message": self.message or "",
        }


def result_from_mapped(
    approach: str,
    architecture: str,
    mapped: MappedCircuit,
    compile_time_s: float,
    verified: Optional[bool] = None,
) -> CompilationResult:
    """Build a :class:`CompilationResult` from a mapped circuit."""

    return CompilationResult(
        approach=approach,
        architecture=architecture,
        num_qubits=mapped.num_logical,
        status="ok",
        depth=mapped.depth(),
        unit_depth=mapped.unit_depth(),
        swap_count=mapped.swap_count(),
        cphase_count=mapped.cphase_count(),
        total_ops=len(mapped.ops),
        compile_time_s=compile_time_s,
        verified=verified,
        extra=dict(mapped.metadata),
    )
