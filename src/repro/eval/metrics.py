"""Result records and metric extraction for the evaluation harness.

Metric extraction is vectorized: one pass packs the op stream into numpy
arrays (kind codes, physical operands), after which the gate counts are
``count_nonzero`` calls and the ASAP depths run as a *chunked scan* -- the
stream is cut into maximal runs of qubit-disjoint ops (no op in a chunk
shares a qubit with an earlier op of the same chunk), and each chunk updates
the per-qubit busy times with one vector gather/scatter.  Mapped streams
come out of the schedulers in parallel waves, so chunks are wide and the
number of python-level iterations drops from #ops (~1M at 1024 qubits, the
full-Python pass the ROADMAP flags) to roughly the circuit depth.  The
scalar reference (:func:`repro.circuit.schedule.asap_depth`) is kept and the
equivalence is covered by tests; topologies that override the scalar
``op_latency`` without providing the vectorized ``op_latency_array`` fall
back to the reference path automatically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuit.gates import KIND_CODES, GateKind
from ..circuit.schedule import MappedCircuit, asap_depth

__all__ = [
    "CompilationResult",
    "result_from_mapped",
    "mapped_op_arrays",
    "fast_asap_depth",
    "fast_metrics",
]


def mapped_op_arrays(
    mapped: MappedCircuit,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack ``mapped.ops`` into ``(kind codes, q0, q1)`` numpy arrays.

    ``q1`` is ``-1`` for single-qubit ops and barriers; kind codes follow
    :data:`~repro.circuit.gates.KIND_CODES`.
    """

    ops = mapped.ops
    m = len(ops)
    codes = KIND_CODES
    kinds = np.fromiter((codes[op.kind] for op in ops), dtype=np.int8, count=m)
    q0 = np.fromiter(
        (op.physical[0] if op.physical else -1 for op in ops), dtype=np.int64, count=m
    )
    q1 = np.fromiter(
        (op.physical[1] if len(op.physical) > 1 else -1 for op in ops),
        dtype=np.int64,
        count=m,
    )
    return kinds, q0, q1


def _chunk_bounds(q0: np.ndarray, q1: np.ndarray, num_sites: int) -> list:
    """Cut a barrier-free run of ops into maximal qubit-disjoint chunks.

    Ops are first annotated with ``prev``: the index of the latest earlier
    op sharing a qubit (vectorized via a lexsort over (qubit, index) pairs).
    A chunk boundary falls before the first op whose ``prev`` lands inside
    the current chunk.  Within a chunk no two ops share a qubit, so their
    start times are mutually independent -- the scan handles a whole chunk
    with one gather/maximum/scatter.  A chunk holds at most ``num_sites``
    ops (distinct qubits), which bounds the conflict search window.

    The bounds depend only on the qubit pattern, not on latencies, so one
    computation serves every cost model scanned over the same stream.
    """

    k = len(q0)
    two = q1 >= 0
    idx = np.concatenate([np.arange(k), np.flatnonzero(two)])
    qs = np.concatenate([q0, q1[two]])
    order = np.lexsort((idx, qs))
    sq, si = qs[order], idx[order]
    same = sq[1:] == sq[:-1]
    prev = np.full(k, -1, dtype=np.int64)
    np.maximum.at(prev, si[1:][same], si[:-1][same])

    bounds = []
    s = 0
    while s < k:
        limit = min(k, s + num_sites + 1)
        window = prev[s + 1 : limit] >= s
        e = (s + 1 + int(np.argmax(window))) if window.any() else limit
        bounds.append((s, e))
        s = e
    return bounds


def _fast_asap_depths(
    kinds: np.ndarray,
    q0: np.ndarray,
    q1: np.ndarray,
    lats: np.ndarray,
    num_sites: int,
) -> np.ndarray:
    """ASAP depths of one packed op stream under several cost models at once.

    ``lats`` has shape ``(num_ops, L)``: one latency column per cost model
    (the harness scans unit and weighted depth together).  Busy times are
    tracked as an ``(num_sites, L)`` array, so the chunked scan costs one
    pass regardless of ``L``.  Bit-equal per column to
    :func:`repro.circuit.schedule.asap_depth`; barriers are global fences,
    exactly as in the reference.
    """

    n_models = lats.shape[1]
    barrier = KIND_CODES[GateKind.BARRIER]
    busy = np.zeros((num_sites, n_models), dtype=np.int64)
    depths = np.zeros(n_models, dtype=np.int64)
    fences = np.zeros(n_models, dtype=np.int64)
    boundaries = np.flatnonzero(kinds == barrier)
    start = 0
    for cut in [*boundaries.tolist(), len(kinds)]:
        if cut > start:
            g0, g1, gl = q0[start:cut], q1[start:cut], lats[start:cut]
            for s, e in _chunk_bounds(g0, g1, num_sites):
                q0c, q1c = g0[s:e], g1[s:e]
                twoc = q1c >= 0
                starts = busy[q0c]  # fancy indexing: already a copy
                np.maximum(starts, fences, out=starts)
                starts[twoc] = np.maximum(starts[twoc], busy[q1c[twoc]])
                ends = starts + gl[s:e]
                busy[q0c] = ends
                busy[q1c[twoc]] = ends[twoc]
                np.maximum(depths, ends.max(axis=0), out=depths)
        if cut < len(kinds):  # the barrier itself
            np.maximum(fences, busy.max(axis=0), out=fences)
        start = cut + 1
    return depths


def fast_asap_depth(
    kinds: np.ndarray,
    q0: np.ndarray,
    q1: np.ndarray,
    lat: np.ndarray,
    num_sites: int,
) -> int:
    """Vectorized weighted ASAP depth of a packed op stream (one cost model)."""

    lats = np.ascontiguousarray(np.asarray(lat, dtype=np.int64).reshape(-1, 1))
    return int(_fast_asap_depths(kinds, q0, q1, lats, num_sites)[0])


def fast_metrics(mapped: MappedCircuit) -> Tuple[int, int, int, int]:
    """``(depth, unit_depth, swap_count, cphase_count)`` in one array pass.

    Falls back to the scalar reference for the weighted depth when the
    topology has no vectorized latency model (custom ``op_latency``
    override without ``op_latency_array``).
    """

    kinds, q0, q1 = mapped_op_arrays(mapped)
    swap_count = int(np.count_nonzero(kinds == KIND_CODES[GateKind.SWAP]))
    cphase_count = int(np.count_nonzero(kinds == KIND_CODES[GateKind.CPHASE]))
    num_sites = int(mapped.topology.num_qubits)

    lat = None
    lat_fn = getattr(mapped.topology, "op_latency_array", None)
    if lat_fn is not None:
        lat = lat_fn(kinds, q0, q1)

    unit_lat = np.ones(len(kinds), dtype=np.int64)
    if lat is None:
        unit_depth = fast_asap_depth(kinds, q0, q1, unit_lat, num_sites)
        depth = asap_depth(mapped.ops, mapped.topology.op_latency)
    elif bool(np.all(lat[kinds != KIND_CODES[GateKind.BARRIER]] == 1)):
        unit_depth = fast_asap_depth(kinds, q0, q1, unit_lat, num_sites)
        depth = unit_depth  # uniform cost model: the two depths coincide
    else:
        # One chunked scan computes both cost models together.
        lats = np.stack([unit_lat, np.asarray(lat, dtype=np.int64)], axis=1)
        unit_depth, depth = (
            int(v) for v in _fast_asap_depths(kinds, q0, q1, lats, num_sites)
        )
    return depth, unit_depth, swap_count, cphase_count


def _jsonify(value: object) -> object:
    """Coerce a metadata value to something json.dumps accepts."""

    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return str(value)


@dataclass
class CompilationResult:
    """One cell of a results table: a (workload, approach, architecture,
    size) tuple.

    ``status`` is ``"ok"``, ``"timeout"`` (the paper's TLE), ``"skipped"``
    (size above the harness cap for that approach) or ``"unsupported"``
    (the approach cannot compile this workload/architecture combination).
    Metric fields are ``None`` unless ``status == "ok"``.
    """

    approach: str
    architecture: str
    num_qubits: int
    status: str = "ok"
    depth: Optional[int] = None
    unit_depth: Optional[int] = None
    swap_count: Optional[int] = None
    cphase_count: Optional[int] = None
    total_ops: Optional[int] = None
    compile_time_s: Optional[float] = None
    verified: Optional[bool] = None
    message: Optional[str] = None
    extra: Dict[str, object] = field(default_factory=dict)
    workload: str = "qft"

    # -- convenience -------------------------------------------------------
    @property
    def ok(self) -> bool:
        return self.status == "ok"

    # -- (de)serialisation (used by the on-disk result cache) --------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict representation (``extra`` values coerced via str)."""

        return {
            "workload": self.workload,
            "approach": self.approach,
            "architecture": self.architecture,
            "num_qubits": self.num_qubits,
            "status": self.status,
            "depth": self.depth,
            "unit_depth": self.unit_depth,
            "swap_count": self.swap_count,
            "cphase_count": self.cphase_count,
            "total_ops": self.total_ops,
            "compile_time_s": self.compile_time_s,
            "verified": self.verified,
            "message": self.message,
            "extra": {k: _jsonify(v) for k, v in self.extra.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompilationResult":
        fields = {
            "workload",
            "approach",
            "architecture",
            "num_qubits",
            "status",
            "depth",
            "unit_depth",
            "swap_count",
            "cphase_count",
            "total_ops",
            "compile_time_s",
            "verified",
            "message",
            "extra",
        }
        return cls(**{k: v for k, v in data.items() if k in fields})

    def depth_per_qubit(self) -> Optional[float]:
        if self.depth is None or self.num_qubits == 0:
            return None
        return self.depth / self.num_qubits

    def as_row(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "approach": self.approach,
            "architecture": self.architecture,
            "qubits": self.num_qubits,
            "status": self.status,
            "depth": self.depth if self.depth is not None else "-",
            "swaps": self.swap_count if self.swap_count is not None else "-",
            "cphase": self.cphase_count if self.cphase_count is not None else "-",
            "compile_s": (
                f"{self.compile_time_s:.2f}" if self.compile_time_s is not None else "-"
            ),
            "verified": self.verified if self.verified is not None else "-",
            "message": self.message or "",
        }


def result_from_mapped(
    approach: str,
    architecture: str,
    mapped: MappedCircuit,
    compile_time_s: float,
    verified: Optional[bool] = None,
    *,
    workload: str = "qft",
) -> CompilationResult:
    """Build a :class:`CompilationResult` from a mapped circuit.

    Metric extraction goes through the vectorized :func:`fast_metrics` path
    (one numpy op-array pass instead of six full-Python passes over the op
    stream -- the ROADMAP flags ~1M-op streams at 1024 qubits).
    """

    depth, unit_depth, swap_count, cphase_count = fast_metrics(mapped)
    return CompilationResult(
        approach=approach,
        architecture=architecture,
        num_qubits=mapped.num_logical,
        status="ok",
        depth=depth,
        unit_depth=unit_depth,
        swap_count=swap_count,
        cphase_count=cphase_count,
        total_ops=len(mapped.ops),
        compile_time_s=compile_time_s,
        verified=verified,
        extra=dict(mapped.metadata),
        workload=workload,
    )
