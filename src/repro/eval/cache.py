"""JSON-on-disk cache of :class:`~repro.eval.metrics.CompilationResult` rows.

Every evaluation cell is deterministic given its spec (approach,
architecture kind, size, kwargs such as the SABRE seed) and the code that
produced it, so re-running a sweep can skip any cell that was already
computed.  Cache keys therefore combine the cell spec with a *code version*:
a hash over the ``repro`` package sources, recomputed per process, so editing
the compiler automatically invalidates stale entries instead of silently
serving results from an older algorithm.

Entries are one JSON file per cell (atomic rename on write), which makes the
cache safe to share between the worker processes of the parallel harness --
two workers writing the same cell write identical bytes.  The same property
makes caches from *different machines* unionable: :meth:`ResultCache.merge`
(CLI: ``python -m repro.eval --cache DEST --cache-merge DIR...``) copies over
entries whose keys are absent, which is how sharded sweeps are combined.

A ``root`` ending in ``.db`` selects the SQLite backend instead: the same
keys, the same get/put/merge semantics, but rows in a
:class:`repro.store.ExperimentStore` (WAL mode, concurrent writers), where
the conflict-checked merge is enforced by the ``UNIQUE (cell_key)``
constraint and cross-run queries come for free.  Directory caches merge
*into* a store-backed cache (and vice versa), which is the migration path.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from ..approaches import ENGINE_KWARGS
from .metrics import CompilationResult

__all__ = [
    "ResultCache",
    "CacheMergeConflict",
    "cell_cache_key",
    "code_version",
]


class CacheMergeConflict(ValueError):
    """Two caches disagree about the same key under the same code version.

    Every key encodes the full cell spec plus the code version, and every
    cell is deterministic given both -- so two shards storing *different*
    metrics under one key means one of them is corrupt or was produced by
    tampered sources.  Merging must surface that loudly instead of silently
    keeping whichever directory happened to be merged first.
    """

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of the ``repro`` package sources (12 hex chars, cached)."""

    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        pkg_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            digest.update(str(path.relative_to(pkg_root)).encode())
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:12]
    return _CODE_VERSION


def cell_cache_key(
    approach: str,
    kind: str,
    size: int,
    kwargs: Iterable[Tuple[str, object]] = (),
    rename: Optional[str] = None,
    timeout_s: Optional[float] = None,
    workload: str = "qft",
    workload_params: Iterable[Tuple[str, object]] = (),
    verify: str = "full",
    *,
    code: Optional[str] = None,
) -> str:
    """The cache key for one cell spec under code version ``code``.

    This is the single key derivation shared by :meth:`ResultCache.key`
    and the serve layer's in-memory LRU -- both must agree byte-for-byte
    so a served request can hit entries written by batch sweeps (and vice
    versa).  ``code`` defaults to the current :func:`code_version`.
    """

    payload = json.dumps(
        {
            "approach": approach,
            "kind": kind,
            "size": size,
            # Engine-selection options (e.g. the SABRE routing kernel)
            # are bit-identical by contract, so they are not part of a
            # cell's identity: a sweep must hit the same cache entries
            # whether the compiled kernel or the Python fallback ran.
            "kwargs": sorted(
                (str(k), repr(v))
                for k, v in kwargs
                if str(k) not in ENGINE_KWARGS
            ),
            "rename": rename,
            "timeout_s": timeout_s,
            "workload": workload,
            "workload_params": sorted(
                (str(k), repr(v)) for k, v in workload_params
            ),
            "verify": verify,
            "code": code if code is not None else code_version(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


class ResultCache:
    """One-file-per-cell JSON cache rooted at ``root``.

    Parameters
    ----------
    root:
        Directory for the cache (created on demand), or a ``*.db`` path to
        back the cache by a :class:`repro.store.ExperimentStore` instead.
    version:
        Code-version component of every key.  Defaults to
        :func:`code_version`; tests may pin it to probe invalidation.
    """

    def __init__(self, root: os.PathLike, *, version: Optional[str] = None) -> None:
        self.root = Path(root)
        self._store = None
        if self.root.suffix == ".db":
            # Lazy import: repro.store imports ENGINE_KWARGS-adjacent code
            # and must not become an import-time dependency of the cache.
            from ..store import ExperimentStore

            self._store = ExperimentStore(self.root)
            #: spec columns captured by :meth:`key`, consumed by :meth:`put`
            #: (``put`` receives only the opaque key, but the store indexes
            #: the denormalized spec, so ``key`` stashes it per key).
            self._identity: Dict[str, Dict[str, object]] = {}
        else:
            self.root.mkdir(parents=True, exist_ok=True)
        self.version = version if version is not None else code_version()
        self.hits = 0
        self.misses = 0

    @property
    def store(self):
        """The backing :class:`ExperimentStore`, or ``None`` (directory)."""

        return self._store

    def close(self) -> None:
        if self._store is not None:
            self._store.close()

    # ------------------------------------------------------------------
    def key(
        self,
        approach: str,
        kind: str,
        size: int,
        kwargs: Iterable[Tuple[str, object]] = (),
        rename: Optional[str] = None,
        timeout_s: Optional[float] = None,
        workload: str = "qft",
        workload_params: Iterable[Tuple[str, object]] = (),
        verify: str = "full",
    ) -> str:
        kwargs = tuple(kwargs)
        workload_params = tuple(workload_params)
        cell_key = cell_cache_key(
            approach,
            kind,
            size,
            kwargs=kwargs,
            rename=rename,
            timeout_s=timeout_s,
            workload=workload,
            workload_params=workload_params,
            verify=verify,
            code=self.version,
        )
        if self._store is not None:
            from ..store import identity_columns

            self._identity[cell_key] = identity_columns(
                approach,
                kind,
                size,
                kwargs=kwargs,
                rename=rename,
                timeout_s=timeout_s,
                workload=workload,
                workload_params=workload_params,
                verify=verify,
            )
        return cell_key

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[CompilationResult]:
        """Cached result for ``key``, or ``None`` (corrupt files count as miss)."""

        if self._store is not None:
            data = self._store.get_cell(key)
            try:
                result = (
                    None if data is None else CompilationResult.from_dict(data)
                )
            except (ValueError, TypeError):
                result = None
            if result is None:
                self.misses += 1
                return None
            self.hits += 1
            result.extra = dict(result.extra or {})
            result.extra["cache"] = "hit"
            return result
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                data = json.load(fh)
            result = CompilationResult.from_dict(data)
        except (OSError, ValueError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        result.extra = dict(result.extra or {})
        result.extra["cache"] = "hit"
        return result

    def put(self, key: str, result: CompilationResult) -> None:
        """Store ``result`` under ``key`` (atomic write-then-rename)."""

        if self._store is not None:
            self._store.put_cell(
                key,
                result,
                code=self.version,
                identity=self._identity.get(key),
            )
            return
        data = result.to_dict()
        data["extra"].pop("cache", None)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(data, fh, indent=1)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    #: result fields excluded from the merge conflict check: wall-clock is a
    #: property of the machine/run, not of the spec, so two shards computing
    #: the same deterministic cell legitimately disagree on it.
    _VOLATILE_FIELDS = ("compile_time_s",)
    #: ``extra`` keys likewise excluded: which routing engine computed a cell
    #: (``kernel``) is a property of the machine (whether the extension was
    #: built there), not of the spec -- engines are bit-identical, so two
    #: shards disagreeing *only* on this must still merge cleanly.
    _VOLATILE_EXTRA = ("kernel",)

    def _comparable(self, data: Dict[str, object]) -> Dict[str, object]:
        out = {k: v for k, v in data.items() if k not in self._VOLATILE_FIELDS}
        extra = out.get("extra")
        if isinstance(extra, dict):
            out["extra"] = {
                k: v for k, v in extra.items() if k not in self._VOLATILE_EXTRA
            }
        return out

    def merge(self, other_root: os.PathLike) -> Dict[str, int]:
        """Union the entries of another cache directory into this one.

        The key of every entry already encodes spec + code version in its
        file name, so merging is a file-level union, performed in sorted key
        order (deterministic regardless of directory listing order):
        unreadable/corrupt source files are counted and ignored, fresh
        entries are copied atomically (write + rename, like :meth:`put`, so
        a merge is safe to run concurrently with writers), and entries whose
        key is already present here are *conflict-checked* -- every
        deterministic field must agree (wall-clock may differ; two machines
        timing the same cell never match).  A disagreement raises
        :class:`CacheMergeConflict` instead of silently keeping whichever
        directory was merged first.  This is the union step for sharded
        sweeps: machines run slices against private cache dirs, then one
        host merges them.

        Sources and destinations mix freely across backends: a store-backed
        cache merges directories or other ``.db`` stores (the conflict check
        is the ``UNIQUE (cell_key)`` constraint there), and a directory
        cache can drain a ``.db`` store back into files.
        """

        other = Path(other_root)
        if self._store is not None:
            return self._store.merge_from(other)
        if other.suffix == ".db":
            return self._merge_from_store(other)
        if not other.is_dir():
            raise FileNotFoundError(f"cache directory {other} does not exist")
        imported = skipped = invalid = 0
        for path in sorted(other.glob("*.json")):
            dest = self._path(path.stem)
            try:
                raw = path.read_bytes()
                incoming = json.loads(raw.decode("utf-8"))
                CompilationResult.from_dict(incoming)
            except (OSError, ValueError, TypeError):
                invalid += 1
                continue
            if dest.exists():
                try:
                    existing = json.loads(dest.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    existing = None  # corrupt local entry: let the copy heal it
                if existing is not None:
                    if self._comparable(existing) != self._comparable(incoming):
                        differing = sorted(
                            k
                            for k in set(existing) | set(incoming)
                            if k not in self._VOLATILE_FIELDS
                            and existing.get(k) != incoming.get(k)
                        )
                        raise CacheMergeConflict(
                            f"cache entry {path.stem} from {other} disagrees "
                            f"with the existing entry on field(s) "
                            f"{', '.join(differing)}; same key + same code "
                            "version must mean identical results -- one of "
                            "the caches is corrupt"
                        )
                    skipped += 1
                    continue
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(raw)
                os.replace(tmp, dest)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            imported += 1
        return {"imported": imported, "skipped": skipped, "invalid": invalid}

    def _merge_from_store(self, other: Path) -> Dict[str, int]:
        """Drain a ``.db`` store into this directory cache (same checks)."""

        if not other.is_file():
            raise FileNotFoundError(f"store {other} does not exist")
        from ..store import ExperimentStore

        imported = skipped = 0
        with ExperimentStore(other) as store:
            for cell in store.iter_cells():
                key, incoming = cell["cell_key"], cell["result"]
                dest = self._path(key)
                if dest.exists():
                    try:
                        existing = json.loads(dest.read_text(encoding="utf-8"))
                    except (OSError, ValueError):
                        existing = None  # corrupt local entry: heal it
                    if existing is not None:
                        if self._comparable(existing) != self._comparable(incoming):
                            differing = sorted(
                                k
                                for k in set(existing) | set(incoming)
                                if k not in self._VOLATILE_FIELDS
                                and existing.get(k) != incoming.get(k)
                            )
                            raise CacheMergeConflict(
                                f"cache entry {key} from {other} disagrees "
                                f"with the existing entry on field(s) "
                                f"{', '.join(differing)}; same key + same "
                                "code version must mean identical results "
                                "-- one of the caches is corrupt"
                            )
                        skipped += 1
                        continue
                fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as fh:
                        json.dump(incoming, fh, indent=1)
                    os.replace(tmp, dest)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
                imported += 1
        return {"imported": imported, "skipped": skipped, "invalid": 0}

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        if self._store is not None:
            return self._store.counts()["cells"]
        return sum(1 for _ in self.root.glob("*.json"))
