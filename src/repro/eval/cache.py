"""JSON-on-disk cache of :class:`~repro.eval.metrics.CompilationResult` rows.

Every evaluation cell is deterministic given its spec (approach,
architecture kind, size, kwargs such as the SABRE seed) and the code that
produced it, so re-running a sweep can skip any cell that was already
computed.  Cache keys therefore combine the cell spec with a *code version*:
a hash over the ``repro`` package sources, recomputed per process, so editing
the compiler automatically invalidates stale entries instead of silently
serving results from an older algorithm.

Entries are one JSON file per cell (atomic rename on write), which makes the
cache safe to share between the worker processes of the parallel harness --
two workers writing the same cell write identical bytes.  The same property
makes caches from *different machines* unionable: :meth:`ResultCache.merge`
(CLI: ``python -m repro.eval --cache DEST --cache-merge DIR...``) copies over
entries whose keys are absent, which is how sharded sweeps are combined.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from .metrics import CompilationResult

__all__ = ["ResultCache", "code_version"]

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of the ``repro`` package sources (12 hex chars, cached)."""

    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        pkg_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            digest.update(str(path.relative_to(pkg_root)).encode())
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:12]
    return _CODE_VERSION


class ResultCache:
    """One-file-per-cell JSON cache rooted at ``root``.

    Parameters
    ----------
    root:
        Directory for the cache (created on demand).
    version:
        Code-version component of every key.  Defaults to
        :func:`code_version`; tests may pin it to probe invalidation.
    """

    def __init__(self, root: os.PathLike, *, version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.version = version if version is not None else code_version()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key(
        self,
        approach: str,
        kind: str,
        size: int,
        kwargs: Iterable[Tuple[str, object]] = (),
        rename: Optional[str] = None,
        timeout_s: Optional[float] = None,
        workload: str = "qft",
        workload_params: Iterable[Tuple[str, object]] = (),
    ) -> str:
        payload = json.dumps(
            {
                "approach": approach,
                "kind": kind,
                "size": size,
                "kwargs": sorted((str(k), repr(v)) for k, v in kwargs),
                "rename": rename,
                "timeout_s": timeout_s,
                "workload": workload,
                "workload_params": sorted(
                    (str(k), repr(v)) for k, v in workload_params
                ),
                "code": self.version,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[CompilationResult]:
        """Cached result for ``key``, or ``None`` (corrupt files count as miss)."""

        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                data = json.load(fh)
            result = CompilationResult.from_dict(data)
        except (OSError, ValueError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        result.extra = dict(result.extra or {})
        result.extra["cache"] = "hit"
        return result

    def put(self, key: str, result: CompilationResult) -> None:
        """Store ``result`` under ``key`` (atomic write-then-rename)."""

        data = result.to_dict()
        data["extra"].pop("cache", None)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(data, fh, indent=1)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def merge(self, other_root: os.PathLike) -> Dict[str, int]:
        """Union the entries of another cache directory into this one.

        The key of every entry already encodes spec + code version in its
        file name, so merging is a file-level union: entries whose key is
        present here are skipped (same key == identical bytes by
        construction), unreadable/corrupt files are counted and ignored, and
        everything else is copied atomically (write + rename, like
        :meth:`put`) so a merge is safe to run concurrently with writers.
        This is the union step for sharded sweeps: machines run disjoint
        slices against private cache dirs, then one host merges them.
        """

        other = Path(other_root)
        if not other.is_dir():
            raise FileNotFoundError(f"cache directory {other} does not exist")
        imported = skipped = invalid = 0
        for path in sorted(other.glob("*.json")):
            dest = self._path(path.stem)
            if dest.exists():
                skipped += 1
                continue
            try:
                raw = path.read_bytes()
                CompilationResult.from_dict(json.loads(raw.decode("utf-8")))
            except (OSError, ValueError, TypeError):
                invalid += 1
                continue
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(raw)
                os.replace(tmp, dest)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            imported += 1
        return {"imported": imported, "skipped": skipped, "invalid": invalid}

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
