"""Append-only JSONL run journal: streaming results, crash-safe resume.

A *journal* is the durable record of one evaluation run: a directory holding
``journal.jsonl`` whose first line is the run's metadata (code version, plan
fingerprint, experiment/shard identity) and every following line is one
finished cell, written the moment the harness receives it.  Because lines
are appended, flushed **and fsynced** per cell (``fsync_every`` widens the
sync stride for workloads where per-cell durability costs too much), a run
killed at any point -- including a host power loss -- leaves a journal whose
intact prefix is exactly the set of finished cells.  The
``shard-coordinator`` and ``dispatch`` executors resume from it by serving
journaled cells without re-running them.

Corruption handling is deliberately asymmetric:

* A **torn final line** (unterminated: the crash happened mid-``write``) is
  expected, tolerated, and repaired -- :meth:`RunJournal.open` truncates the
  tail back to the last intact record, so the torn fragment can never
  resurface as mid-file garbage after the resumed run appends past it.
* **Anything else** -- an unparseable line in the middle of the file, a
  ``cell`` record whose payload does not deserialize, a garbage line that
  *is* newline-terminated -- raises :class:`JournalCorruptError`.  Those
  are not crash artifacts; silently skipping them (as earlier revisions
  did) would drop finished results and re-run cells that already burned
  hours.

Cells are identified by :func:`cell_key`, a content hash over every field of
the :class:`~repro.eval.parallel.CellSpec` (including the verification
policy).  The key deliberately excludes the code version: that lives once in
the metadata line, and resuming under a different code version is refused
outright rather than silently mixing results from two algorithms.

A cell may appear more than once (the coordinator re-dispatches straggler
cells and journals the second attempt too); :meth:`RunJournal.results` keeps
the *last* entry per key, so a recovered retry supersedes its timeout.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import IO, Dict, Optional, Tuple

from ..approaches import ENGINE_KWARGS
from .metrics import CompilationResult

__all__ = ["cell_key", "RunJournal", "JournalCorruptError", "check_resumable"]

JOURNAL_FILENAME = "journal.jsonl"


class JournalCorruptError(ValueError):
    """A journal holds damage that is *not* a torn final line.

    Mid-file corruption means results that were journaled as durable are
    gone or mangled -- resuming over it would silently re-run (or worse,
    half-lose) finished work.  The journal refuses to open instead; the
    operator decides whether to restore the file or restart the run.
    """


def cell_key(spec) -> str:
    """Deterministic content hash identifying one cell spec (24 hex chars).

    Covers every field that changes what the cell computes -- approach, kind,
    size, options, rename, timeout budget, workload (+params) and the
    verification policy -- mirroring :meth:`ResultCache.key` minus the code
    version (which the journal records once, in its metadata line).  Like
    the cache key, engine-selection options (``ENGINE_KWARGS``, e.g. the
    SABRE routing kernel) are excluded: they are bit-identical by contract,
    so a journal written on a machine with the compiled kernel resumes
    cleanly on one without it.
    """

    payload = json.dumps(
        {
            "approach": spec.approach,
            "kind": spec.kind,
            "size": spec.size,
            "kwargs": sorted(
                (str(k), repr(v))
                for k, v in spec.kwargs
                if str(k) not in ENGINE_KWARGS
            ),
            "rename": spec.rename,
            "timeout_s": spec.timeout_s,
            "workload": spec.workload,
            "workload_params": sorted(
                (str(k), repr(v)) for k, v in spec.workload_params
            ),
            "verify": spec.verify,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def check_resumable(
    journal_meta: Dict[str, object], meta: Dict[str, object]
) -> None:
    """Refuse to resume a journal written by another code version or plan."""

    for field_name, what in (("code", "code version"), ("plan", "plan")):
        want = meta.get(field_name)
        have = journal_meta.get(field_name)
        if want is not None and have != want:
            raise ValueError(
                f"cannot resume: journal was written by a different "
                f"{what} ({have!r} != {want!r}); re-run from scratch "
                "instead of mixing results"
            )


class RunJournal:
    """One run's append-only JSONL journal rooted at a directory.

    Use :meth:`create` to start a fresh journal (refuses to clobber an
    existing one) and :meth:`open` to load one for resumption.  ``append``
    flushes per line and fsyncs every ``fsync_every`` cells (default 1:
    every cell is durable against power loss the moment it lands;
    ``fsync_every=0`` disables fsync entirely for throwaway runs).
    """

    def __init__(
        self,
        root: Path,
        meta: Dict[str, object],
        entries: Dict[str, CompilationResult],
        handle: Optional[IO[str]],
        *,
        fsync_every: int = 1,
    ) -> None:
        self.root = root
        self.meta = meta
        self._entries = entries
        self._handle = handle
        self._fsync_every = max(0, int(fsync_every))
        self._appends_since_sync = 0
        #: bytes of torn tail truncated away by :meth:`open` (0 = clean)
        self.repaired_bytes = 0

    @property
    def path(self) -> Path:
        return self.root / JOURNAL_FILENAME

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: os.PathLike,
        meta: Dict[str, object],
        *,
        fsync_every: int = 1,
    ) -> "RunJournal":
        """Start a fresh journal at ``root`` (raises if one already exists)."""

        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        path = root / JOURNAL_FILENAME
        if path.exists():
            raise FileExistsError(
                f"journal {path} already exists; resume from it (resume=...) "
                "or choose a fresh directory"
            )
        handle = path.open("w", encoding="utf-8")
        handle.write(json.dumps({"type": "meta", **meta}, sort_keys=True) + "\n")
        handle.flush()
        journal = cls(root, dict(meta), {}, handle, fsync_every=fsync_every)
        if journal._fsync_every:
            os.fsync(handle.fileno())
            journal._sync_directory()
        return journal

    def _sync_directory(self) -> None:
        """fsync the journal's directory so the file's *existence* is durable."""

        try:
            dir_fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return  # directory fds unsupported here; file fsync still held
        try:
            os.fsync(dir_fd)
        except OSError:
            pass  # some filesystems refuse directory fsync; best effort
        finally:
            os.close(dir_fd)

    @classmethod
    def open(cls, root: os.PathLike, *, fsync_every: int = 1) -> "RunJournal":
        """Load an existing journal for resumption (appends go to the end).

        Only a *torn final line* -- unterminated, from a run killed
        mid-write -- is tolerated: it is truncated away (so it cannot turn
        into mid-file garbage once the resumed run appends) and everything
        before it is served.  Any other unparseable or malformed line raises
        :class:`JournalCorruptError`: silently skipping it would drop
        results the journal promised were durable.
        """

        root = Path(root)
        path = root / JOURNAL_FILENAME
        if not path.is_file():
            raise FileNotFoundError(f"no journal at {path}")
        raw = path.read_bytes()
        if not raw:
            raise JournalCorruptError(
                f"journal {path} is empty -- nothing durable to resume "
                "from; start a fresh run directory"
            )
        # Journal lines are pure ASCII (json.dumps default); replacement
        # characters from hypothetical binary garbage simply fail the parse
        # below and take the corruption path.
        text = raw.decode("utf-8", errors="replace")
        terminated = text.endswith("\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()  # the split artifact after a terminated final line

        # A record is durable only once its newline landed: an unterminated
        # final line is *always* a torn write -- even when the JSON happens
        # to be complete (the crash hit between the payload and the "\n").
        # Accepting it and then appending would weld the next record onto
        # it, manufacturing mid-file corruption.
        torn = False
        if not terminated and lines:
            lines.pop()
            torn = True

        meta: Dict[str, object] = {}
        entries: Dict[str, CompilationResult] = {}
        for i, line in enumerate(lines):

            def _corrupt(reason: str) -> JournalCorruptError:
                return JournalCorruptError(
                    f"journal {path} line {i + 1} is corrupt ({reason}); "
                    "only a torn, unterminated final line is a normal crash "
                    "artifact -- restore the file or start a fresh run "
                    "directory"
                )

            try:
                record = json.loads(line)
            except ValueError:
                raise _corrupt("unparseable JSON") from None
            if not isinstance(record, dict):
                raise _corrupt("record is not an object")
            if i == 0 and record.get("type") == "meta":
                meta = {k: v for k, v in record.items() if k != "type"}
                continue
            if record.get("type") != "cell":
                continue  # unknown-but-intact record types: forward compat
            try:
                result = CompilationResult.from_dict(record["result"])
                key = record["key"]
            except (KeyError, TypeError, ValueError):
                raise _corrupt("cell record missing/invalid key or result") from None
            entries[str(key)] = result

        repaired = 0
        if torn:
            keep = raw.rfind(b"\n") + 1  # end of the last intact record
            if keep == 0:
                raise JournalCorruptError(
                    f"journal {path} holds only a torn metadata line -- "
                    "nothing durable to resume from; start a fresh run "
                    "directory"
                )
            repaired = len(raw) - keep
            os.truncate(path, keep)

        handle = path.open("a", encoding="utf-8")
        journal = cls(root, meta, entries, handle, fsync_every=fsync_every)
        journal.repaired_bytes = repaired
        if repaired and journal._fsync_every:
            os.fsync(handle.fileno())  # make the repair itself durable
        return journal

    # ------------------------------------------------------------------
    def append(self, key: str, result: CompilationResult) -> None:
        """Journal one finished cell (flushed, and fsynced per the stride)."""

        if self._handle is None:
            raise ValueError("journal is closed")
        record = {"type": "cell", "key": key, "result": result.to_dict()}
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._entries[key] = result
        if self._fsync_every:
            self._appends_since_sync += 1
            if self._appends_since_sync >= self._fsync_every:
                os.fsync(self._handle.fileno())
                self._appends_since_sync = 0

    def results(self) -> Dict[str, CompilationResult]:
        """Journaled results by cell key (last entry wins per key)."""

        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self._fsync_every and self._appends_since_sync:
                os.fsync(self._handle.fileno())  # sync the partial stride
                self._appends_since_sync = 0
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":  # pragma: no cover - convenience
        return self

    def __exit__(self, *exc) -> None:  # pragma: no cover - convenience
        self.close()
