"""Append-only JSONL run journal: streaming results, crash-safe resume.

A *journal* is the durable record of one evaluation run: a directory holding
``journal.jsonl`` whose first line is the run's metadata (code version, plan
fingerprint, experiment/shard identity) and every following line is one
finished cell, written the moment the harness receives it.  Because lines are
appended and flushed per cell, a run killed at any point leaves a journal
whose intact prefix is exactly the set of finished cells -- the
``shard-coordinator`` executor resumes from it by serving journaled cells
without re-running them (a truncated final line from a mid-write crash is
ignored, not fatal).

Cells are identified by :func:`cell_key`, a content hash over every field of
the :class:`~repro.eval.parallel.CellSpec` (including the verification
policy).  The key deliberately excludes the code version: that lives once in
the metadata line, and resuming under a different code version is refused
outright rather than silently mixing results from two algorithms.

A cell may appear more than once (the coordinator re-dispatches straggler
cells and journals the second attempt too); :meth:`RunJournal.results` keeps
the *last* entry per key, so a recovered retry supersedes its timeout.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import IO, Dict, Optional, Tuple

from ..approaches import ENGINE_KWARGS
from .metrics import CompilationResult

__all__ = ["cell_key", "RunJournal"]

JOURNAL_FILENAME = "journal.jsonl"


def cell_key(spec) -> str:
    """Deterministic content hash identifying one cell spec (24 hex chars).

    Covers every field that changes what the cell computes -- approach, kind,
    size, options, rename, timeout budget, workload (+params) and the
    verification policy -- mirroring :meth:`ResultCache.key` minus the code
    version (which the journal records once, in its metadata line).  Like
    the cache key, engine-selection options (``ENGINE_KWARGS``, e.g. the
    SABRE routing kernel) are excluded: they are bit-identical by contract,
    so a journal written on a machine with the compiled kernel resumes
    cleanly on one without it.
    """

    payload = json.dumps(
        {
            "approach": spec.approach,
            "kind": spec.kind,
            "size": spec.size,
            "kwargs": sorted(
                (str(k), repr(v))
                for k, v in spec.kwargs
                if str(k) not in ENGINE_KWARGS
            ),
            "rename": spec.rename,
            "timeout_s": spec.timeout_s,
            "workload": spec.workload,
            "workload_params": sorted(
                (str(k), repr(v)) for k, v in spec.workload_params
            ),
            "verify": spec.verify,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


class RunJournal:
    """One run's append-only JSONL journal rooted at a directory.

    Use :meth:`create` to start a fresh journal (refuses to clobber an
    existing one) and :meth:`open` to load one for resumption.  ``append``
    flushes per line, so the journal is current the moment a cell lands.
    """

    def __init__(
        self,
        root: Path,
        meta: Dict[str, object],
        entries: Dict[str, CompilationResult],
        handle: Optional[IO[str]],
    ) -> None:
        self.root = root
        self.meta = meta
        self._entries = entries
        self._handle = handle

    @property
    def path(self) -> Path:
        return self.root / JOURNAL_FILENAME

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: os.PathLike, meta: Dict[str, object]) -> "RunJournal":
        """Start a fresh journal at ``root`` (raises if one already exists)."""

        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        path = root / JOURNAL_FILENAME
        if path.exists():
            raise FileExistsError(
                f"journal {path} already exists; resume from it (resume=...) "
                "or choose a fresh directory"
            )
        handle = path.open("w", encoding="utf-8")
        handle.write(json.dumps({"type": "meta", **meta}, sort_keys=True) + "\n")
        handle.flush()
        return cls(root, dict(meta), {}, handle)

    @classmethod
    def open(cls, root: os.PathLike) -> "RunJournal":
        """Load an existing journal for resumption (appends go to the end).

        Unparseable lines -- the torn final line of a run killed mid-write --
        are skipped; everything before them is served.
        """

        root = Path(root)
        path = root / JOURNAL_FILENAME
        if not path.is_file():
            raise FileNotFoundError(f"no journal at {path}")
        meta: Dict[str, object] = {}
        entries: Dict[str, CompilationResult] = {}
        raw = path.read_text(encoding="utf-8")
        for i, line in enumerate(raw.splitlines()):
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn write from a crash: ignore the tail
            if i == 0 and record.get("type") == "meta":
                meta = {k: v for k, v in record.items() if k != "type"}
                continue
            if record.get("type") != "cell":
                continue
            try:
                result = CompilationResult.from_dict(record["result"])
            except (KeyError, TypeError, ValueError):
                continue
            entries[record["key"]] = result
        handle = path.open("a", encoding="utf-8")
        if raw and not raw.endswith("\n"):
            # Terminate the torn final line of a crashed run, so the first
            # post-resume append starts a fresh line instead of gluing itself
            # onto the unparseable tail (and being lost with it on reload).
            handle.write("\n")
            handle.flush()
        return cls(root, meta, entries, handle)

    # ------------------------------------------------------------------
    def append(self, key: str, result: CompilationResult) -> None:
        """Journal one finished cell (flushed immediately)."""

        if self._handle is None:
            raise ValueError("journal is closed")
        record = {"type": "cell", "key": key, "result": result.to_dict()}
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._entries[key] = result

    def results(self) -> Dict[str, CompilationResult]:
        """Journaled results by cell key (last entry wins per key)."""

        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":  # pragma: no cover - convenience
        return self

    def __exit__(self, *exc) -> None:  # pragma: no cover - convenience
        self.close()
