"""``python -m repro.eval`` — alias for the experiment CLI.

Equivalent to ``python -m repro.eval.experiments``; see that module for the
available experiments and profiles.  Useful flags::

    -e/--experiment NAME   one of table1, fig17..fig19, fig27, relaxed,
                           partition, linearity, sweep, or "all"
    --profile quick|paper  instance sizes
    --workload NAME        workload for the registry cross-product "sweep"
                           experiment (qft, qaoa, random, or any plugin);
                           implies -e sweep when no experiment is given
    --jobs N               fan evaluation cells out over N worker processes;
                           cells sharing a topology are grouped into chunks
                           so each worker builds the topology, distance
                           matrix and SABRE tables once per topology
    --cache DIR            JSON result cache; warm re-runs only compute
                           cells missing under the current code version
    --cache-merge DIR...   union sharded cache directories into --cache
                           (then exit, unless -e is also given)
"""

import sys

from .experiments import main

if __name__ == "__main__":
    sys.exit(main())
