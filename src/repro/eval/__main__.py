"""``python -m repro.eval`` — thin shell over ``plan()`` / ``execute()``.

Each requested experiment is resolved through the experiment registry
(:mod:`repro.eval.runs`; synonyms work, unknown names suggest corrections),
turned into a typed ``RunPlan`` and dispatched through a registered
executor.  Useful flags::

    -e/--experiment NAME   any registered experiment or synonym (see
                           --list): table1, fig17..fig19, fig27, relaxed,
                           partition, linearity, sweep, or "all"
    --list                 print the experiment registry table and exit
    --profile quick|paper  instance sizes
    --workload NAME        workload for the registry cross-product "sweep"
                           experiment (qft, qaoa, random, or any plugin);
                           implies -e sweep when no experiment is given
    --jobs N               worker processes (topology-grouped fan-out)
    --executor NAME        serial | pool | shard-coordinator | dispatch
                           (defaults: serial; pool when --jobs > 1;
                           shard-coordinator when --journal/--resume is
                           given)
    --shard I/N            run slice I of a deterministic N-way partition
                           of the plan, balanced by topology group; the
                           union of all N slices is the full experiment
    --verify POLICY        full | sample | off — per-cell verification
                           policy (part of the cache key)
    --journal DIR          stream per-cell results to an append-only JSONL
                           run journal (crash-safe, resumable)
    --resume DIR           resume a crashed run from its journal: cells
                           already journaled are served, not re-run;
                           straggler/timeout cells are re-dispatched once
    --cache DIR            JSON result cache; warm re-runs only compute
                           cells missing under the current code version
    --cache-merge DIR...   union sharded cache directories into --cache;
                           entries that disagree under the same key raise
                           instead of silently winning by order
    --serve [HOST:]PORT    run as a work-stealing dispatcher: serve the
                           plan's cells as heartbeat-leased work over
                           HTTP/JSON (implies --executor dispatch; spawns
                           --jobs local workers too, 0 = serve only)
    --join URL             run as a worker: join a dispatcher, compute
                           leased cells until the run completes, then exit
    --worker-id NAME       worker name for --join (default hostname-pid)
    --lease-s S            dispatcher lease duration before a silent
                           worker's cell is stolen back (default 30)
    --heartbeat-s S        worker heartbeat interval (default lease/4)
    --journal-fsync N      fsync the journal every N cells (default 1 =
                           every cell durable; 0 disables fsync)
    --retry-timeout-mult X scale straggler-retry timeouts by X**attempt
                           (default 1.0)

A typical two-machine sweep::

    # machine A                                   # machine B
    python -m repro.eval -e fig19 --profile paper \\
        --shard 0/2 --journal runs/s0 --cache cache-a
                                                  ... --shard 1/2 --journal runs/s1 --cache cache-b
    # afterwards, on one host:
    python -m repro.eval --cache merged --cache-merge cache-a cache-b
    python -m repro.eval -e fig19 --profile paper --cache merged   # all hits

Or, fault-tolerantly, as one dispatcher and N joining workers::

    # machine A (dispatcher + journal + 4 local workers)
    python -m repro.eval -e fig19 --profile paper --serve 0.0.0.0:8765 \\
        --journal runs/fig19 --jobs 4
    # machines B, C, ... (any number, join/leave any time)
    python -m repro.eval --join http://machineA:8765
"""

import sys

from .experiments import main

if __name__ == "__main__":
    sys.exit(main())
