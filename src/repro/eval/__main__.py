"""``python -m repro.eval`` — alias for the experiment CLI.

Equivalent to ``python -m repro.eval.experiments``; see that module for the
available experiments and profiles.
"""

import sys

from .experiments import main

if __name__ == "__main__":
    sys.exit(main())
