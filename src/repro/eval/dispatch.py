"""Fault-tolerant work-stealing dispatcher: leases, heartbeats, one writer.

The shard-coordinator (PR 4) partitions statically: a dead or slow machine
stalls its whole ``shard=(i, n)`` slice.  This module replaces the static
partition with a *dynamic queue*: a dispatcher process serves one
``RunPlan``'s cells over a localhost-bindable HTTP/JSON API to worker
processes that join whenever (and from wherever) they like.

Cells are handed out as **leases** -- a cell spec plus a deadline.  Workers
send heartbeats while computing, each of which pushes the deadline out; a
worker that crashes (no more heartbeats) or hangs (heartbeats frozen) lets
its lease expire, and the dispatcher returns the cell to the queue for the
next ``/lease`` request.  Work stealing falls out of that for free: a fast
worker drains whatever a slow one sheds, and no machine ever gates the run.

Failure model (each mode is injected deliberately by :mod:`repro.eval.chaos`
and covered by tests asserting bit-equal results against a serial run):

========================  ==================================================
failure                   recovery
========================  ==================================================
worker SIGKILL mid-cell   lease expires -> cell reassigned; the executor
                          respawns a replacement worker (bounded budget)
worker hang / frozen      same: missed heartbeats expire the lease; a late
heartbeats                result from the revenant is rejected as stale
network delay / drop      workers retry transient connection errors with
                          capped exponential backoff + deterministic jitter
dispatcher crash          the journal (fsync'd per cell) holds the intact
                          prefix; ``--resume`` serves it without re-running
torn journal tail         truncated away on open; only the torn cell re-runs
cell timeout              the PR-4 retry budget applies, with an optional
                          per-retry timeout multiplier
==============================================================================

The dispatcher is the **single journal writer**: every accepted result is
appended to the PR-4 :class:`~repro.eval.journal.RunJournal` under the same
cell keys, so crash-resume, last-entry-wins retry semantics and the
code-version refusal carry over unchanged.  Results are deterministic per
spec, so a chaos-ridden run's metrics are bit-equal to an uninterrupted
serial run of the same plan -- the property the chaos suite asserts.

Wire protocol (JSON over POST; all endpoints idempotent or stale-safe):

``/join``       ``{worker}`` -> run metadata + heartbeat interval
``/lease``      ``{worker}`` -> ``{lease: {id, index, attempt, spec, ...}}``
                or ``{empty: true, done: bool, retry_after_s}``
``/heartbeat``  ``{worker, lease}`` -> ``{ok: bool, reason?}``
``/result``     ``{worker, lease, result}`` -> ``{accepted: bool, reason?}``
``/status``     (GET) counters, for monitoring and tests
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import multiprocessing
import os
import socket
import threading
import time
import urllib.error
import urllib.request
import zlib
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from . import chaos
from .cache import ResultCache
from .executors import (
    ExecutionOutcome,
    Executor,
    _run_spec,
    register_executor,
    retry_spec,
)
from .journal import RunJournal, cell_key, check_resumable
from .metrics import CompilationResult
from .parallel import CellSpec

__all__ = [
    "DispatchError",
    "DispatchUnreachable",
    "DispatchServer",
    "DispatchClient",
    "run_worker",
    "spec_to_wire",
    "spec_from_wire",
]


class DispatchError(RuntimeError):
    """A non-transient dispatcher protocol failure (worker-side)."""


class DispatchUnreachable(DispatchError):
    """The dispatcher stayed unreachable through the whole backoff budget."""


# ---------------------------------------------------------------------------
# Cell specs on the wire
# ---------------------------------------------------------------------------

_WIRE_SCALARS = ("approach", "kind", "size", "rename", "timeout_s", "workload", "verify")


def spec_to_wire(spec: CellSpec) -> Dict[str, object]:
    """JSON-safe dict for one :class:`CellSpec` (tuples become lists)."""

    wire: Dict[str, object] = {f: getattr(spec, f) for f in _WIRE_SCALARS}
    wire["kwargs"] = [[k, v] for k, v in spec.kwargs]
    wire["workload_params"] = [[k, v] for k, v in spec.workload_params]
    return wire


def spec_from_wire(data: Dict[str, object]) -> CellSpec:
    """Rebuild the exact :class:`CellSpec` a :func:`spec_to_wire` serialized."""

    rename = data["rename"]
    timeout_s = data["timeout_s"]
    return CellSpec(
        approach=str(data["approach"]),
        kind=str(data["kind"]),
        size=int(data["size"]),  # type: ignore[arg-type]
        kwargs=tuple((str(k), v) for k, v in data["kwargs"]),  # type: ignore[union-attr]
        rename=None if rename is None else str(rename),
        timeout_s=None if timeout_s is None else float(timeout_s),  # type: ignore[arg-type]
        workload=str(data["workload"]),
        workload_params=tuple(
            (str(k), v) for k, v in data["workload_params"]  # type: ignore[union-attr]
        ),
        verify=str(data["verify"]),
    )


# ---------------------------------------------------------------------------
# The dispatcher (server side)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _Lease:
    """One outstanding cell assignment: who computes what, until when."""

    lease_id: str
    index: int
    attempt: int
    worker: str
    deadline: float  # monotonic clock
    run_spec: CellSpec  # the spec as dispatched (retry timeouts scaled)


class _Handler(BaseHTTPRequestHandler):
    """Routes the tiny JSON protocol onto the :class:`DispatchServer` core."""

    server_version = "repro-dispatch/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:
        pass  # the dispatcher reports through RunReport, not stderr noise

    def _chaos_gate(self) -> bool:
        """Apply injected response faults; True means drop (no reply)."""

        cfg = chaos.active()
        if not cfg:
            return False
        if cfg.fires("drop-response", path=self.path):
            # Close without replying, *before* processing: the client sees a
            # torn connection and must retry; the retry then succeeds.
            self.close_connection = True
            return True
        delay = cfg.fires("delay-response", path=self.path)
        if delay is not None:
            time.sleep(float(delay.get("s", 0.1)))
        return False

    def _reply(self, payload: Dict[str, object], status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self._chaos_gate():
            return
        core: DispatchServer = self.server.dispatch  # type: ignore[attr-defined]
        length = int(self.headers.get("Content-Length") or 0)
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except ValueError:
            self._reply({"error": "unparseable JSON body"}, status=400)
            return
        worker = str(payload.get("worker", "?"))
        if self.path == "/join":
            self._reply(core.join_worker(worker))
        elif self.path == "/lease":
            self._reply(core.lease(worker))
        elif self.path == "/heartbeat":
            self._reply(core.heartbeat(worker, str(payload.get("lease", ""))))
        elif self.path == "/result":
            self._reply(
                core.submit(
                    worker, str(payload.get("lease", "")), payload.get("result")
                )
            )
        else:
            self._reply({"error": f"unknown endpoint {self.path}"}, status=404)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self._chaos_gate():
            return
        core: DispatchServer = self.server.dispatch  # type: ignore[attr-defined]
        if self.path == "/status":
            self._reply(core.status())
        else:
            self._reply({"error": f"unknown endpoint {self.path}"}, status=404)


class DispatchServer:
    """One run's lease queue, heartbeat ledger, and (single) journal writer.

    The server owns every piece of shared state -- pending queue, active
    leases, results, journal handle -- behind one lock; HTTP handler threads
    and the executor's supervision loop only ever touch it through the
    methods below, so the dispatcher process is the linearization point for
    the whole fleet.
    """

    def __init__(
        self,
        specs: Sequence[CellSpec],
        *,
        keys: Optional[Sequence[str]] = None,
        skip: Optional[Dict[int, CompilationResult]] = None,
        resumed_retry_attempts: Optional[Dict[int, int]] = None,
        journal: Optional[RunJournal] = None,
        cache: Optional[ResultCache] = None,
        lease_s: float = 30.0,
        heartbeat_s: Optional[float] = None,
        retry_timeouts: int = 1,
        retry_timeout_multiplier: float = 1.0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        self._specs = list(specs)
        self._keys = list(keys) if keys is not None else [cell_key(s) for s in specs]
        if len(self._keys) != len(self._specs):
            raise ValueError("keys and specs must have the same length")
        self._journal = journal
        self._cache = cache
        self.lease_s = float(lease_s)
        self.heartbeat_s = float(heartbeat_s) if heartbeat_s else self.lease_s / 4.0
        self._retry_timeouts = int(retry_timeouts)
        self._retry_mult = float(retry_timeout_multiplier)

        self._lock = threading.Lock()
        self._results: Dict[int, CompilationResult] = dict(skip or {})
        self._attempts_used: Dict[int, int] = {}
        self._pending: Deque[Tuple[int, int]] = deque()
        self._active: Dict[str, _Lease] = {}
        self._inflight: Set[int] = set()
        self._lease_seq = 0
        self._workers: Set[str] = set()
        self._dead_workers: Set[str] = set()
        self.reassigned = 0
        self.retried = 0
        self.recovered = 0
        self.stale_results = 0

        for i in range(len(self._specs)):
            if i not in self._results:
                self._pending.append((i, 0))
                self._inflight.add(i)
        # Resumed timeout cells that still have retry budget owe the run
        # their re-dispatch (same contract as the shard-coordinator: a crash
        # between a timeout and its retry must not make the timeout final).
        for i, used in sorted((resumed_retry_attempts or {}).items()):
            if i in self._results and used < self._retry_timeouts:
                self._pending.append((i, used + 1))
                self._inflight.add(i)
                self.retried += 1

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.dispatch = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "DispatchServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-dispatch-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "DispatchServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- protocol core (each method takes the lock once) ----------------
    def join_worker(self, worker: str) -> Dict[str, object]:
        with self._lock:
            self._workers.add(worker)
            return {
                "ok": True,
                "cells": len(self._specs),
                "heartbeat_s": self.heartbeat_s,
                "lease_s": self.lease_s,
            }

    def lease(self, worker: str) -> Dict[str, object]:
        now = time.monotonic()
        with self._lock:
            self._workers.add(worker)
            self._reap_locked(now)
            self._queue_retries_locked()
            if not self._pending:
                return {
                    "empty": True,
                    "done": self._done_locked(),
                    "retry_after_s": min(0.05, self.heartbeat_s),
                }
            index, attempt = self._pending.popleft()
            self._lease_seq += 1
            lease_id = f"L{self._lease_seq}"
            run = retry_spec(self._specs[index], attempt, self._retry_mult)
            self._active[lease_id] = _Lease(
                lease_id, index, attempt, worker, now + self.lease_s, run
            )
            return {
                "lease": {
                    "id": lease_id,
                    "index": index,
                    "attempt": attempt,
                    "lease_s": self.lease_s,
                    "heartbeat_s": self.heartbeat_s,
                    "spec": spec_to_wire(run),
                }
            }

    def heartbeat(self, worker: str, lease_id: str) -> Dict[str, object]:
        now = time.monotonic()
        with self._lock:
            lease = self._active.get(lease_id)
            if lease is None or lease.worker != worker:
                # Expired-and-reassigned, finished elsewhere, or plain bogus:
                # either way this worker no longer owns the cell.
                return {"ok": False, "reason": "stale-lease"}
            lease.deadline = now + self.lease_s
            return {"ok": True}

    def submit(
        self, worker: str, lease_id: str, result_data: object
    ) -> Dict[str, object]:
        if not isinstance(result_data, dict):
            return {"accepted": False, "reason": "malformed-result"}
        try:
            result = CompilationResult.from_dict(result_data)
        except (KeyError, TypeError, ValueError) as exc:
            return {"accepted": False, "reason": f"malformed-result: {exc}"}
        with self._lock:
            lease = self._active.pop(lease_id, None)
            if lease is None or lease.worker != worker:
                # The lease expired and was handed to someone else (or
                # already completed).  Deterministic cells make either copy
                # correct, but accounting stays exact by keeping the first
                # accepted result and discarding the revenant's.
                self.stale_results += 1
                return {"accepted": False, "reason": "stale-lease"}
            index, attempt = lease.index, lease.attempt
            self._inflight.discard(index)
            if attempt > 0:
                result.extra = dict(result.extra or {})
                result.extra["retries"] = attempt
                if result.status != "timeout":
                    self.recovered += 1
            self._results[index] = result
            self._attempts_used[index] = max(
                attempt, self._attempts_used.get(index, 0)
            )
            if self._journal is not None:
                self._journal.append(self._keys[index], result)
            if self._cache is not None and result.status not in (
                "timeout",
                "unsupported",
            ):
                # Cache under the spec that actually ran (scaled timeout on
                # retries), without the journal-only ``retries`` marker --
                # mirroring what run_specs stores for the coordinator.
                spec = lease.run_spec
                stored = CompilationResult.from_dict(result.to_dict())
                stored.extra.pop("retries", None)
                self._cache.put(
                    self._cache.key(
                        spec.approach,
                        spec.kind,
                        spec.size,
                        spec.kwargs,
                        spec.rename,
                        spec.timeout_s,
                        spec.workload,
                        spec.workload_params,
                        verify=spec.verify,
                    ),
                    stored,
                )
            return {"accepted": True, "done": self._done_locked()}

    def status(self) -> Dict[str, object]:
        with self._lock:
            return {
                "cells": len(self._specs),
                "completed": len(self._results),
                "pending": len(self._pending),
                "active": len(self._active),
                "workers": sorted(self._workers),
                "dead_workers": sorted(self._dead_workers),
                "reassigned": self.reassigned,
                "retried": self.retried,
                "recovered": self.recovered,
                "stale_results": self.stale_results,
                "done": self._done_locked(),
            }

    # -- supervision (executor-side calls) ------------------------------
    def reap(self) -> int:
        """Expire overdue leases (returns how many were reassigned now)."""

        now = time.monotonic()
        with self._lock:
            before = self.reassigned
            self._reap_locked(now)
            self._queue_retries_locked()
            return self.reassigned - before

    def done(self) -> bool:
        with self._lock:
            self._queue_retries_locked()
            return self._done_locked()

    @property
    def dead_worker_count(self) -> int:
        with self._lock:
            return len(self._dead_workers)

    def results_in_order(self) -> List[CompilationResult]:
        with self._lock:
            missing = [i for i in range(len(self._specs)) if i not in self._results]
            if missing:
                raise RuntimeError(
                    f"dispatch run incomplete: cells {missing} never finished"
                )
            return [self._results[i] for i in range(len(self._specs))]

    # -- internals (call with the lock held) -----------------------------
    def _reap_locked(self, now: float) -> None:
        for lease_id in [
            lid for lid, lease in self._active.items() if lease.deadline <= now
        ]:
            lease = self._active.pop(lease_id)
            self._pending.append((lease.index, lease.attempt))
            self.reassigned += 1
            self._dead_workers.add(lease.worker)

    def _queue_retries_locked(self) -> None:
        # Straggler pass, queue-shaped: once nothing is pending or active,
        # timeout cells whose budget is not exhausted go back in the queue
        # with a bumped attempt (and, via retry_spec, a scaled budget).
        if self._pending or self._active:
            return
        for i in range(len(self._specs)):
            result = self._results.get(i)
            if result is None or result.status != "timeout" or i in self._inflight:
                continue
            used = max(
                self._attempts_used.get(i, 0),
                int((result.extra or {}).get("retries", 0) or 0),
            )
            if used < self._retry_timeouts:
                self._pending.append((i, used + 1))
                self._inflight.add(i)
                self.retried += 1

    def _done_locked(self) -> bool:
        return (
            not self._pending
            and not self._active
            and len(self._results) == len(self._specs)
        )


# ---------------------------------------------------------------------------
# The worker (client side)
# ---------------------------------------------------------------------------

#: exception types treated as transient connection trouble (retried with
#: backoff); HTTP *status* errors are protocol bugs and are not retried.
_TRANSIENT_ERRORS = (
    urllib.error.URLError,
    http.client.HTTPException,
    ConnectionError,
    TimeoutError,
    socket.timeout,
)


class DispatchClient:
    """Tiny JSON-over-POST client with capped exponential backoff + jitter.

    Transient connection failures (dispatcher restarting, dropped response,
    network hiccup) are retried up to ``max_tries`` times with delays
    ``backoff_base_s * 2**n`` capped at ``backoff_cap_s``, each scaled by a
    deterministic jitter drawn from a per-worker seeded RNG -- a thousand
    workers recovering from one dispatcher blip must not stampede it in
    lockstep, and a re-run must still behave identically.
    """

    def __init__(
        self,
        url: str,
        worker: str,
        *,
        timeout_s: float = 10.0,
        max_tries: int = 8,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
    ) -> None:
        import random  # seeded instance only; never the global generator

        self.url = url.rstrip("/")
        self.worker = worker
        self._timeout_s = timeout_s
        self._max_tries = max(1, int(max_tries))
        self._base = backoff_base_s
        self._cap = backoff_cap_s
        self._rng = random.Random(zlib.crc32(worker.encode()))
        self.retries = 0  # transient errors survived (for tests/monitoring)

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based): capped doubling + jitter."""

        raw = min(self._cap, self._base * (2 ** (attempt - 1)))
        return raw * (0.5 + 0.5 * self._rng.random())

    def post(self, path: str, payload: Dict[str, object]) -> Dict[str, object]:
        body = json.dumps(payload).encode()
        last_error: Optional[Exception] = None
        for attempt in range(self._max_tries):
            if attempt:
                time.sleep(self.backoff_s(attempt))
            try:
                request = urllib.request.Request(
                    self.url + path,
                    data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(
                    request, timeout=self._timeout_s
                ) as response:
                    return json.loads(response.read().decode())
            except urllib.error.HTTPError as exc:
                # A *status* error means the dispatcher answered: retrying
                # the same bad request cannot help.
                raise DispatchError(
                    f"dispatcher rejected {path}: HTTP {exc.code} {exc.reason}"
                ) from exc
            except _TRANSIENT_ERRORS as exc:
                last_error = exc
                self.retries += 1
        raise DispatchUnreachable(
            f"dispatcher at {self.url} unreachable after {self._max_tries} "
            f"tries to {path}: {last_error!r}"
        )


def _heartbeat_loop(
    client: DispatchClient,
    lease_id: str,
    interval_s: float,
    stop: threading.Event,
    frozen: Callable[[], bool],
) -> None:
    """Background beats for one lease until ``stop`` is set.

    A frozen worker (chaos: ``freeze-heartbeat``) keeps computing but stops
    beating -- exactly the "hung but alive" failure the dispatcher must
    steal work back from.  Heartbeat delivery failures are deliberately
    non-fatal: the compute thread owns the cell; worst case the lease
    expires and the eventual submit is rejected as stale.
    """

    while not stop.wait(interval_s):
        if frozen():
            continue
        try:
            reply = client.post("/heartbeat", {"worker": client.worker, "lease": lease_id})
        except DispatchError:
            continue  # transient outage or protocol trouble: keep computing
        if not reply.get("ok"):
            return  # lease is gone; beating harder will not bring it back


def run_worker(
    url: str,
    *,
    worker_id: Optional[str] = None,
    heartbeat_s: Optional[float] = None,
    max_cells: Optional[int] = None,
) -> Dict[str, int]:
    """Join a dispatcher and compute leased cells until the run completes.

    This is the whole worker: lease, heartbeat while computing, submit,
    repeat.  Transient dispatcher trouble is retried with backoff by the
    client; a cell whose compute raises is reported as a typed ``error``
    result (a systematically-crashing cell must not crash-loop the fleet).
    Returns counters: cells computed, stale results discarded, leases seen.
    """

    worker = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    client = DispatchClient(url, worker)
    cfg = chaos.active()
    hello = client.post("/join", {"worker": worker})
    beat_s = heartbeat_s if heartbeat_s else float(hello.get("heartbeat_s", 1.0))

    computed = stale = leased = 0
    frozen = False
    while True:
        reply = client.post("/lease", {"worker": worker})
        lease = reply.get("lease")
        if not isinstance(lease, dict):
            if reply.get("done"):
                break
            time.sleep(float(reply.get("retry_after_s", 0.05)))
            continue
        ordinal = leased
        leased += 1
        spec = spec_from_wire(lease["spec"])  # type: ignore[arg-type]
        lease_id = str(lease["id"])

        if cfg.fires("kill-worker", worker=worker, cell=ordinal):
            chaos.kill_self()  # pragma: no cover - the process dies here
        if cfg.fires("freeze-heartbeat", worker=worker, cell=ordinal):
            frozen = True

        stop = threading.Event()
        beater = threading.Thread(
            target=_heartbeat_loop,
            args=(client, lease_id, beat_s, stop, lambda: frozen),
            name=f"heartbeat-{worker}",
            daemon=True,
        )
        beater.start()
        try:
            stall = cfg.fires("stall", worker=worker, cell=ordinal)
            if stall is not None:
                time.sleep(float(stall.get("s", 0.5)))
            try:
                result = _run_spec(spec)
            except Exception as exc:
                # A raising cell is a harness bug, but crash-looping every
                # worker on it would take the whole run down; surface it as
                # a typed error row instead.
                result = CompilationResult(
                    approach=spec.rename or spec.approach,
                    architecture=f"{spec.kind} {spec.size}",
                    num_qubits=0,
                    status="error",
                    message=f"worker exception: {exc}",
                    workload=spec.workload,
                )
        finally:
            stop.set()
        beater.join(timeout=5.0)

        reply = client.post(
            "/result",
            {"worker": worker, "lease": lease_id, "result": result.to_dict()},
        )
        if reply.get("accepted"):
            computed += 1
        else:
            stale += 1
        if max_cells is not None and leased >= max_cells:
            break
    return {"cells": computed, "stale": stale, "leased": leased}


def _worker_process_entry(
    url: str, worker_id: str, heartbeat_s: Optional[float]
) -> None:
    """Entry point for executor-spawned worker processes."""

    chaos.reload()  # fresh fire counters; a fork must not inherit the parent's
    run_worker(url, worker_id=worker_id, heartbeat_s=heartbeat_s)


# ---------------------------------------------------------------------------
# The executor: server + supervised local worker fleet
# ---------------------------------------------------------------------------


class _WorkerFleet:
    """Spawns, watches, and (bounded) respawns local worker processes."""

    def __init__(
        self,
        url: str,
        count: int,
        *,
        heartbeat_s: Optional[float],
        max_respawns: int,
    ) -> None:
        self._url = url
        self._heartbeat_s = heartbeat_s
        self._mp = multiprocessing.get_context()
        self._procs: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._next_id = 0
        self._respawns_left = max_respawns
        self.crashed = 0
        for _ in range(count):
            self._spawn_one()

    def _spawn_one(self) -> None:
        worker_id = f"w{self._next_id}"
        self._next_id += 1
        proc = self._mp.Process(
            target=_worker_process_entry,
            args=(self._url, worker_id, self._heartbeat_s),
            name=f"repro-dispatch-{worker_id}",
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc

    def supervise(self, *, run_done: bool) -> None:
        """Reap exited workers; respawn crashed ones while work remains."""

        for worker_id, proc in list(self._procs.items()):
            if proc.is_alive():
                continue
            del self._procs[worker_id]
            if proc.exitcode != 0:
                self.crashed += 1
                if not run_done:
                    if self._respawns_left <= 0:
                        raise RuntimeError(
                            f"dispatch worker {worker_id} crashed "
                            f"(exit {proc.exitcode}) and the respawn budget "
                            "is exhausted; aborting instead of hanging"
                        )
                    self._respawns_left -= 1
                    self._spawn_one()

    @property
    def live(self) -> int:
        return sum(1 for p in self._procs.values() if p.is_alive())

    def drain(self, timeout_s: float = 30.0) -> None:
        """Wait for clean exits; terminate anything still wedged."""

        deadline = time.monotonic() + timeout_s
        for proc in self._procs.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._procs.clear()


@register_executor("dispatch", synonyms=("dispatcher", "work-stealing"))
class DispatchExecutor(Executor):
    """Fault-tolerant work-stealing execution over a lease queue.

    Runs the :class:`DispatchServer` in-process (HTTP on localhost by
    default) and spawns ``ctx.jobs`` local worker processes that join it;
    external workers may join the same queue with
    ``python -m repro.eval --join URL``.  Leases expire on missed
    heartbeats, expired cells are reassigned, crashed local workers are
    respawned under a bounded budget, and the dispatcher is the single
    journal writer -- so ``--journal``/``--resume`` behave exactly as under
    the shard-coordinator, with two extra accounting columns
    (``reassigned``, ``dead_workers``) in the report.

    ``ctx.dispatch_opts`` (all optional): ``host``/``port`` (default
    localhost, ephemeral), ``lease_s`` (default 30), ``heartbeat_s``
    (default ``lease_s/4``), ``spawn_workers`` (default ``ctx.jobs``; 0 =
    serve only, wait for external workers), ``on_start`` (callable invoked
    with the bound URL), ``max_respawns`` (default ``2 * workers``).
    """

    def run(self, specs, ctx):
        opts = dict(ctx.dispatch_opts or {})
        lease_s = float(opts.get("lease_s", 30.0))
        heartbeat_s = opts.get("heartbeat_s")
        heartbeat_s = float(heartbeat_s) if heartbeat_s else None
        spawn = opts.get("spawn_workers")
        spawn = ctx.jobs if spawn is None else int(spawn)
        on_start = opts.get("on_start")

        journal: Optional[RunJournal] = None
        resumed: Dict[str, CompilationResult] = {}
        if ctx.resume_dir:
            journal = RunJournal.open(
                ctx.resume_dir, fsync_every=ctx.journal_fsync_every
            )
            check_resumable(journal.meta, ctx.meta)
            resumed = journal.results()
        elif ctx.journal_dir:
            journal = RunJournal.create(
                ctx.journal_dir, ctx.meta, fsync_every=ctx.journal_fsync_every
            )

        # Optional SQLite store sink: the dispatcher stays the single
        # journal writer; teeing its appends records the same stream as
        # run history without touching the server's write path.
        recorder = None
        sink = journal
        if ctx.store_path:
            from ..store import ExperimentStore, JournalTee, RunRecorder

            recorder = RunRecorder(
                ExperimentStore(ctx.store_path),
                ctx.meta,
                executor="dispatch",
                jobs=ctx.jobs,
            )
            sink = JournalTee(journal, recorder)

        keys = [cell_key(spec) for spec in specs]
        skip: Dict[int, CompilationResult] = {}
        resumed_retry_attempts: Dict[int, int] = {}
        for i, key in enumerate(keys):
            if key in resumed:
                skip[i] = resumed[key]
                if resumed[key].status == "timeout":
                    resumed_retry_attempts[i] = int(
                        (resumed[key].extra or {}).get("retries", 0) or 0
                    )

        # Cache hits are resolved dispatcher-side before anything is queued
        # (and journaled, matching the coordinator's on_result streaming);
        # workers only ever see true misses.
        if ctx.cache is not None:
            for i, spec in enumerate(specs):
                if i in skip:
                    continue
                hit = ctx.cache.get(
                    ctx.cache.key(
                        spec.approach,
                        spec.kind,
                        spec.size,
                        spec.kwargs,
                        spec.rename,
                        spec.timeout_s,
                        spec.workload,
                        spec.workload_params,
                        verify=spec.verify,
                    )
                )
                if hit is not None:
                    skip[i] = hit
                    if sink is not None:
                        sink.append(keys[i], hit)

        resumed_count = len(skip) - sum(
            1 for i in skip if keys[i] not in resumed
        )

        server = DispatchServer(
            specs,
            keys=keys,
            skip=skip,
            resumed_retry_attempts=resumed_retry_attempts,
            journal=sink,
            cache=ctx.cache,
            lease_s=lease_s,
            heartbeat_s=heartbeat_s,
            retry_timeouts=ctx.retry_timeouts,
            retry_timeout_multiplier=ctx.retry_timeout_multiplier,
            host=str(opts.get("host", "127.0.0.1")),
            port=int(opts.get("port", 0)),
        )
        server.start()
        fleet: Optional[_WorkerFleet] = None
        try:
            if callable(on_start):
                on_start(server.url)
            if spawn > 0:
                fleet = _WorkerFleet(
                    server.url,
                    spawn,
                    heartbeat_s=heartbeat_s,
                    max_respawns=int(opts.get("max_respawns", 2 * spawn)),
                )
            while not server.done():
                server.reap()
                if fleet is not None:
                    fleet.supervise(run_done=False)
                time.sleep(0.02)
            if fleet is not None:
                fleet.supervise(run_done=True)
                fleet.drain()
        finally:
            if fleet is not None:
                fleet.drain(timeout_s=5.0)
            server.stop()
            if journal is not None:
                journal.close()
            if recorder is not None:
                recorder.finish()

        return ExecutionOutcome(
            server.results_in_order(),
            resumed=resumed_count,
            retried=server.retried,
            recovered=server.recovered,
            reassigned=server.reassigned,
            dead_workers=server.dead_worker_count,
            journal_path=str(journal.path) if journal is not None else None,
        )
