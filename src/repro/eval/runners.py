"""Workload generation and single-cell runners for the evaluation harness.

Architectures are addressed the way the paper's Table 1 does:

* ``sycamore`` with parameter ``m``        -> ``m x m`` patch, ``N = m^2``,
* ``heavyhex`` with parameter ``groups``   -> ``5 * groups`` qubits
  (four per group on the main line, one dangling),
* ``lattice`` with parameter ``m``         -> ``m x m`` FT grid, ``N = m^2``,
* ``grid`` with parameter ``m``            -> ``m x m`` uniform-latency grid,
* ``lnn`` with parameter ``n``             -> a line of ``n`` qubits.

Approaches:

* ``ours``   -- the domain-specific mapper for the architecture (Sections 4-6),
* ``sabre``  -- the SABRE re-implementation,
* ``satmap`` -- the exact-with-timeout SATMAP stand-in,
* ``lnn``    -- LNN along a Hamiltonian path (grid-like architectures only),
* ``greedy`` -- naive shortest-path router (sanity baseline, not in the paper).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional

from ..arch import (
    CaterpillarTopology,
    GridTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
    Topology,
)
from ..baselines import LNNPathMapper, SabreMapper, SatmapMapper, SatmapTimeout
from ..core import GreedyRouterMapper, compile_qft
from ..verify import check_mapped_qft_structure
from .metrics import CompilationResult, result_from_mapped

__all__ = ["make_architecture", "run_cell", "architecture_label", "APPROACHES"]

APPROACHES = ("ours", "sabre", "satmap", "lnn", "greedy")


# Single source of truth per architecture kind: (constructor, paper-style
# label template).  Synonyms share one entry so factory and label can't drift.
_SYCAMORE = (lambda size: SycamoreTopology(size), "{size}*{size} Sycamore")
_HEAVYHEX = (lambda size: CaterpillarTopology.regular_groups(size), "Heavy-hex {size}*5")
_LATTICE = (lambda size: LatticeSurgeryTopology(size), "Lattice surgery {size}*{size}")
_ARCHITECTURES = {
    "sycamore": _SYCAMORE,
    "heavyhex": _HEAVYHEX,
    "heavy-hex": _HEAVYHEX,
    "caterpillar": _HEAVYHEX,
    "lattice": _LATTICE,
    "lattice-surgery": _LATTICE,
    "ft": _LATTICE,
    "grid": (lambda size: GridTopology(size, size), "Grid {size}*{size}"),
    "lnn": (lambda size: LNNTopology(size), "{kind} {size}"),
    "line": (lambda size: LNNTopology(size), "{kind} {size}"),
}


def _architecture_factory(kind: str):
    try:
        return _ARCHITECTURES[kind.lower()][0]
    except KeyError:
        raise ValueError(f"unknown architecture kind {kind!r}") from None


def make_architecture(kind: str, size: int) -> Topology:
    """Instantiate an architecture by kind and its paper-style size parameter."""

    return _architecture_factory(kind)(size)


def architecture_label(kind: str, size: int) -> str:
    kind = kind.lower()
    entry = _ARCHITECTURES.get(kind)
    template = entry[1] if entry is not None else "{kind} {size}"
    return template.format(kind=kind, size=size)


# Options each approach accepts; anything else is a caller typo (e.g. `sede=3`
# for `seed=3`) that would otherwise run with defaults, get reported as the
# intended cell, and be persisted under the misspelled cache key.
_APPROACH_KWARGS = {
    "ours": {"strict_ie"},
    "our": {"strict_ie"},
    "our-approach": {"strict_ie"},
    "sabre": {"seed", "passes"},
    "satmap": {"timeout_s"},
    "lnn": set(),
    "greedy": set(),
}


def _mapper_factory(approach: str, topology: Topology, **kwargs) -> Callable[[], object]:
    approach = approach.lower()
    allowed = _APPROACH_KWARGS.get(approach)
    if allowed is not None:
        unknown = set(kwargs) - allowed
        if unknown:
            raise ValueError(
                f"unknown option(s) for approach {approach!r}: {sorted(unknown)}"
                f" (accepted: {sorted(allowed) or 'none'})"
            )
    if approach in ("ours", "our", "our-approach"):
        return lambda: compile_qft(topology, strict_ie=kwargs.get("strict_ie", False))
    if approach == "sabre":
        mapper = SabreMapper(
            topology,
            seed=kwargs.get("seed", 0),
            passes=kwargs.get("passes", 3),
        )
        return mapper.map_qft
    if approach == "satmap":
        mapper = SatmapMapper(topology, timeout_s=kwargs.get("timeout_s", 60.0))
        return mapper.map_qft
    if approach == "lnn":
        mapper = LNNPathMapper(topology)
        return mapper.map_qft
    if approach == "greedy":
        mapper = GreedyRouterMapper(topology)
        return mapper.map_qft
    raise ValueError(f"unknown approach {approach!r}")


def run_cell(
    approach: str,
    kind: str,
    size: int,
    *,
    verify: bool = True,
    max_qubits: Optional[int] = None,
    **kwargs,
) -> CompilationResult:
    """Compile QFT with one approach on one architecture instance.

    ``max_qubits`` marks the cell as "skipped" (instead of running for hours)
    when the instance exceeds the harness cap for that approach -- this is how
    the benchmark suite keeps pure-Python SABRE runs bounded while still
    reporting the full sweep for the analytical approach.

    Architecture construction errors (e.g. an odd Sycamore patch size) are
    reported as a ``status == "error"`` result rather than raised, so one bad
    cell cannot kill a whole sweep.  An unknown *approach* or *kind* still
    raises -- those are caller bugs, not per-cell failures.
    """

    label = architecture_label(kind, size)
    factory = _architecture_factory(kind)  # unknown kind: caller bug, raises
    try:
        topology = factory(size)
    except ValueError as exc:
        return CompilationResult(
            approach=approach,
            architecture=label,
            num_qubits=0,
            status="error",
            message=str(exc),
        )
    n = topology.num_qubits
    if max_qubits is not None and n > max_qubits:
        return CompilationResult(
            approach=approach, architecture=label, num_qubits=n, status="skipped"
        )

    factory = _mapper_factory(approach, topology, **kwargs)
    start = time.perf_counter()
    try:
        mapped = factory()
    except SatmapTimeout:
        elapsed = time.perf_counter() - start
        return CompilationResult(
            approach=approach,
            architecture=label,
            num_qubits=n,
            status="timeout",
            compile_time_s=elapsed,
        )
    elapsed = time.perf_counter() - start

    verified: Optional[bool] = None
    if verify:
        verified = check_mapped_qft_structure(mapped, n).ok
    result = result_from_mapped(approach, label, mapped, elapsed, verified)
    return result
