"""Workload generation and single-cell runners for the evaluation harness.

Architectures are addressed the way the paper's Table 1 does:

* ``sycamore`` with parameter ``m``        -> ``m x m`` patch, ``N = m^2``,
* ``heavyhex`` with parameter ``groups``   -> ``5 * groups`` qubits
  (four per group on the main line, one dangling),
* ``lattice`` with parameter ``m``         -> ``m x m`` FT grid, ``N = m^2``,
* ``grid`` with parameter ``m``            -> ``m x m`` uniform-latency grid,
* ``lnn`` with parameter ``n``             -> a line of ``n`` qubits.

Approaches:

* ``ours``   -- the domain-specific mapper for the architecture (Sections 4-6),
* ``sabre``  -- the SABRE re-implementation,
* ``satmap`` -- the exact-with-timeout SATMAP stand-in,
* ``lnn``    -- LNN along a Hamiltonian path (grid-like architectures only),
* ``greedy`` -- naive shortest-path router (sanity baseline, not in the paper).
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..arch import (
    CaterpillarTopology,
    GridTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
    Topology,
)
from ..baselines import LNNPathMapper, SabreMapper, SatmapMapper, SatmapTimeout
from ..baselines.sabre import sabre_tables_for
from ..core import GreedyRouterMapper, compile_qft
from ..utils import BoundedCache
from ..verify import check_mapped_qft_structure
from .metrics import CompilationResult, result_from_mapped

__all__ = [
    "make_architecture",
    "run_cell",
    "architecture_label",
    "architecture_key",
    "cached_topology",
    "prepare_topology",
    "cell_budget",
    "CellBudgetExceeded",
    "APPROACHES",
]

APPROACHES = ("ours", "sabre", "satmap", "lnn", "greedy")


# Single source of truth per architecture kind: (canonical name, constructor,
# paper-style label template).  Synonyms share one entry so factory, label and
# the grouping key can't drift.
_SYCAMORE = ("sycamore", lambda size: SycamoreTopology(size), "{size}*{size} Sycamore")
_HEAVYHEX = (
    "heavyhex",
    lambda size: CaterpillarTopology.regular_groups(size),
    "Heavy-hex {size}*5",
)
_LATTICE = (
    "lattice",
    lambda size: LatticeSurgeryTopology(size),
    "Lattice surgery {size}*{size}",
)
_LNN = ("lnn", lambda size: LNNTopology(size), "{kind} {size}")
_ARCHITECTURES = {
    "sycamore": _SYCAMORE,
    "heavyhex": _HEAVYHEX,
    "heavy-hex": _HEAVYHEX,
    "caterpillar": _HEAVYHEX,
    "lattice": _LATTICE,
    "lattice-surgery": _LATTICE,
    "ft": _LATTICE,
    "grid": ("grid", lambda size: GridTopology(size, size), "Grid {size}*{size}"),
    "lnn": _LNN,
    "line": _LNN,
}


def _architecture_factory(kind: str):
    try:
        return _ARCHITECTURES[kind.lower()][1]
    except KeyError:
        raise ValueError(f"unknown architecture kind {kind!r}") from None


def architecture_key(kind: str, size: int) -> Tuple[str, int]:
    """Stable identity of the architecture instance ``(canonical kind, size)``.

    Synonymous kind spellings (``heavyhex`` / ``heavy-hex`` / ``caterpillar``,
    ...) map to the same key, so the parallel harness can group cells that
    share a topology and build it once per worker.  Unknown kinds get their
    lower-cased spelling as the canonical name (the factory raises later,
    per-cell).
    """

    kind = kind.lower()
    entry = _ARCHITECTURES.get(kind)
    return (entry[0] if entry is not None else kind, size)


def make_architecture(kind: str, size: int) -> Topology:
    """Instantiate an architecture by kind and its paper-style size parameter."""

    return _architecture_factory(kind)(size)


def architecture_label(kind: str, size: int) -> str:
    kind = kind.lower()
    entry = _ARCHITECTURES.get(kind)
    template = entry[2] if entry is not None else "{kind} {size}"
    return template.format(kind=kind, size=size)


# Process-local topology memo, keyed by `architecture_key`.  Evaluation sweeps
# run many cells against the same coupling graph (seed sweeps in particular);
# sharing the instance means the topology object, its distance matrix and the
# SABRE routing tables are built once per (process, topology) instead of once
# per cell.  Topology instances are immutable by convention (nothing in the
# mapper stack writes to them), which is what makes the sharing safe.  LRU
# bounded for the same reason as the distance-matrix cache.
_TOPO_MEMO: BoundedCache = BoundedCache(8)


def cached_topology(kind: str, size: int) -> Optional[Topology]:
    """Shared topology instance for ``(kind, size)``, or None if construction
    fails (the caller's `run_cell` re-runs construction to produce the
    per-cell error result)."""

    key = architecture_key(kind, size)
    topo = _TOPO_MEMO.lookup(key)
    if topo is not None:
        return topo
    try:
        topo = _architecture_factory(kind)(size)
    except ValueError:
        return None
    return _TOPO_MEMO.store(key, topo)


def prepare_topology(kind: str, size: int) -> Optional[Topology]:
    """Build + fully warm the shared topology for ``(kind, size)``.

    Beyond :func:`cached_topology`, this precomputes the all-pairs distance
    matrix and the SABRE routing tables, so forked pool workers inherit them
    copy-on-write and never redo the work.  Returns None when the architecture
    cannot be constructed (the per-cell run reports that as an error result).
    """

    topo = cached_topology(kind, size)
    if topo is not None:
        topo.distance_matrix()
        sabre_tables_for(topo)
    return topo


class CellBudgetExceeded(Exception):
    """Raised inside a cell whose harness-level time budget ran out."""


@contextmanager
def cell_budget(seconds: Optional[float]):
    """Enforce a wall-clock budget on the enclosed block via ``SIGALRM``.

    Yields True when the budget is armed.  Yields False -- and enforces
    nothing -- when no budget was requested or the platform cannot deliver
    SIGALRM here (non-main thread, non-Unix); callers may then fall back to
    approach-internal deadline checks.
    """

    can_alarm = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        yield False
        return

    def _on_alarm(signum, frame):
        raise CellBudgetExceeded(f"cell exceeded its {seconds:g}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# Options each approach accepts; anything else is a caller typo (e.g. `sede=3`
# for `seed=3`) that would otherwise run with defaults, get reported as the
# intended cell, and be persisted under the misspelled cache key.  The cell
# time budget is a harness-level option (`run_cell(timeout_s=...)`), not an
# approach option.
_APPROACH_KWARGS = {
    "ours": {"strict_ie"},
    "our": {"strict_ie"},
    "our-approach": {"strict_ie"},
    "sabre": {"seed", "passes"},
    "satmap": set(),
    "lnn": set(),
    "greedy": set(),
}


def _mapper_factory(
    approach: str,
    topology: Topology,
    satmap_timeout_s: Optional[float] = None,
    **kwargs,
) -> Callable[[], object]:
    approach = approach.lower()
    allowed = _APPROACH_KWARGS.get(approach)
    if allowed is not None:
        unknown = set(kwargs) - allowed
        if unknown:
            raise ValueError(
                f"unknown option(s) for approach {approach!r}: {sorted(unknown)}"
                f" (accepted: {sorted(allowed) or 'none'})"
            )
    if approach in ("ours", "our", "our-approach"):
        return lambda: compile_qft(topology, strict_ie=kwargs.get("strict_ie", False))
    if approach == "sabre":
        mapper = SabreMapper(
            topology,
            seed=kwargs.get("seed", 0),
            passes=kwargs.get("passes", 3),
        )
        return mapper.map_qft
    if approach == "satmap":
        mapper = SatmapMapper(
            topology,
            timeout_s=60.0 if satmap_timeout_s is None else satmap_timeout_s,
        )
        return mapper.map_qft
    if approach == "lnn":
        mapper = LNNPathMapper(topology)
        return mapper.map_qft
    if approach == "greedy":
        mapper = GreedyRouterMapper(topology)
        return mapper.map_qft
    raise ValueError(f"unknown approach {approach!r}")


def run_cell(
    approach: str,
    kind: str,
    size: int,
    *,
    verify: bool = True,
    max_qubits: Optional[int] = None,
    timeout_s: Optional[float] = None,
    topology: Optional[Topology] = None,
    **kwargs,
) -> CompilationResult:
    """Compile QFT with one approach on one architecture instance.

    ``max_qubits`` marks the cell as "skipped" (instead of running for hours)
    when the instance exceeds the harness cap for that approach -- this is how
    the benchmark suite keeps SABRE runs bounded while still reporting the
    full sweep for the analytical approach.

    ``timeout_s`` is the harness-level per-cell budget: the mapper call is
    interrupted once the budget elapses and the cell is reported as
    ``status == "timeout"`` (the paper's TLE).  The budget applies to every
    approach; for SATMAP it *replaces* the stand-in's internal wall-clock
    checks (which remain only as a fallback where SIGALRM is unavailable).

    ``topology`` optionally injects a prebuilt (shared) topology instance, so
    topology-grouped sweeps reuse one instance -- and its cached distance
    matrix / routing tables -- across all the cells of a group.

    Architecture construction errors (e.g. an odd Sycamore patch size) are
    reported as a ``status == "error"`` result rather than raised, so one bad
    cell cannot kill a whole sweep.  An unknown *approach* or *kind* still
    raises -- those are caller bugs, not per-cell failures.
    """

    label = architecture_label(kind, size)
    factory = _architecture_factory(kind)  # unknown kind: caller bug, raises
    if topology is None:
        try:
            topology = factory(size)
        except ValueError as exc:
            return CompilationResult(
                approach=approach,
                architecture=label,
                num_qubits=0,
                status="error",
                message=str(exc),
            )
    n = topology.num_qubits
    if max_qubits is not None and n > max_qubits:
        return CompilationResult(
            approach=approach, architecture=label, num_qubits=n, status="skipped"
        )

    start = time.perf_counter()
    try:
        with cell_budget(timeout_s) as armed:
            satmap_timeout = None  # SatmapMapper's own default
            if timeout_s is not None:
                satmap_timeout = float("inf") if armed else float(timeout_s)
            mapper = _mapper_factory(
                approach, topology, satmap_timeout_s=satmap_timeout, **kwargs
            )
            start = time.perf_counter()
            mapped = mapper()
    except (SatmapTimeout, CellBudgetExceeded):
        elapsed = time.perf_counter() - start
        return CompilationResult(
            approach=approach,
            architecture=label,
            num_qubits=n,
            status="timeout",
            compile_time_s=elapsed,
        )
    elapsed = time.perf_counter() - start

    verified: Optional[bool] = None
    if verify:
        verified = check_mapped_qft_structure(mapped, n).ok
    result = result_from_mapped(approach, label, mapped, elapsed, verified)
    return result
