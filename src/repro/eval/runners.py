"""Single-cell runners for the evaluation harness.

A *cell* is one ``(workload, approach, architecture kind, size)`` tuple.
Everything here resolves through the three registries -- workloads
(:mod:`repro.workloads`), approaches (:mod:`repro.approaches`) and
architectures (:mod:`repro.arch.registry`) -- and the actual compilation is
one :func:`repro.compile` call, so the harness, the library entry point and
the CLI share a single source of truth for names, synonyms, allowed kwargs
and per-approach caps.  ``make_architecture`` / ``architecture_key`` /
``architecture_label`` are re-exported from the architecture registry for
compatibility.

Cell outcomes are typed: ``ok`` / ``skipped`` (above the size cap) /
``timeout`` (the paper's TLE) / ``error`` (architecture construction
failed) / ``unsupported`` (the approach cannot compile this workload or
architecture -- e.g. an analytic QFT specialist asked for QAOA, or LNN on a
topology without a Hamiltonian path).  Unknown *names* still raise with
did-you-mean suggestions: those are caller bugs, not per-cell failures.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Tuple, Union

from ..approaches import APPROACH_REGISTRY, ENGINE_KWARGS, get_approach
from ..arch.registry import (
    ARCHITECTURES,
    architecture_key,
    architecture_label,
    make_architecture,
)
from ..arch.topology import Topology
from ..baselines.sabre import sabre_tables_for
from ..compile_api import compile as compile_cell
from ..utils import BoundedCache, CellBudgetExceeded, cell_budget
from ..workloads import get_workload
from .metrics import CompilationResult

__all__ = [
    "make_architecture",
    "run_cell",
    "sample_verifies",
    "architecture_label",
    "architecture_key",
    "cached_topology",
    "prepare_topology",
    "cell_budget",
    "CellBudgetExceeded",
    "APPROACHES",
]


def _approaches() -> Tuple[str, ...]:
    return APPROACH_REGISTRY.names()


# Kept as a module-level tuple for backwards compatibility; the registry is
# the source of truth (imported at module load, after the built-in approaches
# registered themselves).
APPROACHES = _approaches()


# Process-local topology memo, keyed by `architecture_key`.  Evaluation sweeps
# run many cells against the same coupling graph (seed sweeps in particular);
# sharing the instance means the topology object, its distance matrix and the
# SABRE routing tables are built once per (process, topology) instead of once
# per cell.  Topology instances are immutable by convention (nothing in the
# mapper stack writes to them), which is what makes the sharing safe.  LRU
# bounded for the same reason as the distance-matrix cache.
_TOPO_MEMO: BoundedCache = BoundedCache(8)


def cached_topology(kind: str, size: int) -> Optional[Topology]:
    """Shared topology instance for ``(kind, size)``, or None if construction
    fails (the caller's `run_cell` re-runs construction to produce the
    per-cell error result)."""

    key = architecture_key(kind, size)
    topo = _TOPO_MEMO.lookup(key)
    if topo is not None:
        return topo
    try:
        topo = make_architecture(kind, size)
    except ValueError:
        return None
    return _TOPO_MEMO.store(key, topo)


def prepare_topology(kind: str, size: int) -> Optional[Topology]:
    """Build + fully warm the shared topology for ``(kind, size)``.

    Beyond :func:`cached_topology`, this precomputes the all-pairs distance
    matrix and the SABRE routing tables, so forked pool workers inherit them
    copy-on-write and never redo the work.  Returns None when the architecture
    cannot be constructed (the per-cell run reports that as an error result).
    """

    topo = cached_topology(kind, size)
    if topo is not None:
        topo.distance_matrix()
        sabre_tables_for(topo)
    return topo


#: fraction of cells (per 256) the "sample" verification policy verifies
_SAMPLE_VERIFY_THRESHOLD = 64  # 25%


def sample_verifies(
    approach: str,
    kind: str,
    size: int,
    workload: str = "qft",
    params: Iterable[Tuple[str, object]] = (),
) -> bool:
    """Deterministic per-cell decision for the ``"sample"`` verify policy.

    A stable content hash of the cell identity selects ~25% of cells, so a
    sampled sweep verifies the same cells on every machine and every re-run
    (results stay cacheable), while the full-Python verify pass -- the
    dominant non-mapping cost at 1024 qubits -- is paid only on the sample.
    ``params`` carries the cell's remaining identity (approach options like
    the SABRE seed, workload parameters): without it, every cell of a
    single-topology seed sweep would share one all-or-nothing decision.
    Engine-selection options (:data:`~repro.approaches.ENGINE_KWARGS`, e.g.
    the SABRE routing kernel) are excluded -- they cannot change what the
    cell computes, so they must not change which cells get verified either
    (a forked decision would fork the ``verified`` field and with it the
    cache-merge identity).
    """

    tail = ";".join(
        f"{k}={v!r}"
        for k, v in sorted((str(k), v) for k, v in params)
        if k not in ENGINE_KWARGS
    )
    digest = hashlib.sha256(
        f"{approach}|{kind}|{size}|{workload}|{tail}".encode()
    ).digest()
    return digest[0] < _SAMPLE_VERIFY_THRESHOLD


def run_cell(
    approach: str,
    kind: str,
    size: int,
    *,
    workload: str = "qft",
    workload_params: Optional[Dict[str, object]] = None,
    num_qubits: Optional[int] = None,
    verify: Union[bool, str] = True,
    max_qubits: Optional[int] = None,
    timeout_s: Optional[float] = None,
    topology: Optional[Topology] = None,
    **kwargs,
) -> CompilationResult:
    """Compile one workload with one approach on one architecture instance.

    ``verify`` is the verification policy: ``"full"`` (or ``True``, the
    default) runs every check, ``"off"`` (or ``False``) none, and
    ``"sample"`` a deterministic ~25% subsample of cells (see
    :func:`sample_verifies`) -- the full-Python verify pass is the dominant
    non-mapping cost at 1024 qubits, and a sampled sweep still catches a
    broken mapper while paying it on a quarter of the cells.  Non-default
    policies are recorded in the result's ``extra["verify_policy"]`` (and
    are part of the harness cache key).

    ``num_qubits`` sets the workload instance size (defaults to the full
    device), mirroring ``repro.compile`` -- the serve layer uses it to run
    kernels smaller than the device through the same cell machinery.

    ``max_qubits`` marks the cell as "skipped" (instead of running for hours)
    when the instance exceeds the harness cap for that approach -- this is how
    the benchmark suite keeps SABRE runs bounded while still reporting the
    full sweep for the analytical approach.  Omitted, the approach's
    registered default cap (if any) applies.

    ``timeout_s`` is the harness-level per-cell budget: the mapper call is
    interrupted once the budget elapses and the cell is reported as
    ``status == "timeout"`` (the paper's TLE).  The budget applies to every
    approach; for SATMAP it *replaces* the stand-in's internal wall-clock
    checks (which remain only as a fallback where SIGALRM is unavailable).

    ``topology`` optionally injects a prebuilt (shared) topology instance, so
    topology-grouped sweeps reuse one instance -- and its cached distance
    matrix / routing tables -- across all the cells of a group.

    Architecture construction errors (e.g. an odd Sycamore patch size) are
    reported as a ``status == "error"`` result, and approaches that cannot
    compile the cell's workload/architecture combination as
    ``status == "unsupported"``, rather than raised -- one bad cell cannot
    kill a whole sweep.  An unknown approach, kind, workload or option still
    raises -- those are caller bugs, not per-cell failures.
    """

    label = architecture_label(kind, size)
    get_approach(approach)  # unknown approach: caller bug, raises with hints
    wl = get_workload(workload)  # unknown workload: likewise
    policy = {True: "full", False: "off"}.get(verify, verify)
    if policy not in ("full", "sample", "off"):
        raise ValueError(
            f"unknown verify policy {verify!r} (one of 'full', 'sample', 'off')"
        )
    if policy == "sample":
        do_verify = sample_verifies(
            approach,
            kind,
            size,
            workload,
            params=[*kwargs.items(), *(workload_params or {}).items()],
        )
    else:
        do_verify = policy == "full"
    if topology is None:
        ARCHITECTURES.get(kind)  # unknown kind: caller bug, raises with hints
        try:
            topology = make_architecture(kind, size)
        except ValueError as exc:
            return CompilationResult(
                approach=approach,
                architecture=label,
                num_qubits=0,
                status="error",
                message=str(exc),
                workload=wl.name,
            )

    # `max_qubits=None` here means "no explicit cap": fall through to the
    # approach's registered default (repro.compile applies it).
    result = compile_cell(
        workload=workload,
        architecture=topology,
        approach=approach,
        num_qubits=num_qubits,
        workload_params=workload_params,
        verify=do_verify,
        timeout_s=timeout_s,
        max_qubits=max_qubits,
        **kwargs,
    )
    row = result.metrics()
    row.architecture = label  # paper-style label, not the topology's name
    if policy != "full":
        row.extra["verify_policy"] = policy
    return row
