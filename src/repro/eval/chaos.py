"""Deterministic fault injection for the dispatcher and its tests.

Fault tolerance that is never exercised is a story, not a property.  This
module turns every failure mode the dispatcher claims to survive into a
*directive* that tests (and the CI chaos smoke leg) inject deliberately:

``kill-worker@worker=w0,cell=1``
    The worker whose id is ``w0`` SIGKILLs itself the moment it starts its
    second leased cell (0-based, counted per worker) -- a hard mid-cell
    crash, no cleanup, no goodbye.  The lease it holds must expire and the
    cell must be reassigned.
``freeze-heartbeat@worker=w1,cell=2``
    From its third leased cell on, ``w1`` stops sending heartbeats (the
    process keeps computing -- this is the "hung but alive" failure, not a
    crash).  Combined with ``stall``, the lease outlives its deadline and
    the dispatcher must steal the cell back.
``stall@worker=w1,cell=2,s=1.2``
    ``w1`` sleeps 1.2 s mid-cell (after taking the lease, before
    computing) -- the deterministic stand-in for a slow or wedged machine.
``delay-response@path=/lease,s=0.2,times=2``
    The dispatcher delays its next two ``/lease`` responses by 0.2 s
    (network latency injection).
``drop-response@path=/result,times=1``
    The dispatcher closes the connection without replying to the next
    ``/result`` request *before* processing it -- the worker must retry
    with backoff and the retry must be idempotent.

Directives live in the ``REPRO_CHAOS`` environment variable (so they cross
the process boundary into spawned workers), separated by ``;``.  Matching
is exact string equality on every parameter except the action parameters
``s`` and ``times`` -- no randomness anywhere, so a chaos run is as
reproducible as a clean one.  ``times`` caps how often a directive fires
(default: once).

Nothing here imports the dispatcher; the dispatcher (and its worker loop)
calls :func:`active` at its hook points and stays fully functional -- with
zero overhead beyond a dict lookup -- when ``REPRO_CHAOS`` is unset.
"""

from __future__ import annotations

import os
import signal
from typing import Dict, List, Mapping, Optional

__all__ = [
    "ENV_VAR",
    "ChaosDirective",
    "ChaosConfig",
    "active",
    "reload",
    "kill_self",
    "tear_tail",
]

#: environment variable holding the directive list
ENV_VAR = "REPRO_CHAOS"

#: directive parameters that configure the action rather than the match
_ACTION_PARAMS = frozenset({"s", "times"})

#: recognised directive kinds (unknown kinds raise at parse time: a typo'd
#: chaos spec that silently injects nothing would "pass" every chaos test)
KINDS = (
    "kill-worker",
    "freeze-heartbeat",
    "stall",
    "delay-response",
    "drop-response",
)


class ChaosDirective:
    """One parsed fault directive: a kind, match params, and a fire budget."""

    def __init__(self, kind: str, params: Dict[str, str]) -> None:
        if kind not in KINDS:
            raise ValueError(
                f"unknown chaos directive kind {kind!r} (one of {', '.join(KINDS)})"
            )
        self.kind = kind
        self.params = dict(params)
        self.times = int(params["times"]) if "times" in params else 1
        self.fired = 0

    def matches(self, ctx: Mapping[str, object]) -> bool:
        """True when every match parameter equals the hook's context."""

        for key, want in self.params.items():
            if key in _ACTION_PARAMS:
                continue
            if str(ctx.get(key)) != want:
                return False
        return True

    def describe(self) -> str:
        tail = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.kind}@{tail}" if tail else self.kind


class ChaosConfig:
    """The active set of directives (usually parsed from ``REPRO_CHAOS``)."""

    def __init__(self, directives: List[ChaosDirective]) -> None:
        self.directives = list(directives)

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosConfig":
        """Parse ``kind@k=v,k=v;kind@...`` into a config (``""`` -> empty)."""

        directives: List[ChaosDirective] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, _, tail = chunk.partition("@")
            params: Dict[str, str] = {}
            for pair in filter(None, tail.split(",")):
                key, sep, value = pair.partition("=")
                if not sep:
                    raise ValueError(
                        f"malformed chaos parameter {pair!r} in {chunk!r} "
                        "(expected key=value)"
                    )
                params[key.strip()] = value.strip()
            directives.append(ChaosDirective(kind.strip(), params))
        return cls(directives)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "ChaosConfig":
        env = os.environ if environ is None else environ
        return cls.from_spec(env.get(ENV_VAR, ""))

    def fires(self, kind: str, **ctx: object) -> Optional[Dict[str, str]]:
        """Consume and return the params of a matching directive, or None.

        The first directive of ``kind`` whose match parameters equal ``ctx``
        and whose ``times`` budget is not exhausted fires (its counter is
        bumped); everything about the decision is deterministic in the
        directive list and the call sequence.
        """

        for directive in self.directives:
            if directive.kind != kind or directive.fired >= directive.times:
                continue
            if directive.matches(ctx):
                directive.fired += 1
                return dict(directive.params)
        return None

    def __bool__(self) -> bool:
        return bool(self.directives)


_ACTIVE: Optional[ChaosConfig] = None


def active() -> ChaosConfig:
    """The process-wide config, parsed from ``REPRO_CHAOS`` once per process.

    Worker processes call :func:`reload` on entry instead, so a fork never
    inherits the parent's fire counters.
    """

    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = ChaosConfig.from_env()
    return _ACTIVE


def reload() -> ChaosConfig:
    """Re-read ``REPRO_CHAOS`` (fresh fire counters); returns the config."""

    global _ACTIVE
    _ACTIVE = ChaosConfig.from_env()
    return _ACTIVE


def kill_self() -> None:  # pragma: no cover - the process dies here
    """SIGKILL the current process: no atexit, no finally, no flush."""

    os.kill(os.getpid(), signal.SIGKILL)


def tear_tail(path: os.PathLike, keep_bytes: int) -> int:
    """Truncate ``path`` to its first ``keep_bytes`` bytes (a torn write).

    Returns the number of bytes removed.  This is the journal-tail tear the
    durability tests sweep over every byte offset of the final record.
    """

    size = os.path.getsize(path)
    if keep_bytes < 0 or keep_bytes > size:
        raise ValueError(
            f"keep_bytes must be within [0, {size}], got {keep_bytes}"
        )
    os.truncate(path, keep_bytes)
    return size - keep_bytes
