"""Plain-text rendering of result tables (paper-style)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .metrics import CompilationResult

__all__ = ["format_table", "format_results", "format_series"]


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render dict rows as an aligned text table."""

    if not rows:
        return "(no rows)"
    widths = {c: len(c) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(str(row.get(c, ""))))
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    lines = [header, sep]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def format_results(results: Iterable[CompilationResult]) -> str:
    rows = [r.as_row() for r in results]
    columns = ["architecture", "qubits", "approach", "depth", "swaps", "compile_s", "status", "verified"]
    # the workload column only appears once a non-QFT workload shows up
    if any(row.get("workload") not in (None, "qft") for row in rows):
        columns.insert(0, "workload")
    # failed cells carry a diagnostic; only show the column when one exists
    if any(row.get("message") for row in rows):
        columns.append("message")
    return format_table(rows, columns)


def format_series(
    results: Iterable[CompilationResult], metric: str = "depth"
) -> str:
    """Render a figure-style series: one line per approach, x = qubit count."""

    by_approach: Dict[str, List[CompilationResult]] = {}
    for r in results:
        by_approach.setdefault(r.approach, []).append(r)
    lines = []
    for approach, rs in sorted(by_approach.items()):
        rs = sorted(rs, key=lambda r: r.num_qubits)
        pts = []
        for r in rs:
            val = getattr(r, metric, None)
            pts.append(f"{r.num_qubits}:{val if val is not None else r.status}")
        lines.append(f"{approach:>16s}  " + "  ".join(pts))
    return "\n".join(lines)
