"""The declarative run API: registered experiments, typed plans, executors.

This is the evaluation-side counterpart of :func:`repro.compile`: one typed
entry point over registries instead of a function-per-figure layout.

* :func:`register_experiment` turns a ``specs_*`` builder into a registry
  entry (synonyms + did-you-mean ``UnknownNameError``, exactly like the
  workload/approach/architecture registries).
* :func:`plan` resolves an experiment name into a :class:`RunPlan`: an
  ordered, picklable tuple of :class:`~repro.eval.parallel.CellSpec` plus
  the profile, verification policy and (optionally) a deterministic
  ``shard=(i, n)`` slice, partitioned so every shard gets a balanced share
  of work without serializing on one big coupling graph.
* :func:`execute` dispatches a plan through a registered
  :class:`~repro.eval.executors.Executor` (``serial``, ``pool`` or the
  journaling/resuming/straggler-retrying ``shard-coordinator``) and returns
  a typed, JSON-serializable :class:`RunReport`.

The classic surface (``experiment_*`` functions, ``run_cells``) survives as
shims over this module, so pinned metrics and cache semantics are untouched.

Typical use::

    from repro.eval import plan, execute

    p = plan("fig17", profile="paper", shard=(0, 4))
    report = execute(p, executor="shard-coordinator", jobs=8,
                     cache=ResultCache("~/.repro-cache"), journal="runs/s0")
    report.status_counts   # {"ok": 12, "skipped": 3, ...}
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import time
from collections import Counter
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..registry import Registry
from .cache import ResultCache, code_version
from .executors import ExecutionContext, get_executor
from .journal import cell_key
from .metrics import CompilationResult
from .parallel import VERIFY_POLICIES, CellSpec
from .runners import architecture_key

__all__ = [
    "ExperimentEntry",
    "EXPERIMENT_REGISTRY",
    "register_experiment",
    "get_experiment",
    "experiment_names",
    "RunPlan",
    "RunReport",
    "plan",
    "adhoc_plan",
    "partition_cells",
    "execute",
]


# ---------------------------------------------------------------------------
# Experiment registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment: a named builder of cell specs."""

    name: str
    builder: Callable[..., List[CellSpec]]
    #: the paper anchor this experiment regenerates (e.g. "Table 1")
    figure: str = ""
    description: str = ""
    #: extra ``plan()`` options the builder accepts (e.g. ``workload``)
    options: FrozenSet[str] = frozenset()
    #: whether ``-e all`` (and ``run_all``) includes this experiment
    in_all: bool = True

    def validate_options(self, options: Dict[str, object]) -> None:
        unknown = set(options) - self.options
        if unknown:
            raise ValueError(
                f"unknown option(s) for experiment {self.name!r}: "
                f"{sorted(unknown)} (accepted: {sorted(self.options) or 'none'})"
            )


#: the process-wide experiment registry
EXPERIMENT_REGISTRY: Registry[ExperimentEntry] = Registry("experiment")


def register_experiment(
    name: str,
    *,
    synonyms: Iterable[str] = (),
    figure: str = "",
    description: str = "",
    options: Iterable[str] = (),
    in_all: bool = True,
) -> Callable[[Callable[..., List[CellSpec]]], Callable[..., List[CellSpec]]]:
    """Decorator registering ``builder(profile, **options) -> [CellSpec]``.

    The builder receives the resolved :class:`~repro.eval.experiments.Profile`
    and must return the experiment's cells in their canonical order (shard
    partitioning and result ordering are defined relative to it).
    """

    def _register(builder: Callable[..., List[CellSpec]]):
        EXPERIMENT_REGISTRY.register(
            name,
            ExperimentEntry(
                name,
                builder,
                figure=figure,
                description=description or (builder.__doc__ or "").strip(),
                options=frozenset(options),
                in_all=in_all,
            ),
            synonyms=synonyms,
        )
        return builder

    return _register


def _ensure_builtin_experiments() -> None:
    # The built-in experiments register themselves when their defining module
    # is imported; importing repro.eval does that, but a direct
    # ``import repro.eval.runs`` must find them too.
    from . import experiments  # noqa: F401


def get_experiment(name: str) -> ExperimentEntry:
    """Resolve an experiment by any registered spelling (raises with hints)."""

    _ensure_builtin_experiments()
    return EXPERIMENT_REGISTRY.get(name)


def experiment_names(*, in_all_only: bool = False) -> Tuple[str, ...]:
    """Canonical names of every registered experiment."""

    _ensure_builtin_experiments()
    names = EXPERIMENT_REGISTRY.names()
    if in_all_only:
        names = tuple(
            n for n in names if EXPERIMENT_REGISTRY.get(n).in_all
        )
    return names


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


def partition_cells(
    cells: Sequence[CellSpec], num_shards: int
) -> List[Tuple[int, ...]]:
    """Deterministically partition cell indices into ``num_shards`` slices.

    Balancing is *by topology group*: cells sharing a coupling graph are kept
    together so each shard builds few topologies (the pool executor's
    distance-matrix/SABRE-table reuse keeps paying off inside a shard), but
    any group larger than a fair share -- a seed sweep where every cell is
    one big coupling graph -- is split across shards instead of serializing
    one machine on it.  Groups are placed largest-first onto the currently
    lightest shard (ties by shard index), which is deterministic in the cell
    list alone.  Every cell lands in exactly one shard and each shard's
    cells keep their original relative order, so the union of all shards is
    exactly the unsharded plan.
    """

    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards == 1:
        return [tuple(range(len(cells)))]

    groups: Dict[Tuple[str, int], List[int]] = {}
    for i, spec in enumerate(cells):
        groups.setdefault(architecture_key(spec.kind, spec.size), []).append(i)

    # A group never exceeds one fair share: bigger groups are cut into
    # fair-share-sized pieces first so they can spread over several shards.
    fair_share = max(1, math.ceil(len(cells) / num_shards))
    pieces: List[List[int]] = []
    for members in groups.values():
        for start in range(0, len(members), fair_share):
            pieces.append(members[start : start + fair_share])

    loads = [0] * num_shards
    assigned: List[List[int]] = [[] for _ in range(num_shards)]
    for piece in sorted(pieces, key=lambda p: (-len(p), p[0])):
        target = min(range(num_shards), key=lambda s: (loads[s], s))
        assigned[target].extend(piece)
        loads[target] += len(piece)
    return [tuple(sorted(a)) for a in assigned]


@dataclass(frozen=True)
class RunPlan:
    """A typed, picklable description of one evaluation run (or shard of one).

    ``cells`` is the exact ordered work list; ``total_cells`` counts the
    unsharded plan, so a shard knows how big the whole sweep is.  Plans are
    value objects: building the same plan twice (on any machine, any
    process) yields identical cells and an identical :meth:`fingerprint`,
    which is what makes journals resumable and shards mergeable.
    """

    experiment: str
    profile: str
    verify: str = "full"
    shard: Optional[Tuple[int, int]] = None
    options: Tuple[Tuple[str, object], ...] = ()
    cells: Tuple[CellSpec, ...] = ()
    total_cells: int = 0

    def fingerprint(self) -> str:
        """Content hash of the plan (identity for journal resume checks)."""

        payload = json.dumps(
            {
                "experiment": self.experiment,
                "profile": self.profile,
                "verify": self.verify,
                "shard": list(self.shard) if self.shard else None,
                "options": sorted((str(k), repr(v)) for k, v in self.options),
                "cells": [cell_key(c) for c in self.cells],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def describe(self) -> str:
        shard = f" shard {self.shard[0]}/{self.shard[1]}" if self.shard else ""
        return (
            f"{self.experiment} (profile: {self.profile}{shard}, "
            f"{len(self.cells)}/{self.total_cells} cells, verify={self.verify})"
        )


def plan(
    experiment: str,
    profile: Union[str, object] = "quick",
    *,
    shard: Optional[Tuple[int, int]] = None,
    verify: str = "full",
    **options: object,
) -> RunPlan:
    """Resolve an experiment name into a typed :class:`RunPlan`.

    ``profile`` is a profile name (``"quick"`` / ``"paper"``) or a
    :class:`~repro.eval.experiments.Profile` instance.  ``shard=(i, n)``
    selects slice ``i`` of a deterministic ``n``-way partition (see
    :func:`partition_cells`); the union of all ``n`` slices is exactly the
    unsharded plan.  ``verify`` sets every cell's verification policy
    (``"full"`` / ``"sample"`` / ``"off"``).  Extra keyword options are
    validated against the experiment entry (e.g. ``workload=`` for the
    registry cross-product sweep).
    """

    from .experiments import Profile, _profile  # deferred: experiments imports us

    entry = get_experiment(experiment)
    entry.validate_options(options)
    if verify not in VERIFY_POLICIES:
        raise ValueError(
            f"unknown verify policy {verify!r} (one of {VERIFY_POLICIES})"
        )
    prof = profile if isinstance(profile, Profile) else _profile(str(profile))
    cells = list(entry.builder(prof, **options))
    if verify != "full":
        cells = [dataclasses.replace(c, verify=verify) for c in cells]
    total = len(cells)
    if shard is not None:
        index, count = shard
        if count < 1 or not (0 <= index < count):
            raise ValueError(
                f"shard must be (i, n) with 0 <= i < n, got {shard!r}"
            )
        picked = partition_cells(cells, count)[index]
        cells = [cells[i] for i in picked]
        shard = (index, count)
    return RunPlan(
        experiment=entry.name,
        profile=prof.name,
        verify=verify,
        shard=shard,
        options=tuple(sorted(options.items())),
        cells=tuple(cells),
        total_cells=total,
    )


def adhoc_plan(
    name: str, cells: Sequence[CellSpec], *, profile: str = "adhoc"
) -> RunPlan:
    """Wrap a hand-built cell list as a plan (benchmarks, one-off sweeps).

    The cells run exactly as given -- no registry lookup, no sharding -- but
    the run still goes through :func:`execute`, so it gets the same typed
    :class:`RunReport`, journaling and executor choice as a registered
    experiment.
    """

    cells = tuple(cells)
    return RunPlan(
        experiment=name,
        profile=profile,
        verify=cells[0].verify if cells else "full",
        cells=cells,
        total_cells=len(cells),
    )


# ---------------------------------------------------------------------------
# Reports + execution
# ---------------------------------------------------------------------------


@dataclass
class RunReport:
    """Everything one :func:`execute` call produced, JSON-serializable.

    ``results`` is in plan (cell) order.  ``status_counts`` aggregates the
    per-cell statuses; ``resumed`` / ``retried`` / ``recovered`` are the
    journaling executors' accounting (cells served from the journal,
    straggler cells re-dispatched, and retries whose second attempt
    succeeded).  ``reassigned`` / ``dead_workers`` are dispatcher-only:
    leases that expired and went back to the queue, and distinct workers
    whose leases expired (crashed or hung).  ``retry_timeout_multiplier``
    records how straggler-retry timeout budgets were scaled, so a report is
    a complete record of the retry policy that produced it.
    """

    experiment: str
    profile: str
    verify: str
    shard: Optional[Tuple[int, int]]
    executor: str
    jobs: int
    results: List[CompilationResult]
    status_counts: Dict[str, int]
    wall_s: float
    total_cells: int = 0
    resumed: int = 0
    retried: int = 0
    recovered: int = 0
    reassigned: int = 0
    dead_workers: int = 0
    retry_timeout_multiplier: float = 1.0
    journal: Optional[str] = None
    #: path of the SQLite experiment store the run was recorded into
    store: Optional[str] = None
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        """True when no cell errored (skips/timeouts/unsupported are typed)."""

        return self.status_counts.get("error", 0) == 0

    def to_dict(self, *, include_results: bool = True) -> Dict[str, object]:
        data: Dict[str, object] = {
            "experiment": self.experiment,
            "profile": self.profile,
            "verify": self.verify,
            "shard": list(self.shard) if self.shard else None,
            "executor": self.executor,
            "jobs": self.jobs,
            "cells": len(self.results),
            "total_cells": self.total_cells,
            "status_counts": dict(self.status_counts),
            "wall_s": round(self.wall_s, 3),
            "resumed": self.resumed,
            "retried": self.retried,
            "recovered": self.recovered,
            "reassigned": self.reassigned,
            "dead_workers": self.dead_workers,
            "retry_timeout_multiplier": self.retry_timeout_multiplier,
            "journal": self.journal,
            "store": self.store,
            "cache_stats": self.cache_stats,
        }
        if include_results:
            data["results"] = [r.to_dict() for r in self.results]
        return data

    def summary(self) -> str:
        counts = ", ".join(
            f"{k}={v}" for k, v in sorted(self.status_counts.items())
        )
        extras = ""
        if self.resumed or self.retried:
            extras = (
                f", resumed={self.resumed}, retried={self.retried}, "
                f"recovered={self.recovered}"
            )
        if self.reassigned or self.dead_workers:
            extras += (
                f", reassigned={self.reassigned}, "
                f"dead_workers={self.dead_workers}"
            )
        return (
            f"run: {self.experiment} [{self.executor}] "
            f"{len(self.results)} cells in {self.wall_s:.2f}s ({counts}{extras})"
        )


def execute(
    run_plan: RunPlan,
    *,
    executor: Optional[str] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    journal: Optional[str] = None,
    resume: Optional[str] = None,
    store: Optional[str] = None,
    retry_timeouts: int = 1,
    retry_timeout_multiplier: float = 1.0,
    journal_fsync_every: int = 1,
    group_topologies: bool = True,
    dispatch: Optional[Dict[str, object]] = None,
) -> RunReport:
    """Run a plan through a registered executor and report the outcome.

    ``executor`` defaults to ``"shard-coordinator"`` when ``journal``,
    ``resume`` or ``store`` is given, ``"pool"`` when ``jobs > 1``, else
    ``"serial"``.  ``journal`` starts a fresh JSONL run journal at that
    directory; ``resume`` continues from an existing one (cells already
    journaled are served, not re-run, after checking the journal was
    written by this code version and this exact plan).  ``store`` records
    the run -- its meta row plus every journaled cell append -- into a
    SQLite :class:`repro.store.ExperimentStore` alongside (or instead of)
    the JSONL journal.  All three require a journaling executor
    (``shard-coordinator`` or ``dispatch``).

    ``retry_timeout_multiplier`` scales a straggler retry's ``timeout_s``
    by ``multiplier**attempt`` (default 1.0: retry with the same budget), so
    a marginally-too-slow cell can recover instead of timing out twice
    identically.  ``journal_fsync_every`` widens the journal's fsync stride
    (default 1: every cell durable; 0 disables fsync).  ``dispatch`` passes
    executor options to the ``dispatch`` executor (``lease_s``,
    ``heartbeat_s``, ``spawn_workers``, ``host``/``port``, ``on_start``).
    """

    if journal and resume:
        raise ValueError("pass either journal= (fresh) or resume=, not both")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if executor is None:
        if journal or resume or store:
            executor = "shard-coordinator"
        else:
            executor = "pool" if jobs > 1 else "serial"
    impl = get_executor(executor)

    meta: Dict[str, object] = {
        "experiment": run_plan.experiment,
        "profile": run_plan.profile,
        "verify": run_plan.verify,
        "shard": list(run_plan.shard) if run_plan.shard else None,
        "plan": run_plan.fingerprint(),
        "code": code_version(),
    }
    ctx = ExecutionContext(
        jobs=jobs,
        cache=cache,
        group_topologies=group_topologies,
        journal_dir=journal,
        resume_dir=resume,
        store_path=store,
        meta=meta,
        retry_timeouts=retry_timeouts,
        retry_timeout_multiplier=retry_timeout_multiplier,
        journal_fsync_every=journal_fsync_every,
        dispatch_opts=dict(dispatch or {}),
    )
    start = time.perf_counter()
    outcome = impl.run(run_plan.cells, ctx)
    wall = time.perf_counter() - start

    return RunReport(
        experiment=run_plan.experiment,
        profile=run_plan.profile,
        verify=run_plan.verify,
        shard=run_plan.shard,
        executor=impl.name,
        jobs=jobs,
        results=outcome.results,
        status_counts=dict(Counter(r.status for r in outcome.results)),
        wall_s=wall,
        total_cells=run_plan.total_cells,
        resumed=outcome.resumed,
        retried=outcome.retried,
        recovered=outcome.recovered,
        reassigned=outcome.reassigned,
        dead_workers=outcome.dead_workers,
        retry_timeout_multiplier=retry_timeout_multiplier,
        journal=outcome.journal_path,
        store=store,
        cache_stats=cache.stats() if cache is not None else None,
    )
