"""Cell specs and the classic ``run_cells`` entry point.

This module used to hold the whole parallel execution engine; since the run
API redesign the engine lives in :mod:`repro.eval.executors` (as the
``serial`` / ``pool`` executors plus the journaling ``shard-coordinator``),
and :mod:`repro.eval.runs` provides the declarative layer on top
(``plan()`` / ``execute()`` over registered experiments).  What remains here
is the spec type itself and :func:`run_cells`, reimplemented as a thin shim
over the executor engine so the long-standing call sites -- experiment shims,
benchmarks, tests -- keep exactly their old contract: results in spec order,
identical metrics at any ``jobs``, cache hits served without running
anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .metrics import CompilationResult

__all__ = ["CellSpec", "run_cells"]

#: recognised per-cell verification policies (see ``run_cell``)
VERIFY_POLICIES = ("full", "sample", "off")


@dataclass(frozen=True)
class CellSpec:
    """One evaluation cell: ``run_cell(approach, kind, size, **kwargs)``.

    ``kwargs`` is stored as a sorted tuple of pairs so specs are hashable and
    picklable (process-pool workers receive the spec itself).  ``rename``
    optionally overrides the reported approach label, e.g. ``sabre-seed3``
    for the Fig. 27 seed sweep.  ``timeout_s`` is the harness-enforced
    per-cell budget: the executors report cells that exceed it as
    ``status == "timeout"`` results (the paper's TLE) instead of leaving
    wall-clock checks to the approaches themselves.  ``workload`` names the
    registered circuit family the cell compiles (default the paper's QFT
    kernel); ``workload_params`` are its build parameters, stored sorted for
    the same hashability reason as ``kwargs``.  ``verify`` is the cell's
    verification policy -- ``"full"`` (every check, the default),
    ``"sample"`` (deterministic per-cell subsample; the full-Python verify
    pass dominates non-mapping cost at 1024 qubits) or ``"off"`` -- and is
    part of the cache key, so results always record which policy produced
    them.
    """

    approach: str
    kind: str
    size: int
    kwargs: Tuple[Tuple[str, object], ...] = ()
    rename: Optional[str] = None
    timeout_s: Optional[float] = None
    workload: str = "qft"
    workload_params: Tuple[Tuple[str, object], ...] = ()
    verify: str = "full"

    @classmethod
    def make(
        cls,
        approach: str,
        kind: str,
        size: int,
        *,
        rename: Optional[str] = None,
        timeout_s: Optional[float] = None,
        workload: str = "qft",
        workload_params: Optional[Dict[str, object]] = None,
        verify: str = "full",
        **kwargs: object,
    ) -> "CellSpec":
        if verify not in VERIFY_POLICIES:
            raise ValueError(
                f"unknown verify policy {verify!r} (one of {VERIFY_POLICIES})"
            )
        return cls(
            approach,
            kind,
            size,
            tuple(sorted(kwargs.items())),
            rename,
            timeout_s,
            workload,
            tuple(sorted((workload_params or {}).items())),
            verify,
        )


def run_cells(
    specs: Sequence[CellSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    group_topologies: bool = True,
) -> List[CompilationResult]:
    """Run every spec, in order, using up to ``jobs`` worker processes.

    With a cache, hits are served without running anything and fresh results
    are stored on the way out; only the misses are distributed to workers.
    ``group_topologies=False`` disables the same-topology chunking (one task
    per cell, as before); results are identical either way.

    This is now a shim over :func:`repro.eval.executors.run_specs` (the
    engine behind the ``serial`` and ``pool`` executors); prefer
    ``repro.eval.runs.plan()`` / ``execute()`` for new code, which add shard
    partitioning, journaling/resume and typed run reports on top.
    """

    import warnings

    warnings.warn(
        "run_cells is deprecated; use repro.eval.executors.run_specs, or "
        "repro.eval.runs.plan()/execute() for journaled runs",
        DeprecationWarning,
        stacklevel=2,
    )
    from .executors import run_specs  # deferred: executors imports CellSpec

    return run_specs(
        specs, jobs=jobs, cache=cache, group_topologies=group_topologies
    )


def _topology_chunks(specs, todo, jobs):
    """Deprecated alias for :func:`repro.eval.executors._topology_chunks`."""

    from .executors import _topology_chunks as impl

    return impl(specs, todo, jobs)
