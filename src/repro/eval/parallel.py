"""Parallel, cache-aware, topology-grouped execution of evaluation cells.

The experiment definitions in :mod:`repro.eval.experiments` describe *what*
to run as lists of :class:`CellSpec`; this module decides *how*: serially or
fanned out over a process pool (compilation is CPU-bound pure Python, so
threads would not help), with an optional
:class:`~repro.eval.cache.ResultCache` consulted first so warm re-runs cost
milliseconds per cell.

Topology grouping
-----------------
Cells that target the same coupling graph (same canonical architecture kind
and size, see :func:`~repro.eval.runners.architecture_key`) are dispatched to
workers as whole chunks, and every worker resolves its topologies through the
process-local memo in :mod:`repro.eval.runners` -- so the Topology object,
its all-pairs distance matrix and the SABRE routing tables are built once per
(worker, topology) rather than once per cell.  On fork-based platforms the
parent additionally prewarms each distinct topology before spawning the pool,
so workers inherit the tables copy-on-write and build nothing at all.

Results come back in spec order regardless of ``jobs`` or grouping, and every
cell is deterministic given its spec, so neither ``--jobs N`` nor the
grouping ever changes the metrics -- only the wall-clock time (a property the
test suite asserts).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .metrics import CompilationResult
from .runners import architecture_key, cached_topology, prepare_topology, run_cell

__all__ = ["CellSpec", "run_cells"]


@dataclass(frozen=True)
class CellSpec:
    """One evaluation cell: ``run_cell(approach, kind, size, **kwargs)``.

    ``kwargs`` is stored as a sorted tuple of pairs so specs are hashable and
    picklable (process-pool workers receive the spec itself).  ``rename``
    optionally overrides the reported approach label, e.g. ``sabre-seed3``
    for the Fig. 27 seed sweep.  ``timeout_s`` is the harness-enforced
    per-cell budget: :func:`run_cells` reports cells that exceed it as
    ``status == "timeout"`` results (the paper's TLE) instead of leaving
    wall-clock checks to the approaches themselves.  ``workload`` names the
    registered circuit family the cell compiles (default the paper's QFT
    kernel); ``workload_params`` are its build parameters, stored sorted for
    the same hashability reason as ``kwargs``.
    """

    approach: str
    kind: str
    size: int
    kwargs: Tuple[Tuple[str, object], ...] = ()
    rename: Optional[str] = None
    timeout_s: Optional[float] = None
    workload: str = "qft"
    workload_params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls,
        approach: str,
        kind: str,
        size: int,
        *,
        rename: Optional[str] = None,
        timeout_s: Optional[float] = None,
        workload: str = "qft",
        workload_params: Optional[Dict[str, object]] = None,
        **kwargs: object,
    ) -> "CellSpec":
        return cls(
            approach,
            kind,
            size,
            tuple(sorted(kwargs.items())),
            rename,
            timeout_s,
            workload,
            tuple(sorted((workload_params or {}).items())),
        )


def _run_spec(spec: CellSpec) -> CompilationResult:
    topology = cached_topology(spec.kind, spec.size)  # None -> per-cell error
    result = run_cell(
        spec.approach,
        spec.kind,
        spec.size,
        workload=spec.workload,
        workload_params=dict(spec.workload_params),
        topology=topology,
        timeout_s=spec.timeout_s,
        **dict(spec.kwargs),
    )
    if spec.rename is not None:
        result.approach = spec.rename
    return result


def _run_chunk(
    specs: Sequence[CellSpec],
) -> Tuple[List[CompilationResult], Optional[Exception]]:
    """Worker-side entry point: run a same-topology chunk of cells in order.

    Returns the results plus the first raised exception (if any), so the
    parent can record -- and cache -- the cells that *did* finish before
    re-raising; with one task per chunk, a plain raise would otherwise
    discard every completed result in the chunk.  Only ``Exception`` is
    forwarded: KeyboardInterrupt/SystemExit must keep killing the worker
    promptly rather than ride along as a value.
    """

    results: List[CompilationResult] = []
    for spec in specs:
        try:
            results.append(_run_spec(spec))
        except Exception as exc:
            return results, exc
    return results, None


def _topology_chunks(
    specs: Sequence[CellSpec], todo: Sequence[int], jobs: int
) -> List[List[int]]:
    """Partition ``todo`` into same-topology chunks for pool dispatch.

    Each topology group is split into at most ``jobs`` chunks, so a sweep
    dominated by one topology (e.g. a seed sweep) still saturates the pool
    while cells sharing a topology land on as few workers as possible.
    """

    groups: Dict[Tuple[str, int], List[int]] = {}
    for i in todo:
        groups.setdefault(architecture_key(specs[i].kind, specs[i].size), []).append(i)

    chunks: List[List[int]] = []
    for members in groups.values():
        parts = min(jobs, len(members))
        base, extra = divmod(len(members), parts)
        start = 0
        for p in range(parts):
            size = base + (1 if p < extra else 0)
            chunks.append(members[start : start + size])
            start += size
    return chunks


def run_cells(
    specs: Sequence[CellSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    group_topologies: bool = True,
) -> List[CompilationResult]:
    """Run every spec, in order, using up to ``jobs`` worker processes.

    With a cache, hits are served without running anything and fresh results
    are stored on the way out; only the misses are distributed to workers.
    ``group_topologies=False`` disables the same-topology chunking (one task
    per cell, as before); results are identical either way.
    """

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    results: List[Optional[CompilationResult]] = [None] * len(specs)
    keys: Dict[int, str] = {}
    todo: List[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            keys[i] = cache.key(
                spec.approach,
                spec.kind,
                spec.size,
                spec.kwargs,
                spec.rename,
                spec.timeout_s,
                spec.workload,
                spec.workload_params,
            )
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                continue
        todo.append(i)

    def record(i: int, result: CompilationResult) -> None:
        results[i] = result
        # Timeouts are wall-clock-dependent, not deterministic per spec --
        # caching one would serve a one-off slow run forever.  Unsupported
        # cells are never cached either: the refusal is cheap to recompute
        # and a registry/plugin change (a specialist gaining a workload)
        # must take effect without a cache flush.  Everything else
        # (ok / skipped / error) is a pure function of the spec.
        if cache is not None and result.status not in ("timeout", "unsupported"):
            cache.put(keys[i], result)

    if jobs > 1 and len(todo) > 1:
        # Warm each distinct topology (+ distance matrix + SABRE tables) in
        # the parent first, where fork-based pools share them copy-on-write.
        # Under spawn (macOS/Windows default) workers inherit nothing, so the
        # parent-side work would be pure waste -- each worker's own memo
        # still builds everything once per (worker, topology) there.
        if multiprocessing.get_start_method() == "fork":
            seen = set()
            for i in todo:
                key = architecture_key(specs[i].kind, specs[i].size)
                if key not in seen:
                    seen.add(key)
                    prepare_topology(specs[i].kind, specs[i].size)
        if group_topologies:
            chunks = _topology_chunks(specs, todo, jobs)
        else:
            chunks = [[i] for i in todo]
        # Record each chunk's finished cells as it completes -- including the
        # prefix of a chunk whose later cell crashed (the worker forwards the
        # exception instead of raising) -- so a mid-sweep failure (worker
        # OOM, Ctrl-C, one bad cell) does not discard hours of finished work.
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            futures = {
                pool.submit(_run_chunk, [specs[i] for i in chunk]): chunk
                for chunk in chunks
            }
            failure: Optional[Exception] = None
            for fut in as_completed(futures):
                chunk_results, exc = fut.result()
                for i, result in zip(futures[fut], chunk_results):
                    record(i, result)
                if exc is not None and failure is None:
                    failure = exc
            if failure is not None:
                raise failure
    else:
        for i in todo:
            record(i, _run_spec(specs[i]))

    return results  # type: ignore[return-value]  # every slot is filled above
