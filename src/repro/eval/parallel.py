"""Parallel, cache-aware execution of evaluation cells.

The experiment definitions in :mod:`repro.eval.experiments` describe *what*
to run as lists of :class:`CellSpec`; this module decides *how*: serially or
fanned out over a process pool (compilation is CPU-bound pure Python, so
threads would not help), with an optional
:class:`~repro.eval.cache.ResultCache` consulted first so warm re-runs cost
milliseconds per cell.

Results come back in spec order regardless of ``jobs``, and every cell is
deterministic given its spec, so ``--jobs N`` never changes the metrics --
only the wall-clock time (a property the test suite asserts).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .metrics import CompilationResult
from .runners import run_cell

__all__ = ["CellSpec", "run_cells"]


@dataclass(frozen=True)
class CellSpec:
    """One evaluation cell: ``run_cell(approach, kind, size, **kwargs)``.

    ``kwargs`` is stored as a sorted tuple of pairs so specs are hashable and
    picklable (process-pool workers receive the spec itself).  ``rename``
    optionally overrides the reported approach label, e.g. ``sabre-seed3``
    for the Fig. 27 seed sweep.
    """

    approach: str
    kind: str
    size: int
    kwargs: Tuple[Tuple[str, object], ...] = ()
    rename: Optional[str] = None

    @classmethod
    def make(
        cls,
        approach: str,
        kind: str,
        size: int,
        *,
        rename: Optional[str] = None,
        **kwargs: object,
    ) -> "CellSpec":
        return cls(approach, kind, size, tuple(sorted(kwargs.items())), rename)


def _run_spec(spec: CellSpec) -> CompilationResult:
    result = run_cell(spec.approach, spec.kind, spec.size, **dict(spec.kwargs))
    if spec.rename is not None:
        result.approach = spec.rename
    return result


def run_cells(
    specs: Sequence[CellSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Run every spec, in order, using up to ``jobs`` worker processes.

    With a cache, hits are served without running anything and fresh results
    are stored on the way out; only the misses are distributed to workers.
    """

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    results: List[Optional[CompilationResult]] = [None] * len(specs)
    keys: Dict[int, str] = {}
    todo: List[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            keys[i] = cache.key(
                spec.approach, spec.kind, spec.size, spec.kwargs, spec.rename
            )
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                continue
        todo.append(i)

    def record(i: int, result: CompilationResult) -> None:
        results[i] = result
        # Timeouts are wall-clock-dependent, not deterministic per spec --
        # caching one would serve a one-off slow run forever.  Everything
        # else (ok / skipped / error) is a pure function of the spec.
        if cache is not None and result.status != "timeout":
            cache.put(keys[i], result)

    if jobs > 1 and len(todo) > 1:
        # Record each cell as it completes so a mid-sweep crash (worker OOM,
        # Ctrl-C, one bad cell) does not discard hours of finished work.
        with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
            futures = {pool.submit(_run_spec, specs[i]): i for i in todo}
            for fut in as_completed(futures):
                record(futures[fut], fut.result())
    else:
        for i in todo:
            record(i, _run_spec(specs[i]))

    return results  # type: ignore[return-value]  # every slot is filled above
