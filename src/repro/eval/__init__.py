"""Evaluation harness: runners, executors, and the declarative run API.

The modern surface is ``plan()`` / ``execute()`` over registered
experiments (:mod:`repro.eval.runs`), pluggable executors
(:mod:`repro.eval.executors`) and the crash-safe run journal
(:mod:`repro.eval.journal`); the classic ``experiment_*`` functions and
``run_cells`` survive as shims over the same machinery.
"""

from .metrics import CompilationResult, result_from_mapped
from .runners import (
    APPROACHES,
    architecture_label,
    make_architecture,
    run_cell,
    sample_verifies,
)
from .cache import CacheMergeConflict, ResultCache, code_version
from .parallel import CellSpec, run_cells
from .journal import JournalCorruptError, RunJournal, cell_key
from .executors import (
    EXECUTOR_REGISTRY,
    ExecutionContext,
    ExecutionOutcome,
    Executor,
    executor_names,
    get_executor,
    register_executor,
    run_specs,
)
from .dispatch import DispatchClient, DispatchServer, run_worker
from .runs import (
    EXPERIMENT_REGISTRY,
    ExperimentEntry,
    RunPlan,
    RunReport,
    adhoc_plan,
    execute,
    experiment_names,
    get_experiment,
    partition_cells,
    plan,
    register_experiment,
)
from .tables import format_results, format_series, format_table
from .experiments import (
    PAPER,
    QUICK,
    Profile,
    experiment_figure17_heavyhex,
    experiment_figure18_sycamore,
    experiment_figure19_lattice,
    experiment_figure27_sabre_randomness,
    experiment_linearity,
    experiment_partition_ablation,
    experiment_relaxed_vs_strict,
    experiment_table1,
    experiment_workload_sweep,
    run_all,
)

__all__ = [
    "CompilationResult",
    "result_from_mapped",
    "APPROACHES",
    "architecture_label",
    "make_architecture",
    "run_cell",
    "sample_verifies",
    "ResultCache",
    "CacheMergeConflict",
    "code_version",
    "CellSpec",
    "run_cells",
    "RunJournal",
    "JournalCorruptError",
    "cell_key",
    "DispatchClient",
    "DispatchServer",
    "run_worker",
    "EXECUTOR_REGISTRY",
    "ExecutionContext",
    "ExecutionOutcome",
    "Executor",
    "executor_names",
    "get_executor",
    "register_executor",
    "run_specs",
    "EXPERIMENT_REGISTRY",
    "ExperimentEntry",
    "RunPlan",
    "RunReport",
    "adhoc_plan",
    "execute",
    "experiment_names",
    "get_experiment",
    "partition_cells",
    "plan",
    "register_experiment",
    "format_results",
    "format_series",
    "format_table",
    "PAPER",
    "QUICK",
    "Profile",
    "experiment_figure17_heavyhex",
    "experiment_figure18_sycamore",
    "experiment_figure19_lattice",
    "experiment_figure27_sabre_randomness",
    "experiment_linearity",
    "experiment_partition_ablation",
    "experiment_relaxed_vs_strict",
    "experiment_table1",
    "experiment_workload_sweep",
    "run_all",
]
