"""Evaluation harness: workloads, runners and experiment definitions."""

from .metrics import CompilationResult, result_from_mapped
from .runners import APPROACHES, architecture_label, make_architecture, run_cell
from .cache import ResultCache, code_version
from .parallel import CellSpec, run_cells
from .tables import format_results, format_series, format_table
from .experiments import (
    PAPER,
    QUICK,
    Profile,
    experiment_figure17_heavyhex,
    experiment_figure18_sycamore,
    experiment_figure19_lattice,
    experiment_figure27_sabre_randomness,
    experiment_linearity,
    experiment_partition_ablation,
    experiment_relaxed_vs_strict,
    experiment_table1,
    experiment_workload_sweep,
    run_all,
)

__all__ = [
    "CompilationResult",
    "result_from_mapped",
    "APPROACHES",
    "architecture_label",
    "make_architecture",
    "run_cell",
    "ResultCache",
    "code_version",
    "CellSpec",
    "run_cells",
    "format_results",
    "format_series",
    "format_table",
    "PAPER",
    "QUICK",
    "Profile",
    "experiment_figure17_heavyhex",
    "experiment_figure18_sycamore",
    "experiment_figure19_lattice",
    "experiment_figure27_sabre_randomness",
    "experiment_linearity",
    "experiment_partition_ablation",
    "experiment_relaxed_vs_strict",
    "experiment_table1",
    "experiment_workload_sweep",
    "run_all",
]
