"""Experiment definitions regenerating every table and figure of Section 7.

Each experiment is a ``specs_*`` builder registered in the experiment
registry via :func:`~repro.eval.runs.register_experiment`; the declarative
run API (:func:`repro.eval.plan` / :func:`repro.eval.execute`) resolves the
name (synonyms included, unknown names raise with did-you-mean suggestions),
builds the ordered cell list, optionally slices a deterministic
``shard=(i, n)`` of it, and dispatches it through a registered executor --
``serial``, the topology-grouped ``pool``, or the journaling
``shard-coordinator`` (streamed JSONL journal, crash resume, straggler
retry).  The module CLI (``python -m repro.eval``) is a thin shell over
exactly that pair of calls.

The pre-redesign surface (``experiment_*`` functions, ``run_all``) survives
as deprecated shims over the same machinery.

Two profiles control instance sizes:

* ``quick``  (default) -- finishes in a few minutes on a laptop.  The
  analytical approach still runs at every paper size; the SABRE baseline is
  capped (cells above the cap are reported as "skipped"), and the SATMAP
  stand-in gets a short timeout (it times out beyond ~10 qubits anyway,
  exactly as in the paper).
* ``paper``  -- the full sweeps of the paper (SABRE up to 1024 qubits).
  Use ``--jobs``/``--cache``/``--shard`` to spread the cost over cores,
  re-runs and machines.
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..approaches import approach_names
from ..arch.registry import architecture_names
from ..registry import UnknownNameError
from ..workloads import workload_names
from .cache import CacheMergeConflict, ResultCache
from .executors import executor_names
from .metrics import CompilationResult
from .executors import run_specs
from .parallel import CellSpec
from .runs import (
    EXPERIMENT_REGISTRY,
    execute,
    experiment_names,
    get_experiment,
    plan,
    register_experiment,
)
from .tables import format_results, format_series, format_table

__all__ = [
    "Profile",
    "QUICK",
    "PAPER",
    "experiment_table1",
    "experiment_figure17_heavyhex",
    "experiment_figure18_sycamore",
    "experiment_figure19_lattice",
    "experiment_figure27_sabre_randomness",
    "experiment_relaxed_vs_strict",
    "experiment_partition_ablation",
    "experiment_linearity",
    "experiment_workload_sweep",
    "run_all",
    "main",
]


@dataclass(frozen=True)
class Profile:
    """Instance sizes and baseline caps for one evaluation profile."""

    name: str
    table1_sycamore: Tuple[int, ...]
    table1_heavyhex: Tuple[int, ...]
    table1_lattice: Tuple[int, ...]
    fig17_groups: Tuple[int, ...]
    fig18_m: Tuple[int, ...]
    fig19_m: Tuple[int, ...]
    sabre_max_qubits: int
    satmap_max_qubits: int
    satmap_timeout_s: float
    linearity_sizes: Tuple[int, ...]
    # Fig. 27 seed sweep (defaults keep hand-built Profiles working).  The
    # paper (and the seed repo) ran it on a 2x2 grid, which finishes in well
    # under a second -- the *paper* profile keeps that for fidelity.  The
    # quick profile uses a 6x6 grid: a sub-minute sweep that is substantial
    # enough for ``--jobs`` fan-out and cache warm-ups to be observable.
    fig27_m: int = 6
    fig27_seeds: Tuple[int, ...] = tuple(range(10))


QUICK = Profile(
    name="quick",
    table1_sycamore=(2, 4, 6),
    table1_heavyhex=(2, 4, 6),
    table1_lattice=(10, 20, 30),
    fig17_groups=(2, 4, 6, 8, 10, 12, 14, 16, 18, 20),
    fig18_m=(2, 4, 6, 8, 10),
    fig19_m=(10, 12, 16, 20, 24, 28, 32),
    sabre_max_qubits=int(os.environ.get("REPRO_SABRE_MAX_QUBITS", "100")),
    satmap_max_qubits=int(os.environ.get("REPRO_SATMAP_MAX_QUBITS", "30")),
    satmap_timeout_s=float(os.environ.get("REPRO_SATMAP_TIMEOUT_S", "20")),
    linearity_sizes=(2, 4, 6, 8, 10, 12),
)

PAPER = Profile(
    name="paper",
    table1_sycamore=(2, 4, 6),
    table1_heavyhex=(2, 4, 6),
    table1_lattice=(10, 20, 30),
    fig17_groups=tuple(range(2, 21, 2)),
    fig18_m=(2, 4, 6, 8, 10),
    fig19_m=(10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32),
    sabre_max_qubits=1024,
    satmap_max_qubits=1024,
    satmap_timeout_s=7200.0,
    linearity_sizes=(2, 4, 6, 8, 10, 12, 16, 20),
    fig27_m=2,  # the paper's own Fig. 27 configuration
)


def _profile(name: str) -> Profile:
    return PAPER if name == "paper" else QUICK


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (see repro.eval.runs)",
        DeprecationWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------------
# E1: Table 1
# ---------------------------------------------------------------------------


@register_experiment(
    "table1",
    synonyms=("table-1", "t1"),
    figure="Table 1",
    description="Ours vs SATMAP vs SABRE across Sycamore / heavy-hex / lattice",
)
def specs_table1(profile: Profile = QUICK) -> List[CellSpec]:
    cells: List[Tuple[str, int]] = []
    cells += [("sycamore", m) for m in profile.table1_sycamore]
    cells += [("heavyhex", g) for g in profile.table1_heavyhex]
    cells += [("lattice", m) for m in profile.table1_lattice]

    specs: List[CellSpec] = []
    for kind, size in cells:
        specs.append(CellSpec.make("ours", kind, size))
        specs.append(
            CellSpec.make(
                "satmap",
                kind,
                size,
                max_qubits=profile.satmap_max_qubits,
                timeout_s=profile.satmap_timeout_s,
            )
        )
        specs.append(
            CellSpec.make("sabre", kind, size, max_qubits=profile.sabre_max_qubits)
        )
    return specs


def experiment_table1(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Deprecated shim: ``execute(plan("table1", profile), ...)``."""

    _deprecated("experiment_table1", 'execute(plan("table1", ...))')
    return run_specs(specs_table1(profile), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E2-E4: Figures 17, 18, 19
# ---------------------------------------------------------------------------


@register_experiment(
    "fig17",
    synonyms=("figure17", "fig-17"),
    figure="Fig. 17",
    description="Depth and #SWAP vs qubit count on heavy-hex, ours vs SABRE",
)
def specs_figure17(profile: Profile = QUICK) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for groups in profile.fig17_groups:
        specs.append(CellSpec.make("ours", "heavyhex", groups))
        specs.append(
            CellSpec.make(
                "sabre", "heavyhex", groups, max_qubits=profile.sabre_max_qubits
            )
        )
    return specs


def experiment_figure17_heavyhex(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Deprecated shim: ``execute(plan("fig17", profile), ...)``."""

    _deprecated("experiment_figure17_heavyhex", 'execute(plan("fig17", ...))')
    return run_specs(specs_figure17(profile), jobs=jobs, cache=cache)


@register_experiment(
    "fig18",
    synonyms=("figure18", "fig-18"),
    figure="Fig. 18",
    description="Depth and #SWAP vs qubit count on Sycamore, ours vs SABRE",
)
def specs_figure18(profile: Profile = QUICK) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for m in profile.fig18_m:
        specs.append(CellSpec.make("ours", "sycamore", m))
        specs.append(
            CellSpec.make("sabre", "sycamore", m, max_qubits=profile.sabre_max_qubits)
        )
    return specs


def experiment_figure18_sycamore(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Deprecated shim: ``execute(plan("fig18", profile), ...)``."""

    _deprecated("experiment_figure18_sycamore", 'execute(plan("fig18", ...))')
    return run_specs(specs_figure18(profile), jobs=jobs, cache=cache)


@register_experiment(
    "fig19",
    synonyms=("figure19", "fig-19"),
    figure="Fig. 19",
    description="Depth and #SWAP on lattice surgery, ours vs SABRE vs LNN",
)
def specs_figure19(profile: Profile = QUICK) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for m in profile.fig19_m:
        specs.append(CellSpec.make("ours", "lattice", m))
        specs.append(CellSpec.make("lnn", "lattice", m))
        specs.append(
            CellSpec.make("sabre", "lattice", m, max_qubits=profile.sabre_max_qubits)
        )
    return specs


def experiment_figure19_lattice(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Deprecated shim: ``execute(plan("fig19", profile), ...)``."""

    _deprecated("experiment_figure19_lattice", 'execute(plan("fig19", ...))')
    return run_specs(specs_figure19(profile), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E6: Figure 27 -- SABRE randomness
# ---------------------------------------------------------------------------


def specs_figure27(seeds: Sequence[int] = tuple(range(10)), m: int = 2) -> List[CellSpec]:
    return [
        CellSpec.make("sabre", "grid", m, seed=seed, rename=f"sabre-seed{seed}")
        for seed in seeds
    ]


@register_experiment(
    "fig27",
    synonyms=("figure27", "fig-27", "sabre-seeds"),
    figure="Fig. 27",
    description="SABRE output variance across random seeds on an m*m grid",
)
def _specs_figure27_profile(profile: Profile = QUICK) -> List[CellSpec]:
    return specs_figure27(profile.fig27_seeds, profile.fig27_m)


def experiment_figure27_sabre_randomness(
    seeds: Sequence[int] = tuple(range(10)),
    m: int = 2,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Deprecated shim: ``execute(plan("fig27", profile), ...)``.  Direct
    calls default to the paper's 2x2 grid, as does the plan's paper profile;
    the quick profile uses ``fig27_m=6`` so the sweep is substantial enough
    for ``--jobs`` fan-out to matter."""

    _deprecated(
        "experiment_figure27_sabre_randomness", 'execute(plan("fig27", ...))'
    )
    return run_specs(specs_figure27(seeds, m), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E7: QFT-IE relaxed vs strict ablation
# ---------------------------------------------------------------------------


def specs_relaxed_vs_strict(
    sycamore_m: Sequence[int] = (4, 6, 8), lattice_m: Sequence[int] = (6, 8, 10)
) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for kind, sizes in (("sycamore", sycamore_m), ("lattice", lattice_m)):
        for m in sizes:
            for strict in (False, True):
                approach = "ours-strict-ie" if strict else "ours-relaxed-ie"
                specs.append(
                    CellSpec.make("ours", kind, m, strict_ie=strict, rename=approach)
                )
    return specs


@register_experiment(
    "relaxed",
    synonyms=("relaxed-vs-strict", "ie-ablation"),
    figure="Sec. 7.3",
    description="Depth of the unit-based mappers with relaxed vs strict QFT-IE",
)
def _specs_relaxed_profile(profile: Profile = QUICK) -> List[CellSpec]:
    return specs_relaxed_vs_strict()


def experiment_relaxed_vs_strict(
    sycamore_m: Sequence[int] = (4, 6, 8),
    lattice_m: Sequence[int] = (6, 8, 10),
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Deprecated shim: ``execute(plan("relaxed", profile), ...)``."""

    _deprecated("experiment_relaxed_vs_strict", 'execute(plan("relaxed", ...))')
    return run_specs(specs_relaxed_vs_strict(sycamore_m, lattice_m), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E8: sub-kernel partitioning ablation
# ---------------------------------------------------------------------------


def specs_partition_ablation(lattice_m: Sequence[int] = (6, 8, 10, 12)) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for m in lattice_m:
        specs.append(CellSpec.make("ours", "lattice", m))
        specs.append(CellSpec.make("lnn", "lattice", m))
        specs.append(CellSpec.make("greedy", "lattice", m, max_qubits=200))
    return specs


@register_experiment(
    "partition",
    synonyms=("partition-ablation",),
    figure="Insight 2",
    description="Unit-based mapping vs LNN-on-a-path vs greedy routing",
)
def _specs_partition_profile(profile: Profile = QUICK) -> List[CellSpec]:
    return specs_partition_ablation()


def experiment_partition_ablation(
    lattice_m: Sequence[int] = (6, 8, 10, 12),
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Deprecated shim: ``execute(plan("partition", profile), ...)``."""

    _deprecated("experiment_partition_ablation", 'execute(plan("partition", ...))')
    return run_specs(specs_partition_ablation(lattice_m), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E9: linear-depth scaling
# ---------------------------------------------------------------------------


@register_experiment(
    "linearity",
    synonyms=("linear-depth",),
    figure="Sec. 7.5",
    description="Depth / N for the analytical mappers over a size sweep",
)
def specs_linearity(profile: Profile = QUICK) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for m in profile.linearity_sizes:
        if m % 2 == 0:
            specs.append(CellSpec.make("ours", "sycamore", m))
        specs.append(CellSpec.make("ours", "heavyhex", m))
        specs.append(CellSpec.make("ours", "lattice", max(m, 3)))
    return specs


def experiment_linearity(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Deprecated shim: ``execute(plan("linearity", profile), ...)``."""

    _deprecated("experiment_linearity", 'execute(plan("linearity", ...))')
    return run_specs(specs_linearity(profile), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E10: registry cross-product sweep (any workload)
# ---------------------------------------------------------------------------

# Per-architecture sizes for the sweep profiles (paper-style size parameter).
_SWEEP_SIZES = {
    "quick": {"sycamore": 2, "heavyhex": 2, "lattice": 4, "grid": 3, "lnn": 9},
    "paper": {"sycamore": 4, "heavyhex": 4, "lattice": 8, "grid": 5, "lnn": 25},
}


def specs_workload_sweep(
    workload: str = "qft", profile: Profile = QUICK
) -> List[CellSpec]:
    """Every registered approach x every registered architecture, one size
    each, for ``workload``.

    Approaches that cannot compile the combination come back as typed
    ``unsupported`` rows rather than crashing -- the sweep *is* the
    cross-product acceptance check of the registry redesign.  Architectures
    registered by plugins after this module loaded are swept at the quick
    grid size.
    """

    sizes = _SWEEP_SIZES.get(profile.name, _SWEEP_SIZES["quick"])
    specs: List[CellSpec] = []
    for kind in architecture_names():
        size = sizes.get(kind, _SWEEP_SIZES["quick"].get(kind, 3))
        for approach in approach_names():
            # No explicit max_qubits: each approach's registered default cap
            # applies (e.g. SATMAP's), which is the point of the registry.
            specs.append(
                CellSpec.make(
                    approach,
                    kind,
                    size,
                    workload=workload,
                    timeout_s=profile.satmap_timeout_s,
                )
            )
    return specs


@register_experiment(
    "sweep",
    synonyms=("workload-sweep", "cross-product"),
    figure="registry",
    description="The full approach x architecture cross-product for one workload",
    options=("workload",),
    in_all=False,
)
def _specs_sweep_profile(
    profile: Profile = QUICK, *, workload: str = "qft"
) -> List[CellSpec]:
    return specs_workload_sweep(workload, profile)


def experiment_workload_sweep(
    workload: str = "qft",
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Deprecated shim: ``execute(plan("sweep", workload=...), ...)``."""

    _deprecated(
        "experiment_workload_sweep", 'execute(plan("sweep", workload=...))'
    )
    return run_specs(specs_workload_sweep(workload, profile), jobs=jobs, cache=cache)


def run_all(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> Dict[str, List[CompilationResult]]:
    """Deprecated shim: plan + execute every ``-e all`` experiment."""

    _deprecated("run_all", "plan()/execute() per experiment")
    out: Dict[str, List[CompilationResult]] = {}
    for name in experiment_names(in_all_only=True):
        report = execute(plan(name, profile), jobs=jobs, cache=cache)
        out[name] = report.results
    return out


# ---------------------------------------------------------------------------
# CLI: a thin shell over plan() / execute()
# ---------------------------------------------------------------------------


def _parse_serve(text: str) -> Tuple[str, int]:
    """Parse ``--serve [HOST:]PORT`` (bare port binds localhost only)."""

    host, _, port_s = text.rpartition(":")
    try:
        port = int(port_s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--serve expects [HOST:]PORT (e.g. 8765 or 0.0.0.0:8765), "
            f"got {text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise argparse.ArgumentTypeError(f"port out of range in {text!r}")
    return (host or "127.0.0.1", port)


def _parse_shard(text: str) -> Tuple[int, int]:
    try:
        index_s, count_s = text.split("/", 1)
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like I/N (e.g. 0/4), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard I/N needs 0 <= I < N, got {text!r}"
        )
    return index, count


def _experiment_table() -> str:
    rows = []
    for name in experiment_names():
        entry = get_experiment(name)
        syn = ", ".join(EXPERIMENT_REGISTRY.synonyms(name))
        rows.append(
            {
                "experiment": name,
                "figure": entry.figure or "-",
                "synonyms": syn or "-",
                "in 'all'": "yes" if entry.in_all else "no",
                "description": entry.description,
            }
        )
    return format_table(
        rows, ["experiment", "figure", "synonyms", "in 'all'", "description"]
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures (text form)."
    )
    parser.add_argument(
        "--experiment",
        "-e",
        action="append",
        metavar="NAME",
        help="experiment(s) to run: any registered name or synonym "
        f"({', '.join(experiment_names())}), or 'all' (default)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered experiments and exit"
    )
    parser.add_argument(
        "--profile", choices=("quick", "paper"), default="quick", help="size profile"
    )
    parser.add_argument(
        "--workload",
        default=None,
        help="workload for the 'sweep' experiment (any registered name: "
        f"{', '.join(workload_names())}, ...); implies -e sweep when no "
        "experiment is selected",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes per experiment (cells fan out across cores)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        metavar="NAME",
        help="execution strategy: one of "
        f"{', '.join(executor_names())} (default: serial, or pool when "
        "--jobs > 1, or shard-coordinator when --journal/--resume is given)",
    )
    parser.add_argument(
        "--shard",
        type=_parse_shard,
        default=None,
        metavar="I/N",
        help="run slice I of a deterministic N-way partition of the plan "
        "(balanced by topology group); the union of all N slices is the "
        "full experiment",
    )
    parser.add_argument(
        "--verify",
        choices=("full", "sample", "off"),
        default="full",
        help="per-cell verification policy (sample = deterministic ~25%% "
        "subset; policy is part of the cache key)",
    )
    parser.add_argument(
        "--journal",
        metavar="DIR",
        default=None,
        help="stream per-cell results to an append-only JSONL run journal "
        "in DIR (implies the shard-coordinator executor)",
    )
    parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="resume a crashed run from its journal in DIR: cells already "
        "journaled are served, everything else runs (same code version and "
        "plan required)",
    )
    parser.add_argument(
        "--store",
        metavar="DB",
        default=None,
        help="record the run (meta + every journaled cell) into a SQLite "
        "experiment store at DB, alongside or instead of --journal "
        "(implies the shard-coordinator executor; query with "
        "'python -m repro.store query DB')",
    )
    parser.add_argument(
        "--serve",
        type=_parse_serve,
        default=None,
        metavar="[HOST:]PORT",
        help="serve the plan's cells as a work-stealing dispatcher on this "
        "address (implies --executor dispatch); workers join with --join. "
        "--jobs local workers are spawned too (use --jobs 0 to only serve)",
    )
    parser.add_argument(
        "--join",
        metavar="URL",
        default=None,
        help="run as a worker: join the dispatcher at URL (e.g. "
        "http://host:8765), compute leased cells until the run completes, "
        "then exit; all other experiment options are ignored",
    )
    parser.add_argument(
        "--worker-id",
        metavar="NAME",
        default=None,
        help="worker name to join with (default: hostname-pid)",
    )
    parser.add_argument(
        "--lease-s",
        type=float,
        default=30.0,
        metavar="S",
        help="dispatcher lease duration: a cell whose worker misses "
        "heartbeats for this long is reassigned (default 30)",
    )
    parser.add_argument(
        "--heartbeat-s",
        type=float,
        default=None,
        metavar="S",
        help="worker heartbeat interval (default: lease duration / 4)",
    )
    parser.add_argument(
        "--journal-fsync",
        type=int,
        default=1,
        metavar="N",
        help="fsync the run journal every N cells (default 1: every cell "
        "is durable; 0 disables fsync for throwaway runs)",
    )
    parser.add_argument(
        "--retry-timeout-mult",
        type=float,
        default=1.0,
        metavar="X",
        help="scale a straggler retry's timeout budget by X**attempt "
        "(default 1.0: retries keep the original budget)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="result cache directory, or a *.db path for the SQLite "
        "experiment store backend; re-runs only compute cells not already "
        "cached under the current code version",
    )
    parser.add_argument(
        "--cache-merge",
        metavar="DIR",
        nargs="+",
        default=None,
        help="merge the given cache directories (or *.db stores) into "
        "--cache (union of sharded sweeps; conflicting entries raise) and "
        "exit unless experiments are also requested",
    )
    args = parser.parse_args(argv)

    if args.list:
        print(_experiment_table())
        return 0
    if args.join:
        # Worker mode: no plan of our own -- the dispatcher serves specs.
        from .dispatch import DispatchError, run_worker

        if args.serve:
            parser.error("--join (worker) and --serve (dispatcher) conflict")
        try:
            stats = run_worker(
                args.join,
                worker_id=args.worker_id,
                heartbeat_s=args.heartbeat_s,
            )
        except DispatchError as exc:
            print(f"worker failed: {exc}", file=sys.stderr)
            return 1
        print(
            f"worker done: {stats['cells']} cells computed, "
            f"{stats['stale']} stale, {stats['leased']} leased"
        )
        return 0
    if args.serve:
        if args.executor not in (None, "dispatch"):
            parser.error("--serve requires --executor dispatch")
        args.executor = "dispatch"
    if args.jobs < 1 and not (args.serve and args.jobs == 0):
        parser.error(
            f"--jobs must be >= 1, got {args.jobs} "
            "(--jobs 0 is only meaningful with --serve: serve-only, no "
            "local workers)"
        )
    import sqlite3

    try:
        cache = ResultCache(args.cache) if args.cache else None
    except (OSError, sqlite3.Error) as exc:
        parser.error(f"--cache {args.cache!r} is not usable: {exc}")
    if args.cache_merge:
        if cache is None:
            parser.error("--cache-merge requires --cache DIR (the destination)")
        for src in args.cache_merge:
            try:
                stats = cache.merge(src)
            except FileNotFoundError as exc:
                parser.error(str(exc))
            except CacheMergeConflict as exc:
                parser.error(f"cache merge conflict: {exc}")
            print(
                f"merged {src}: {stats['imported']} imported, "
                f"{stats['skipped']} already present, {stats['invalid']} invalid"
            )
        if not args.experiment:
            return 0

    wanted = args.experiment or (["sweep"] if args.workload else ["all"])
    if "all" in wanted:
        wanted = list(experiment_names(in_all_only=True))
    try:
        wanted = [get_experiment(name).name for name in wanted]
    except UnknownNameError as exc:
        parser.error(str(exc))
    if args.workload and any(name != "sweep" for name in wanted):
        parser.error(
            "--workload only applies to the 'sweep' experiment; the figure "
            "experiments reproduce the paper's QFT results"
        )
    if (args.journal or args.resume or args.store) and len(wanted) != 1:
        parser.error("--journal/--resume/--store apply to exactly one experiment")
    if args.journal and args.resume:
        parser.error("pass either --journal (fresh run) or --resume, not both")

    for name in wanted:
        options = {"workload": args.workload or "qft"} if name == "sweep" else {}
        run_plan = plan(
            name,
            args.profile,
            shard=args.shard,
            verify=args.verify,
            **options,
        )
        print(f"\n=== {run_plan.describe()} ===")
        dispatch_opts: Optional[Dict[str, object]] = None
        if args.serve:
            host, port = args.serve
            dispatch_opts = {
                "host": host,
                "port": port,
                "lease_s": args.lease_s,
                "heartbeat_s": args.heartbeat_s,
                "spawn_workers": args.jobs,
                "on_start": lambda url: print(
                    f"dispatcher serving at {url} "
                    f"(workers join with: python -m repro.eval --join {url})"
                ),
            }
        elif args.executor == "dispatch":
            dispatch_opts = {
                "lease_s": args.lease_s,
                "heartbeat_s": args.heartbeat_s,
            }
        try:
            report = execute(
                run_plan,
                executor=args.executor,
                jobs=max(1, args.jobs),
                cache=cache,
                journal=args.journal,
                resume=args.resume,
                store=args.store,
                retry_timeout_multiplier=args.retry_timeout_mult,
                journal_fsync_every=args.journal_fsync,
                dispatch=dispatch_opts,
            )
        except UnknownNameError as exc:
            parser.error(str(exc))
        except (FileExistsError, FileNotFoundError, ValueError) as exc:
            parser.error(str(exc))
        print(format_results(report.results))
        if name in ("fig17", "fig18", "fig19"):
            print("\ndepth series:")
            print(format_series(report.results, "depth"))
            print("swap series:")
            print(format_series(report.results, "swap_count"))
        print(report.summary())
    if cache is not None:
        stats = cache.stats()
        print(f"\ncache: {stats['hits']} hits, {stats['misses']} misses")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
