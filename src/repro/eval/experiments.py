"""Experiment definitions regenerating every table and figure of Section 7.

Each ``experiment_*`` function returns a list of
:class:`~repro.eval.metrics.CompilationResult` rows; the module's CLI
(``python -m repro.eval.experiments --all``) renders them as text tables of
the same shape as the paper's Table 1 and Figures 17-19/27, which is what
EXPERIMENTS.md records.

Two profiles control instance sizes:

* ``quick``  (default) -- finishes in a few minutes on a laptop.  The
  analytical approach still runs at every paper size; the pure-Python SABRE
  baseline is capped (cells above the cap are reported as "skipped"), and the
  SATMAP stand-in gets a short timeout (it times out beyond ~10 qubits anyway,
  exactly as in the paper).
* ``paper``  -- the full sweeps of the paper (SABRE up to 1024 qubits).  This
  takes hours with a pure-Python SABRE; use it only when you really want the
  full curves.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..arch import GridTopology, LatticeSurgeryTopology, SycamoreTopology
from ..baselines import SabreMapper
from ..core import compile_qft
from ..verify import check_mapped_qft_structure
from .metrics import CompilationResult, result_from_mapped
from .runners import architecture_label, make_architecture, run_cell
from .tables import format_results, format_series, format_table

__all__ = [
    "Profile",
    "QUICK",
    "PAPER",
    "experiment_table1",
    "experiment_figure17_heavyhex",
    "experiment_figure18_sycamore",
    "experiment_figure19_lattice",
    "experiment_figure27_sabre_randomness",
    "experiment_relaxed_vs_strict",
    "experiment_partition_ablation",
    "experiment_linearity",
    "run_all",
    "main",
]


@dataclass(frozen=True)
class Profile:
    """Instance sizes and baseline caps for one evaluation profile."""

    name: str
    table1_sycamore: Tuple[int, ...]
    table1_heavyhex: Tuple[int, ...]
    table1_lattice: Tuple[int, ...]
    fig17_groups: Tuple[int, ...]
    fig18_m: Tuple[int, ...]
    fig19_m: Tuple[int, ...]
    sabre_max_qubits: int
    satmap_max_qubits: int
    satmap_timeout_s: float
    linearity_sizes: Tuple[int, ...]


QUICK = Profile(
    name="quick",
    table1_sycamore=(2, 4, 6),
    table1_heavyhex=(2, 4, 6),
    table1_lattice=(10, 20, 30),
    fig17_groups=(2, 4, 6, 8, 10, 12, 14, 16, 18, 20),
    fig18_m=(2, 4, 6, 8, 10),
    fig19_m=(10, 12, 16, 20, 24, 28, 32),
    sabre_max_qubits=int(os.environ.get("REPRO_SABRE_MAX_QUBITS", "100")),
    satmap_max_qubits=int(os.environ.get("REPRO_SATMAP_MAX_QUBITS", "30")),
    satmap_timeout_s=float(os.environ.get("REPRO_SATMAP_TIMEOUT_S", "20")),
    linearity_sizes=(2, 4, 6, 8, 10, 12),
)

PAPER = Profile(
    name="paper",
    table1_sycamore=(2, 4, 6),
    table1_heavyhex=(2, 4, 6),
    table1_lattice=(10, 20, 30),
    fig17_groups=tuple(range(2, 21, 2)),
    fig18_m=(2, 4, 6, 8, 10),
    fig19_m=(10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32),
    sabre_max_qubits=1024,
    satmap_max_qubits=1024,
    satmap_timeout_s=7200.0,
    linearity_sizes=(2, 4, 6, 8, 10, 12, 16, 20),
)


def _profile(name: str) -> Profile:
    return PAPER if name == "paper" else QUICK


# ---------------------------------------------------------------------------
# E1: Table 1
# ---------------------------------------------------------------------------


def experiment_table1(profile: Profile = QUICK) -> List[CompilationResult]:
    """Ours vs SATMAP vs SABRE across Sycamore / heavy-hex / lattice surgery."""

    cells: List[Tuple[str, int]] = []
    cells += [("sycamore", m) for m in profile.table1_sycamore]
    cells += [("heavyhex", g) for g in profile.table1_heavyhex]
    cells += [("lattice", m) for m in profile.table1_lattice]

    results: List[CompilationResult] = []
    for kind, size in cells:
        results.append(run_cell("ours", kind, size))
        results.append(
            run_cell(
                "satmap",
                kind,
                size,
                max_qubits=profile.satmap_max_qubits,
                timeout_s=profile.satmap_timeout_s,
            )
        )
        results.append(
            run_cell("sabre", kind, size, max_qubits=profile.sabre_max_qubits)
        )
    return results


# ---------------------------------------------------------------------------
# E2-E4: Figures 17, 18, 19
# ---------------------------------------------------------------------------


def experiment_figure17_heavyhex(profile: Profile = QUICK) -> List[CompilationResult]:
    """Depth and #SWAP vs qubit count on heavy-hex, ours vs SABRE (Fig. 17)."""

    results: List[CompilationResult] = []
    for groups in profile.fig17_groups:
        results.append(run_cell("ours", "heavyhex", groups))
        results.append(
            run_cell("sabre", "heavyhex", groups, max_qubits=profile.sabre_max_qubits)
        )
    return results


def experiment_figure18_sycamore(profile: Profile = QUICK) -> List[CompilationResult]:
    """Depth and #SWAP vs qubit count on Sycamore, ours vs SABRE (Fig. 18)."""

    results: List[CompilationResult] = []
    for m in profile.fig18_m:
        results.append(run_cell("ours", "sycamore", m))
        results.append(
            run_cell("sabre", "sycamore", m, max_qubits=profile.sabre_max_qubits)
        )
    return results


def experiment_figure19_lattice(profile: Profile = QUICK) -> List[CompilationResult]:
    """Depth and #SWAP vs qubit count on lattice surgery, ours vs SABRE vs LNN
    (Fig. 19, 100 to 1024 qubits)."""

    results: List[CompilationResult] = []
    for m in profile.fig19_m:
        results.append(run_cell("ours", "lattice", m))
        results.append(run_cell("lnn", "lattice", m))
        results.append(
            run_cell("sabre", "lattice", m, max_qubits=profile.sabre_max_qubits)
        )
    return results


# ---------------------------------------------------------------------------
# E6: Figure 27 -- SABRE randomness
# ---------------------------------------------------------------------------


def experiment_figure27_sabre_randomness(
    seeds: Sequence[int] = tuple(range(10)), m: int = 2
) -> List[CompilationResult]:
    """SABRE output variance across random seeds on a 2x2 grid (Fig. 27)."""

    topo = GridTopology(m, m)
    label = f"Grid {m}*{m}"
    results: List[CompilationResult] = []
    for seed in seeds:
        mapper = SabreMapper(topo, seed=seed)
        start = time.perf_counter()
        mapped = mapper.map_qft(topo.num_qubits)
        elapsed = time.perf_counter() - start
        verified = check_mapped_qft_structure(mapped, topo.num_qubits).ok
        res = result_from_mapped(f"sabre-seed{seed}", label, mapped, elapsed, verified)
        results.append(res)
    return results


# ---------------------------------------------------------------------------
# E7: QFT-IE relaxed vs strict ablation
# ---------------------------------------------------------------------------


def experiment_relaxed_vs_strict(
    sycamore_m: Sequence[int] = (4, 6, 8), lattice_m: Sequence[int] = (6, 8, 10)
) -> List[CompilationResult]:
    """Depth of the unit-based mappers with relaxed vs strict QFT-IE."""

    results: List[CompilationResult] = []
    for m in sycamore_m:
        for strict in (False, True):
            topo = SycamoreTopology(m)
            start = time.perf_counter()
            mapped = compile_qft(topo, strict_ie=strict)
            elapsed = time.perf_counter() - start
            verified = check_mapped_qft_structure(mapped, topo.num_qubits).ok
            approach = "ours-strict-ie" if strict else "ours-relaxed-ie"
            results.append(
                result_from_mapped(approach, f"{m}*{m} Sycamore", mapped, elapsed, verified)
            )
    for m in lattice_m:
        for strict in (False, True):
            topo = LatticeSurgeryTopology(m)
            start = time.perf_counter()
            mapped = compile_qft(topo, strict_ie=strict)
            elapsed = time.perf_counter() - start
            verified = check_mapped_qft_structure(mapped, topo.num_qubits).ok
            approach = "ours-strict-ie" if strict else "ours-relaxed-ie"
            results.append(
                result_from_mapped(
                    approach, f"Lattice surgery {m}*{m}", mapped, elapsed, verified
                )
            )
    return results


# ---------------------------------------------------------------------------
# E8: sub-kernel partitioning ablation
# ---------------------------------------------------------------------------


def experiment_partition_ablation(
    lattice_m: Sequence[int] = (6, 8, 10, 12)
) -> List[CompilationResult]:
    """Unit-based mapping (partitioned) vs LNN-on-a-path vs greedy routing on
    the FT grid: quantifies what sub-kernel partitioning buys (Insight 2)."""

    results: List[CompilationResult] = []
    for m in lattice_m:
        results.append(run_cell("ours", "lattice", m))
        results.append(run_cell("lnn", "lattice", m))
        results.append(run_cell("greedy", "lattice", m, max_qubits=200))
    return results


# ---------------------------------------------------------------------------
# E9: linear-depth scaling
# ---------------------------------------------------------------------------


def experiment_linearity(profile: Profile = QUICK) -> List[CompilationResult]:
    """Depth / N for the analytical mappers over a size sweep (the paper's
    linear-depth guarantee: ~5N heavy-hex, ~7N Sycamore, ~5N lattice)."""

    results: List[CompilationResult] = []
    for m in profile.linearity_sizes:
        if m % 2 == 0:
            results.append(run_cell("ours", "sycamore", m))
        results.append(run_cell("ours", "heavyhex", m))
        results.append(run_cell("ours", "lattice", max(m, 3)))
    return results


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


_EXPERIMENTS = {
    "table1": lambda prof: experiment_table1(prof),
    "fig17": lambda prof: experiment_figure17_heavyhex(prof),
    "fig18": lambda prof: experiment_figure18_sycamore(prof),
    "fig19": lambda prof: experiment_figure19_lattice(prof),
    "fig27": lambda prof: experiment_figure27_sabre_randomness(),
    "relaxed": lambda prof: experiment_relaxed_vs_strict(),
    "partition": lambda prof: experiment_partition_ablation(),
    "linearity": lambda prof: experiment_linearity(prof),
}


def run_all(profile: Profile = QUICK) -> Dict[str, List[CompilationResult]]:
    return {name: fn(profile) for name, fn in _EXPERIMENTS.items()}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures (text form)."
    )
    parser.add_argument(
        "--experiment",
        "-e",
        action="append",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="experiment(s) to run (default: all)",
    )
    parser.add_argument(
        "--profile", choices=("quick", "paper"), default="quick", help="size profile"
    )
    args = parser.parse_args(argv)

    profile = _profile(args.profile)
    wanted = args.experiment or ["all"]
    if "all" in wanted:
        wanted = sorted(_EXPERIMENTS)

    for name in wanted:
        print(f"\n=== {name} (profile: {profile.name}) ===")
        results = _EXPERIMENTS[name](profile)
        print(format_results(results))
        if name in ("fig17", "fig18", "fig19"):
            print("\ndepth series:")
            print(format_series(results, "depth"))
            print("swap series:")
            print(format_series(results, "swap_count"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
