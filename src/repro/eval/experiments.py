"""Experiment definitions regenerating every table and figure of Section 7.

Each ``experiment_*`` function returns a list of
:class:`~repro.eval.metrics.CompilationResult` rows; the module's CLI
(``python -m repro.eval --experiment all``) renders them as text tables of
the same shape as the paper's Table 1 and Figures 17-19/27, which is what
EXPERIMENTS.md records.

Experiments are declared as lists of :class:`~repro.eval.parallel.CellSpec`
and executed through :func:`~repro.eval.parallel.run_cells`, so every
experiment transparently supports ``jobs`` (process fan-out, with cells
grouped by topology so workers build each coupling graph's tables once) and
``cache`` (incremental re-runs); the CLI exposes both as ``--jobs N`` /
``--cache DIR``, plus ``--cache-merge DIR...`` to union sharded caches.

Two profiles control instance sizes:

* ``quick``  (default) -- finishes in a few minutes on a laptop.  The
  analytical approach still runs at every paper size; the SABRE baseline is
  capped (cells above the cap are reported as "skipped"), and the SATMAP
  stand-in gets a short timeout (it times out beyond ~10 qubits anyway,
  exactly as in the paper).
* ``paper``  -- the full sweeps of the paper (SABRE up to 1024 qubits).
  Use ``--jobs``/``--cache`` to spread the cost over cores and re-runs.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..approaches import approach_names
from ..arch.registry import architecture_names
from ..workloads import workload_names
from .cache import ResultCache
from .metrics import CompilationResult
from .parallel import CellSpec, run_cells
from .tables import format_results, format_series

__all__ = [
    "Profile",
    "QUICK",
    "PAPER",
    "experiment_table1",
    "experiment_figure17_heavyhex",
    "experiment_figure18_sycamore",
    "experiment_figure19_lattice",
    "experiment_figure27_sabre_randomness",
    "experiment_relaxed_vs_strict",
    "experiment_partition_ablation",
    "experiment_linearity",
    "experiment_workload_sweep",
    "run_all",
    "main",
]


@dataclass(frozen=True)
class Profile:
    """Instance sizes and baseline caps for one evaluation profile."""

    name: str
    table1_sycamore: Tuple[int, ...]
    table1_heavyhex: Tuple[int, ...]
    table1_lattice: Tuple[int, ...]
    fig17_groups: Tuple[int, ...]
    fig18_m: Tuple[int, ...]
    fig19_m: Tuple[int, ...]
    sabre_max_qubits: int
    satmap_max_qubits: int
    satmap_timeout_s: float
    linearity_sizes: Tuple[int, ...]
    # Fig. 27 seed sweep (defaults keep hand-built Profiles working).  The
    # paper (and the seed repo) ran it on a 2x2 grid, which finishes in well
    # under a second -- the *paper* profile keeps that for fidelity.  The
    # quick profile uses a 6x6 grid: a sub-minute sweep that is substantial
    # enough for ``--jobs`` fan-out and cache warm-ups to be observable.
    fig27_m: int = 6
    fig27_seeds: Tuple[int, ...] = tuple(range(10))


QUICK = Profile(
    name="quick",
    table1_sycamore=(2, 4, 6),
    table1_heavyhex=(2, 4, 6),
    table1_lattice=(10, 20, 30),
    fig17_groups=(2, 4, 6, 8, 10, 12, 14, 16, 18, 20),
    fig18_m=(2, 4, 6, 8, 10),
    fig19_m=(10, 12, 16, 20, 24, 28, 32),
    sabre_max_qubits=int(os.environ.get("REPRO_SABRE_MAX_QUBITS", "100")),
    satmap_max_qubits=int(os.environ.get("REPRO_SATMAP_MAX_QUBITS", "30")),
    satmap_timeout_s=float(os.environ.get("REPRO_SATMAP_TIMEOUT_S", "20")),
    linearity_sizes=(2, 4, 6, 8, 10, 12),
)

PAPER = Profile(
    name="paper",
    table1_sycamore=(2, 4, 6),
    table1_heavyhex=(2, 4, 6),
    table1_lattice=(10, 20, 30),
    fig17_groups=tuple(range(2, 21, 2)),
    fig18_m=(2, 4, 6, 8, 10),
    fig19_m=(10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32),
    sabre_max_qubits=1024,
    satmap_max_qubits=1024,
    satmap_timeout_s=7200.0,
    linearity_sizes=(2, 4, 6, 8, 10, 12, 16, 20),
    fig27_m=2,  # the paper's own Fig. 27 configuration
)


def _profile(name: str) -> Profile:
    return PAPER if name == "paper" else QUICK


# ---------------------------------------------------------------------------
# E1: Table 1
# ---------------------------------------------------------------------------


def specs_table1(profile: Profile = QUICK) -> List[CellSpec]:
    cells: List[Tuple[str, int]] = []
    cells += [("sycamore", m) for m in profile.table1_sycamore]
    cells += [("heavyhex", g) for g in profile.table1_heavyhex]
    cells += [("lattice", m) for m in profile.table1_lattice]

    specs: List[CellSpec] = []
    for kind, size in cells:
        specs.append(CellSpec.make("ours", kind, size))
        specs.append(
            CellSpec.make(
                "satmap",
                kind,
                size,
                max_qubits=profile.satmap_max_qubits,
                timeout_s=profile.satmap_timeout_s,
            )
        )
        specs.append(
            CellSpec.make("sabre", kind, size, max_qubits=profile.sabre_max_qubits)
        )
    return specs


def experiment_table1(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Ours vs SATMAP vs SABRE across Sycamore / heavy-hex / lattice surgery."""

    return run_cells(specs_table1(profile), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E2-E4: Figures 17, 18, 19
# ---------------------------------------------------------------------------


def specs_figure17(profile: Profile = QUICK) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for groups in profile.fig17_groups:
        specs.append(CellSpec.make("ours", "heavyhex", groups))
        specs.append(
            CellSpec.make(
                "sabre", "heavyhex", groups, max_qubits=profile.sabre_max_qubits
            )
        )
    return specs


def experiment_figure17_heavyhex(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Depth and #SWAP vs qubit count on heavy-hex, ours vs SABRE (Fig. 17)."""

    return run_cells(specs_figure17(profile), jobs=jobs, cache=cache)


def specs_figure18(profile: Profile = QUICK) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for m in profile.fig18_m:
        specs.append(CellSpec.make("ours", "sycamore", m))
        specs.append(
            CellSpec.make("sabre", "sycamore", m, max_qubits=profile.sabre_max_qubits)
        )
    return specs


def experiment_figure18_sycamore(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Depth and #SWAP vs qubit count on Sycamore, ours vs SABRE (Fig. 18)."""

    return run_cells(specs_figure18(profile), jobs=jobs, cache=cache)


def specs_figure19(profile: Profile = QUICK) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for m in profile.fig19_m:
        specs.append(CellSpec.make("ours", "lattice", m))
        specs.append(CellSpec.make("lnn", "lattice", m))
        specs.append(
            CellSpec.make("sabre", "lattice", m, max_qubits=profile.sabre_max_qubits)
        )
    return specs


def experiment_figure19_lattice(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Depth and #SWAP vs qubit count on lattice surgery, ours vs SABRE vs LNN
    (Fig. 19, 100 to 1024 qubits)."""

    return run_cells(specs_figure19(profile), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E6: Figure 27 -- SABRE randomness
# ---------------------------------------------------------------------------


def specs_figure27(seeds: Sequence[int] = tuple(range(10)), m: int = 2) -> List[CellSpec]:
    return [
        CellSpec.make("sabre", "grid", m, seed=seed, rename=f"sabre-seed{seed}")
        for seed in seeds
    ]


def experiment_figure27_sabre_randomness(
    seeds: Sequence[int] = tuple(range(10)),
    m: int = 2,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """SABRE output variance across random seeds on an ``m x m`` grid
    (Fig. 27).  Direct calls default to the paper's 2x2 grid, as does the
    CLI's paper profile; the quick profile passes ``fig27_m=6`` so the sweep
    is substantial enough for ``--jobs`` fan-out to matter."""

    return run_cells(specs_figure27(seeds, m), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E7: QFT-IE relaxed vs strict ablation
# ---------------------------------------------------------------------------


def specs_relaxed_vs_strict(
    sycamore_m: Sequence[int] = (4, 6, 8), lattice_m: Sequence[int] = (6, 8, 10)
) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for kind, sizes in (("sycamore", sycamore_m), ("lattice", lattice_m)):
        for m in sizes:
            for strict in (False, True):
                approach = "ours-strict-ie" if strict else "ours-relaxed-ie"
                specs.append(
                    CellSpec.make("ours", kind, m, strict_ie=strict, rename=approach)
                )
    return specs


def experiment_relaxed_vs_strict(
    sycamore_m: Sequence[int] = (4, 6, 8),
    lattice_m: Sequence[int] = (6, 8, 10),
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Depth of the unit-based mappers with relaxed vs strict QFT-IE."""

    return run_cells(specs_relaxed_vs_strict(sycamore_m, lattice_m), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E8: sub-kernel partitioning ablation
# ---------------------------------------------------------------------------


def specs_partition_ablation(lattice_m: Sequence[int] = (6, 8, 10, 12)) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for m in lattice_m:
        specs.append(CellSpec.make("ours", "lattice", m))
        specs.append(CellSpec.make("lnn", "lattice", m))
        specs.append(CellSpec.make("greedy", "lattice", m, max_qubits=200))
    return specs


def experiment_partition_ablation(
    lattice_m: Sequence[int] = (6, 8, 10, 12),
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Unit-based mapping (partitioned) vs LNN-on-a-path vs greedy routing on
    the FT grid: quantifies what sub-kernel partitioning buys (Insight 2)."""

    return run_cells(specs_partition_ablation(lattice_m), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E9: linear-depth scaling
# ---------------------------------------------------------------------------


def specs_linearity(profile: Profile = QUICK) -> List[CellSpec]:
    specs: List[CellSpec] = []
    for m in profile.linearity_sizes:
        if m % 2 == 0:
            specs.append(CellSpec.make("ours", "sycamore", m))
        specs.append(CellSpec.make("ours", "heavyhex", m))
        specs.append(CellSpec.make("ours", "lattice", max(m, 3)))
    return specs


def experiment_linearity(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """Depth / N for the analytical mappers over a size sweep (the paper's
    linear-depth guarantee: ~5N heavy-hex, ~7N Sycamore, ~5N lattice)."""

    return run_cells(specs_linearity(profile), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# E10: registry cross-product sweep (any workload)
# ---------------------------------------------------------------------------

# Per-architecture sizes for the sweep profiles (paper-style size parameter).
_SWEEP_SIZES = {
    "quick": {"sycamore": 2, "heavyhex": 2, "lattice": 4, "grid": 3, "lnn": 9},
    "paper": {"sycamore": 4, "heavyhex": 4, "lattice": 8, "grid": 5, "lnn": 25},
}


def specs_workload_sweep(
    workload: str = "qft", profile: Profile = QUICK
) -> List[CellSpec]:
    """Every registered approach x every registered architecture, one size
    each, for ``workload``.

    Approaches that cannot compile the combination come back as typed
    ``unsupported`` rows rather than crashing -- the sweep *is* the
    cross-product acceptance check of the registry redesign.  Architectures
    registered by plugins after this module loaded are swept at the quick
    grid size.
    """

    sizes = _SWEEP_SIZES.get(profile.name, _SWEEP_SIZES["quick"])
    specs: List[CellSpec] = []
    for kind in architecture_names():
        size = sizes.get(kind, _SWEEP_SIZES["quick"].get(kind, 3))
        for approach in approach_names():
            # No explicit max_qubits: each approach's registered default cap
            # applies (e.g. SATMAP's), which is the point of the registry.
            specs.append(
                CellSpec.make(
                    approach,
                    kind,
                    size,
                    workload=workload,
                    timeout_s=profile.satmap_timeout_s,
                )
            )
    return specs


def experiment_workload_sweep(
    workload: str = "qft",
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[CompilationResult]:
    """The full approach x architecture cross-product for one workload."""

    return run_cells(specs_workload_sweep(workload, profile), jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


_EXPERIMENTS = {
    "table1": lambda prof, **kw: experiment_table1(prof, **kw),
    "fig17": lambda prof, **kw: experiment_figure17_heavyhex(prof, **kw),
    "fig18": lambda prof, **kw: experiment_figure18_sycamore(prof, **kw),
    "fig19": lambda prof, **kw: experiment_figure19_lattice(prof, **kw),
    "fig27": lambda prof, **kw: experiment_figure27_sabre_randomness(
        prof.fig27_seeds, prof.fig27_m, **kw
    ),
    "relaxed": lambda prof, **kw: experiment_relaxed_vs_strict(**kw),
    "partition": lambda prof, **kw: experiment_partition_ablation(**kw),
    "linearity": lambda prof, **kw: experiment_linearity(prof, **kw),
    "sweep": lambda prof, workload="qft", **kw: experiment_workload_sweep(
        workload, prof, **kw
    ),
}

#: experiments included in "-e all" (the paper set; "sweep" is on demand)
_PAPER_EXPERIMENTS = tuple(n for n in _EXPERIMENTS if n != "sweep")


def run_all(
    profile: Profile = QUICK,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> Dict[str, List[CompilationResult]]:
    return {
        name: _EXPERIMENTS[name](profile, jobs=jobs, cache=cache)
        for name in _PAPER_EXPERIMENTS
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures (text form)."
    )
    parser.add_argument(
        "--experiment",
        "-e",
        action="append",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="experiment(s) to run (default: all)",
    )
    parser.add_argument(
        "--profile", choices=("quick", "paper"), default="quick", help="size profile"
    )
    parser.add_argument(
        "--workload",
        default=None,
        help="workload for the 'sweep' experiment (any registered name: "
        f"{', '.join(workload_names())}, ...); implies -e sweep when no "
        "experiment is selected",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes per experiment (cells fan out across cores)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="result cache directory; re-runs only compute cells not already "
        "cached under the current code version",
    )
    parser.add_argument(
        "--cache-merge",
        metavar="DIR",
        nargs="+",
        default=None,
        help="merge the given cache directories into --cache (union of "
        "sharded sweeps) and exit unless experiments are also requested",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    profile = _profile(args.profile)
    try:
        cache = ResultCache(args.cache) if args.cache else None
    except OSError as exc:
        parser.error(f"--cache {args.cache!r} is not a usable directory: {exc}")
    if args.cache_merge:
        if cache is None:
            parser.error("--cache-merge requires --cache DIR (the destination)")
        for src in args.cache_merge:
            try:
                stats = cache.merge(src)
            except FileNotFoundError as exc:
                parser.error(str(exc))
            print(
                f"merged {src}: {stats['imported']} imported, "
                f"{stats['skipped']} already present, {stats['invalid']} invalid"
            )
        if not args.experiment:
            return 0
    wanted = args.experiment or (["sweep"] if args.workload else ["all"])
    if "all" in wanted:
        wanted = sorted(_PAPER_EXPERIMENTS)
    if args.workload and any(name != "sweep" for name in wanted):
        parser.error(
            "--workload only applies to the 'sweep' experiment; the figure "
            "experiments reproduce the paper's QFT results"
        )

    for name in wanted:
        print(f"\n=== {name} (profile: {profile.name}) ===")
        extra = {"workload": args.workload or "qft"} if name == "sweep" else {}
        results = _EXPERIMENTS[name](profile, jobs=args.jobs, cache=cache, **extra)
        print(format_results(results))
        if name in ("fig17", "fig18", "fig19"):
            print("\ndepth series:")
            print(format_series(results, "depth"))
            print("swap series:")
            print(format_series(results, "swap_count"))
    if cache is not None:
        stats = cache.stats()
        print(f"\ncache: {stats['hits']} hits, {stats['misses']} misses")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
