"""Pluggable executors: *how* a list of evaluation cells gets run.

The declarative layer (:mod:`repro.eval.runs`) describes *what* to run as a
typed ``RunPlan``; this module supplies the strategy objects that run it.
Executors register themselves in :data:`EXECUTOR_REGISTRY` (same
synonym/did-you-mean machinery as the workload/approach/architecture
registries) and expose one method, :meth:`Executor.run`.  Built-ins:

``serial``
    Every cell in order, in-process.  No pool overhead; the right choice for
    tiny sweeps and debugging.
``pool``
    The topology-grouped process pool: cells that target the same coupling
    graph are dispatched to workers as whole chunks, every worker resolves
    topologies through the process-local memo in :mod:`repro.eval.runners`,
    and on fork-based platforms the parent prewarms each distinct topology
    so workers inherit the distance matrices and SABRE tables copy-on-write.
``shard-coordinator``
    The fleet-scale strategy: runs its slice through the same pool
    machinery, but *streams* every finished cell to an append-only JSONL
    journal (:mod:`repro.eval.journal`), resumes from a journal after a
    crash (journaled cells are served, not re-run), and re-dispatches
    straggler/timeout cells once before reporting them.  Across hosts, each
    machine executes one ``plan(..., shard=(i, n))`` slice with its own
    journal and cache; ``--cache-merge`` unions the caches afterwards.
``dispatch``
    The fault-tolerant work-stealing dispatcher
    (:mod:`repro.eval.dispatch`): cells are leased over a localhost HTTP
    queue to dynamically joining worker processes, heartbeats keep leases
    alive, expired leases are reassigned (fast workers drain what slow or
    dead ones shed), and the dispatcher is the single journal writer.

Results always come back in spec order, and every cell is deterministic
given its spec, so the choice of executor (and ``jobs``) never changes the
metrics -- only the wall-clock time (a property the test suite asserts).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..registry import Registry
from .cache import ResultCache
from .journal import RunJournal, cell_key, check_resumable
from .metrics import CompilationResult
from .parallel import CellSpec
from .runners import architecture_key, cached_topology, prepare_topology, run_cell

__all__ = [
    "Executor",
    "ExecutionContext",
    "ExecutionOutcome",
    "EXECUTOR_REGISTRY",
    "register_executor",
    "get_executor",
    "executor_names",
    "run_specs",
    "retry_spec",
]


# ---------------------------------------------------------------------------
# The engine (ported from the pre-redesign repro.eval.parallel.run_cells)
# ---------------------------------------------------------------------------


def _run_spec(spec: CellSpec) -> CompilationResult:
    topology = cached_topology(spec.kind, spec.size)  # None -> per-cell error
    result = run_cell(
        spec.approach,
        spec.kind,
        spec.size,
        workload=spec.workload,
        workload_params=dict(spec.workload_params),
        topology=topology,
        timeout_s=spec.timeout_s,
        verify=spec.verify,
        **dict(spec.kwargs),
    )
    if spec.rename is not None:
        result.approach = spec.rename
    return result


def _run_chunk(
    specs: Sequence[CellSpec],
) -> Tuple[List[CompilationResult], Optional[Exception]]:
    """Worker-side entry point: run a same-topology chunk of cells in order.

    Returns the results plus the first raised exception (if any), so the
    parent can record -- and cache/journal -- the cells that *did* finish
    before re-raising; with one task per chunk, a plain raise would otherwise
    discard every completed result in the chunk.  Only ``Exception`` is
    forwarded: KeyboardInterrupt/SystemExit must keep killing the worker
    promptly rather than ride along as a value.
    """

    results: List[CompilationResult] = []
    for spec in specs:
        try:
            results.append(_run_spec(spec))
        except Exception as exc:
            return results, exc
    return results, None


def _topology_chunks(
    specs: Sequence[CellSpec], todo: Sequence[int], jobs: int
) -> List[List[int]]:
    """Partition ``todo`` into same-topology chunks for pool dispatch.

    Each topology group is split into at most ``jobs`` chunks, so a sweep
    dominated by one topology (e.g. a seed sweep) still saturates the pool
    while cells sharing a topology land on as few workers as possible.
    """

    groups: Dict[Tuple[str, int], List[int]] = {}
    for i in todo:
        groups.setdefault(architecture_key(specs[i].kind, specs[i].size), []).append(i)

    chunks: List[List[int]] = []
    for members in groups.values():
        parts = min(jobs, len(members))
        base, extra = divmod(len(members), parts)
        start = 0
        for p in range(parts):
            size = base + (1 if p < extra else 0)
            chunks.append(members[start : start + size])
            start += size
    return chunks


def run_specs(
    specs: Sequence[CellSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    group_topologies: bool = True,
    skip: Optional[Dict[int, CompilationResult]] = None,
    on_result: Optional[Callable[[int, CellSpec, CompilationResult], None]] = None,
) -> List[CompilationResult]:
    """Run every spec, in order, using up to ``jobs`` worker processes.

    With a cache, hits are served without running anything and fresh results
    are stored on the way out; only the misses are distributed to workers.
    ``skip`` pre-resolves cells by index (the coordinator's resume path:
    journaled cells are served as-is, no cache lookup, no callback).
    ``on_result`` is invoked in the parent -- never in a worker -- for every
    result this run produced (computed or cache-hit, not skipped), as soon
    as it lands; the coordinator streams the journal through it.
    """

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    results: List[Optional[CompilationResult]] = [None] * len(specs)
    keys: Dict[int, str] = {}
    todo: List[int] = []
    skip = skip or {}
    for i, spec in enumerate(specs):
        if i in skip:
            results[i] = skip[i]
            continue
        if cache is not None:
            keys[i] = cache.key(
                spec.approach,
                spec.kind,
                spec.size,
                spec.kwargs,
                spec.rename,
                spec.timeout_s,
                spec.workload,
                spec.workload_params,
                verify=spec.verify,
            )
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                if on_result is not None:
                    on_result(i, spec, hit)
                continue
        todo.append(i)

    def record(i: int, result: CompilationResult) -> None:
        results[i] = result
        # Timeouts are wall-clock-dependent, not deterministic per spec --
        # caching one would serve a one-off slow run forever.  Unsupported
        # cells are never cached either: the refusal is cheap to recompute
        # and a registry/plugin change (a specialist gaining a workload)
        # must take effect without a cache flush.  Everything else
        # (ok / skipped / error) is a pure function of the spec.
        if cache is not None and result.status not in ("timeout", "unsupported"):
            cache.put(keys[i], result)
        if on_result is not None:
            on_result(i, specs[i], result)

    if jobs > 1 and len(todo) > 1:
        # Warm each distinct topology (+ distance matrix + SABRE tables) in
        # the parent first, where fork-based pools share them copy-on-write.
        # Under spawn (macOS/Windows default) workers inherit nothing, so the
        # parent-side work would be pure waste -- each worker's own memo
        # still builds everything once per (worker, topology) there.
        if multiprocessing.get_start_method() == "fork":
            seen = set()
            for i in todo:
                key = architecture_key(specs[i].kind, specs[i].size)
                if key not in seen:
                    seen.add(key)
                    prepare_topology(specs[i].kind, specs[i].size)
        if group_topologies:
            chunks = _topology_chunks(specs, todo, jobs)
        else:
            chunks = [[i] for i in todo]
        # Record each chunk's finished cells as it completes -- including the
        # prefix of a chunk whose later cell crashed (the worker forwards the
        # exception instead of raising) -- so a mid-sweep failure (worker
        # OOM, Ctrl-C, one bad cell) does not discard hours of finished work.
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            futures = {
                pool.submit(_run_chunk, [specs[i] for i in chunk]): chunk
                for chunk in chunks
            }
            failure: Optional[Exception] = None
            for fut in as_completed(futures):
                chunk_results, exc = fut.result()
                for i, result in zip(futures[fut], chunk_results):
                    record(i, result)
                if exc is not None and failure is None:
                    failure = exc
            if failure is not None:
                raise failure
    else:
        for i in todo:
            record(i, _run_spec(specs[i]))

    return results  # type: ignore[return-value]  # every slot is filled above


# ---------------------------------------------------------------------------
# Executor protocol + registry
# ---------------------------------------------------------------------------


@dataclass
class ExecutionContext:
    """Everything an executor may need beyond the cells themselves."""

    jobs: int = 1
    cache: Optional[ResultCache] = None
    group_topologies: bool = True
    #: directory for a fresh run journal (shard-coordinator only)
    journal_dir: Optional[str] = None
    #: directory of an existing journal to resume from (shard-coordinator)
    resume_dir: Optional[str] = None
    #: SQLite experiment store recording the run + every journaled cell
    #: alongside the JSONL journal (shard-coordinator and dispatch)
    store_path: Optional[str] = None
    #: metadata written to (and checked against) the journal's header line
    meta: Dict[str, object] = field(default_factory=dict)
    #: how many times a timeout cell is re-dispatched before being reported
    retry_timeouts: int = 1
    #: factor applied to ``timeout_s`` on each straggler retry (1.0 = same
    #: budget; >1 lets a marginally-too-slow cell recover instead of timing
    #: out identically twice)
    retry_timeout_multiplier: float = 1.0
    #: journal durability stride: fsync after every N appended cells
    #: (1 = every cell, 0 = never)
    journal_fsync_every: int = 1
    #: dispatcher options (``dispatch`` executor only): host/port binding,
    #: lease_s, heartbeat_s, spawn_workers, on_start callback
    dispatch_opts: Dict[str, object] = field(default_factory=dict)


@dataclass
class ExecutionOutcome:
    """What an executor did: the results plus its bookkeeping."""

    results: List[CompilationResult]
    resumed: int = 0  # cells served from a journal, not re-run
    retried: int = 0  # straggler cells re-dispatched
    recovered: int = 0  # retried cells whose second attempt succeeded
    reassigned: int = 0  # expired leases returned to the queue (dispatch)
    dead_workers: int = 0  # workers whose lease expired unheartbeaten
    journal_path: Optional[str] = None


class Executor:
    """Base class for registered executors (``run`` is the whole surface)."""

    name: str = ""

    def run(
        self, specs: Sequence[CellSpec], ctx: ExecutionContext
    ) -> ExecutionOutcome:
        raise NotImplementedError


#: the process-wide executor registry
EXECUTOR_REGISTRY: Registry[Executor] = Registry("executor")


def register_executor(name: str, *, synonyms: Sequence[str] = ()):
    """Class decorator: instantiate and register an :class:`Executor`."""

    def _register(cls):
        instance = cls()
        instance.name = name
        EXECUTOR_REGISTRY.register(name, instance, synonyms=synonyms)
        return cls

    return _register


def _ensure_builtin_executors() -> None:
    # The built-in executors below register at module import; the dispatch
    # executor lives in its own module (it pulls in the HTTP stack), which
    # must be imported before name resolution can find it.
    from . import dispatch  # noqa: F401


def get_executor(name: str) -> Executor:
    """Resolve an executor by any registered spelling (raises with hints)."""

    _ensure_builtin_executors()
    return EXECUTOR_REGISTRY.get(name)


def executor_names() -> Tuple[str, ...]:
    """Canonical names of every registered executor."""

    _ensure_builtin_executors()
    return EXECUTOR_REGISTRY.names()


def _require_no_journal(ctx: ExecutionContext, name: str) -> None:
    if ctx.journal_dir or ctx.resume_dir or ctx.store_path:
        raise ValueError(
            f"executor {name!r} does not journal runs; use the "
            "'shard-coordinator' or 'dispatch' executor for "
            "--journal/--resume/--store"
        )


def retry_spec(
    spec: CellSpec, attempt: int, multiplier: float
) -> CellSpec:
    """The spec a straggler retry actually runs: timeout scaled per attempt.

    With ``multiplier == 1.0`` (the default) the retry re-dispatches with
    the same budget, exactly as before; a multiplier > 1 widens the budget
    geometrically (attempt 1 gets ``timeout_s * multiplier``, attempt 2
    ``* multiplier**2``, ...), so a cell that missed its budget by a hair
    can recover instead of timing out identically every time.  Cells with
    no timeout are returned unchanged.
    """

    if multiplier == 1.0 or spec.timeout_s is None or attempt < 1:
        return spec
    return dataclasses.replace(
        spec, timeout_s=spec.timeout_s * (multiplier**attempt)
    )


# ---------------------------------------------------------------------------
# Built-in executors
# ---------------------------------------------------------------------------


@register_executor("serial", synonyms=("inline", "sync"))
class SerialExecutor(Executor):
    """Every cell in order, in-process (no pool, no journal)."""

    def run(self, specs, ctx):
        _require_no_journal(ctx, self.name)
        results = run_specs(
            specs, jobs=1, cache=ctx.cache, group_topologies=ctx.group_topologies
        )
        return ExecutionOutcome(results)


@register_executor("pool", synonyms=("process-pool", "parallel"))
class PoolExecutor(Executor):
    """The topology-grouped process pool (``jobs`` workers)."""

    def run(self, specs, ctx):
        _require_no_journal(ctx, self.name)
        results = run_specs(
            specs,
            jobs=ctx.jobs,
            cache=ctx.cache,
            group_topologies=ctx.group_topologies,
        )
        return ExecutionOutcome(results)


@register_executor("shard-coordinator", synonyms=("coordinator", "shard"))
class ShardCoordinatorExecutor(Executor):
    """Journaled, resumable, straggler-retrying execution of one plan slice.

    The coordinator runs its cells through the same topology-grouped pool as
    ``pool`` (``jobs`` workers), but additionally

    * streams every finished cell to an append-only JSONL journal
      (``ctx.journal_dir``) the moment it lands,
    * resumes from an existing journal (``ctx.resume_dir``): cells already
      journaled are served without re-running, after checking that the
      journal's code version and plan fingerprint match (mixing results
      from two code versions or two different plans is refused), and
    * re-dispatches cells that timed out, up to ``ctx.retry_timeouts`` times
      (default once), before reporting them -- a transiently-overloaded
      worker does not get to decide a cell's fate on its first try.  Resumed
      timeouts whose journaled ``retries`` budget is not yet exhausted are
      retried too (a crash between a timeout and its retry must not make the
      timeout permanent).  Recovered retries supersede their timeout in both
      the results and the journal.
    """

    def run(self, specs, ctx):
        journal: Optional[RunJournal] = None
        resumed: Dict[str, CompilationResult] = {}
        if ctx.resume_dir:
            journal = RunJournal.open(
                ctx.resume_dir, fsync_every=ctx.journal_fsync_every
            )
            self._check_resumable(journal.meta, ctx.meta)
            resumed = journal.results()
        elif ctx.journal_dir:
            journal = RunJournal.create(
                ctx.journal_dir, ctx.meta, fsync_every=ctx.journal_fsync_every
            )

        keys = [cell_key(spec) for spec in specs]
        skip = {
            i: resumed[k] for i, k in enumerate(keys) if k in resumed
        }

        # The optional store sink rides alongside the JSONL journal: the
        # same appends, through one tee, so the single-writer discipline is
        # unchanged and the JSONL journal stays the resume source of truth.
        recorder = None
        sink = journal
        if ctx.store_path:
            from ..store import ExperimentStore, JournalTee, RunRecorder

            recorder = RunRecorder(
                ExperimentStore(ctx.store_path),
                ctx.meta,
                executor=self.name,
                jobs=ctx.jobs,
            )
            sink = JournalTee(journal, recorder)

        on_result = None
        if sink is not None:
            on_result = lambda i, spec, res: sink.append(keys[i], res)  # noqa: E731

        try:
            results = run_specs(
                specs,
                jobs=ctx.jobs,
                cache=ctx.cache,
                group_topologies=ctx.group_topologies,
                skip=skip,
                on_result=on_result,
            )

            # Straggler pass: a timeout is wall-clock-dependent (and never
            # cached), so each one earns its re-dispatches before the report
            # calls it final.  Deterministic failures (error / unsupported /
            # skipped) are not retried.  Resumed cells participate too --
            # a timeout journaled just before a crash would otherwise become
            # permanent, which is exactly what an uninterrupted run's retry
            # pass exists to prevent; the ``retries`` marker journaled with
            # each attempt keeps a resumed run from re-dispatching a cell
            # beyond its budget.
            retried = recovered = 0
            for attempt in range(1, ctx.retry_timeouts + 1):
                retry_idx = [
                    i
                    for i, r in enumerate(results)
                    if r.status == "timeout"
                    and (r.extra or {}).get("retries", 0) < attempt
                ]
                if not retry_idx:
                    break
                retried += len(retry_idx)
                again = run_specs(
                    [
                        retry_spec(specs[i], attempt, ctx.retry_timeout_multiplier)
                        for i in retry_idx
                    ],
                    jobs=min(ctx.jobs, len(retry_idx)),
                    cache=ctx.cache,
                    group_topologies=ctx.group_topologies,
                )
                for i, result in zip(retry_idx, again):
                    result.extra = dict(result.extra or {})
                    result.extra["retries"] = attempt
                    if result.status != "timeout":
                        recovered += 1
                    results[i] = result
                    if sink is not None:
                        sink.append(keys[i], result)
        finally:
            if journal is not None:
                journal.close()
            if recorder is not None:
                recorder.finish()

        return ExecutionOutcome(
            results,
            resumed=len(skip),
            retried=retried,
            recovered=recovered,
            journal_path=str(journal.path) if journal is not None else None,
        )

    @staticmethod
    def _check_resumable(
        journal_meta: Dict[str, object], meta: Dict[str, object]
    ) -> None:
        check_resumable(journal_meta, meta)
