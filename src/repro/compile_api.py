"""``repro.compile`` -- the one registry-driven compiler entry point.

Everything the repo can compile goes through this function::

    import repro

    result = repro.compile(workload="qft", architecture="grid", size=9,
                           approach="ours")
    result.mapped          # the MappedCircuit
    result.verification    # workload-specific VerifyResult (or None)
    result.wall_s          # compile wall-clock (mapping only)

``workload``, ``architecture`` and ``approach`` are names resolved through
the three registries (:mod:`repro.workloads`, :mod:`repro.arch.registry`,
:mod:`repro.approaches`); any registered synonym works, and unknown names
raise :class:`~repro.registry.UnknownNameError` with did-you-mean
suggestions.  ``architecture`` also accepts a ready-made
:class:`~repro.arch.topology.Topology` instance (then ``size`` is ignored).

Outcomes are typed, never stringly ad hoc: ``status`` is

* ``"ok"``          -- compiled (and, if requested, verified),
* ``"unsupported"`` -- the approach cannot compile this workload /
  architecture combination (e.g. an analytic QFT specialist asked for QAOA);
  the typed :class:`~repro.registry.UnsupportedWorkload` refusal, surfaced
  as a result so sweeps over the full cross-product keep going,
* ``"skipped"``     -- instance exceeds the approach's size cap,
* ``"timeout"``     -- the ``timeout_s`` budget ran out (the paper's TLE).

Caller bugs -- unknown names, misspelled options, invalid sizes -- raise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from .approaches import get_approach, make_mapper
from .arch.registry import architecture_label, make_architecture
from .arch.topology import Topology
from .baselines import SatmapTimeout
from .circuit.schedule import MappedCircuit
from .registry import UnsupportedWorkload
from .utils import CellBudgetExceeded, cell_budget
from .workloads import VerifyResult, get_workload

__all__ = ["CompileResult", "compile"]


@dataclass
class CompileResult:
    """Everything one ``repro.compile`` call produced.

    ``metrics()`` renders the result as the evaluation harness's
    :class:`~repro.eval.metrics.CompilationResult` row (lazy, so the core
    API does not depend on the harness).
    """

    workload: str
    approach: str
    architecture: str
    num_qubits: int
    status: str
    mapped: Optional[MappedCircuit] = None
    verification: Optional[VerifyResult] = None
    wall_s: Optional[float] = None
    message: str = ""
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def verified(self) -> Optional[bool]:
        return None if self.verification is None else self.verification.ok

    def metrics(self):
        """This result as an eval-harness :class:`CompilationResult` row."""

        from .eval.metrics import CompilationResult, result_from_mapped

        if self.status == "ok" and self.mapped is not None:
            return result_from_mapped(
                self.approach,
                self.architecture,
                self.mapped,
                self.wall_s,
                self.verified,
                workload=self.workload,
            )
        return CompilationResult(
            approach=self.approach,
            architecture=self.architecture,
            num_qubits=self.num_qubits,
            status=self.status,
            compile_time_s=self.wall_s,
            message=self.message or None,
            workload=self.workload,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CompileResult({self.workload!r} on {self.architecture!r} via "
            f"{self.approach!r}: {self.status}, n={self.num_qubits})"
        )


def compile(
    workload: str = "qft",
    architecture: Union[str, Topology] = "grid",
    size: Optional[int] = None,
    approach: str = "ours",
    *,
    num_qubits: Optional[int] = None,
    workload_params: Optional[Dict[str, object]] = None,
    verify: bool = True,
    timeout_s: Optional[float] = None,
    max_qubits: Optional[int] = None,
    **opts: object,
) -> CompileResult:
    """Compile ``workload`` for ``architecture`` with ``approach``.

    Parameters
    ----------
    workload / architecture / approach:
        Registry names (any registered synonym).  ``architecture`` may also
        be a :class:`Topology` instance, in which case ``size`` is ignored.
    size:
        The architecture's paper-style size parameter (required when
        ``architecture`` is a name).
    num_qubits:
        Workload instance size; defaults to the full device.
    workload_params:
        Parameters of the workload family (e.g. ``{"seed": 3, "layers": 2}``
        for QAOA).  Kept separate from ``**opts`` because approach options
        and workload parameters may share names (``seed``).
    verify:
        Run the workload's verification (structural at every size, dense
        statevector cross-check on small instances).
    timeout_s:
        Harness-level wall-clock budget; exceeding it yields
        ``status == "timeout"`` instead of raising.
    max_qubits:
        Size cap override; instances above the cap (or above the approach's
        registered default cap) are reported as ``status == "skipped"``.
    **opts:
        Approach options (validated against the registry entry, e.g.
        ``seed``/``passes``/``incremental`` for SABRE, ``strict_ie`` for
        ours).
    """

    wl = get_workload(workload)
    params = wl.resolve_params(**(workload_params or {}))
    entry = get_approach(approach)
    entry.validate_kwargs(opts)

    if isinstance(architecture, Topology):
        topology = architecture
        label = topology.name
    else:
        if size is None:
            raise ValueError(
                "size is required when architecture is given by name "
                f"(got architecture={architecture!r})"
            )
        label = architecture_label(architecture, size)
        topology = make_architecture(architecture, size)

    n = num_qubits if num_qubits is not None else topology.num_qubits
    cap = max_qubits if max_qubits is not None else entry.max_qubits
    # The cap guards against approach cost, and for placement-style searches
    # (SATMAP) that cost is driven by the *device* size, not the workload
    # size -- a small kernel on a huge device still searches every site.
    if cap is not None and max(n, topology.num_qubits) > cap:
        return CompileResult(
            workload=wl.name,
            approach=entry.name,
            architecture=label,
            num_qubits=n,
            status="skipped",
            message=f"instance exceeds the {cap}-qubit cap for {entry.name!r}",
            params=params,
        )

    start = time.perf_counter()
    try:
        with cell_budget(timeout_s) as armed:
            # With the harness budget armed, SATMAP's internal wall-clock
            # checks are redundant -- let SIGALRM be the one clock.  Without
            # it (non-main thread, non-Unix), the internal deadline is the
            # fallback.
            internal_timeout = None
            if timeout_s is not None:
                internal_timeout = float("inf") if armed else float(timeout_s)
            mapper = make_mapper(
                approach, topology, timeout_s=internal_timeout, **opts
            )
            start = time.perf_counter()
            mapped = wl.map_with(mapper, n, **params)
    except UnsupportedWorkload as exc:
        return CompileResult(
            workload=wl.name,
            approach=entry.name,
            architecture=label,
            num_qubits=n,
            status="unsupported",
            message=str(exc),
            params=params,
        )
    except (SatmapTimeout, CellBudgetExceeded):
        return CompileResult(
            workload=wl.name,
            approach=entry.name,
            architecture=label,
            num_qubits=n,
            status="timeout",
            wall_s=time.perf_counter() - start,
            params=params,
        )
    wall = time.perf_counter() - start

    verification: Optional[VerifyResult] = None
    if verify:
        verification = wl.verify(mapped, n, **params)

    return CompileResult(
        workload=wl.name,
        approach=entry.name,
        architecture=label,
        num_qubits=n,
        status="ok",
        mapped=mapped,
        verification=verification,
        wall_s=wall,
        params=params,
    )
