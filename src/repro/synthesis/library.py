"""The concrete sketches of Appendix 5 (Sycamore) and Appendix 7 (2-D grid).

Both candidates share the loop shape of ``specs.simulate_two_line_pattern``;
the holes are

* ``offset_a`` / ``offset_b`` -- the starting parities of the two lines'
  unconditional SWAP layers ("beg_u = (i + ??) mod 2" in Fig. 29/30),
* ``rounds_coeff`` / ``rounds_const`` -- the loop trip count ``??*L + ??``.

The specifications:

* Sycamore (diagonal links, column index differs by one): cover every cross
  pair **except** the initially same-column ones;
* regular grid / lattice surgery (vertical links, same column): cover every
  cross pair.

The synthesiser re-discovers the paper's findings (tests assert this):

* Sycamore: the two lines move **in sync** (offset difference 0) and ``L``
  rounds suffice;
* grid: the bottom line must start **one step late** (offset difference 1) --
  with identical offsets the same-column neighbour never changes and the spec
  is unsatisfiable, which the solver also confirms.

The solved assignments are exactly the parameters
:func:`repro.core.inter_unit.bipartite_all_to_all` is called with by the
Sycamore and lattice-surgery mappers, closing the loop between the synthesis
story and the shipped schedules.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from .holes import Hole
from .sketch import Sketch, SynthesisResult
from .specs import (
    covers_all_but_same_column,
    covers_all_pairs,
    simulate_two_line_pattern,
)

__all__ = [
    "sycamore_links",
    "grid_vertical_links",
    "sycamore_ie_sketch",
    "grid_ie_sketch",
    "synthesize_sycamore_ie",
    "synthesize_grid_ie",
]


def sycamore_links(length: int) -> List[Tuple[int, int]]:
    """Positional inter-unit links of the Sycamore unit pair (Section 5).

    Position ``2c + 1`` of the upper unit line (its bottom physical row) is
    linked to positions ``2c`` (vertically) and ``2c + 2`` (diagonally) of the
    lower unit line (its top physical row).
    """

    links: List[Tuple[int, int]] = []
    for a in range(1, length, 2):
        links.append((a, a - 1))
        if a + 1 < length:
            links.append((a, a + 1))
    return links


def grid_vertical_links(length: int) -> List[Tuple[int, int]]:
    """Same-column links between two adjacent grid rows (Section 6 / App. 7)."""

    return [(c, c) for c in range(length)]


def _template(links_fn):
    def run(assignment: Dict[str, int], params: Mapping[str, int]) -> Set[Tuple[int, int]]:
        length = params["L"]
        rounds = assignment["rounds_coeff"] * length + assignment["rounds_const"]
        if rounds < 0:
            return set()
        return simulate_two_line_pattern(
            length,
            links_fn(length),
            assignment["offset_a"],
            assignment["offset_b"],
            rounds,
        )

    return run


_COMMON_HOLES = [
    Hole("offset_a", 0, 1),
    Hole("offset_b", 0, 1),
    Hole("rounds_coeff", 0, 2),
    Hole("rounds_const", 0, 2),
]


def sycamore_ie_sketch() -> Sketch:
    """The Appendix 5 sketch: synced travel paths over diagonal links."""

    return Sketch(
        name="sycamore-inter-unit",
        holes=list(_COMMON_HOLES),
        template=_template(sycamore_links),
        spec=lambda covered, params: covers_all_but_same_column(covered, params["L"]),
    )


def grid_ie_sketch() -> Sketch:
    """The Appendix 7 sketch: offset travel paths over vertical links."""

    return Sketch(
        name="grid-inter-unit",
        holes=list(_COMMON_HOLES),
        template=_template(grid_vertical_links),
        spec=lambda covered, params: covers_all_pairs(covered, params["L"]),
    )


def _default_params(lengths: Sequence[int]) -> List[Dict[str, int]]:
    return [{"L": L} for L in lengths]


def synthesize_sycamore_ie(
    lengths: Sequence[int] = (4, 6, 8), *, find_all: bool = False
) -> SynthesisResult:
    """Solve the Sycamore inter-unit sketch against several unit sizes."""

    return sycamore_ie_sketch().solve(_default_params(lengths), find_all=find_all)


def synthesize_grid_ie(
    lengths: Sequence[int] = (4, 5, 6, 8), *, find_all: bool = False
) -> SynthesisResult:
    """Solve the grid inter-unit sketch against several unit sizes."""

    return grid_ie_sketch().solve(_default_params(lengths), find_all=find_all)
