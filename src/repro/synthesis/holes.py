"""Affine expressions with integer holes -- the building blocks of sketches.

The paper leverages SKETCH (Solar-Lezama) to discover the inter-unit travel
patterns: the candidate schedules are affine loop nests whose bounds are
*holes* (``??`` in SKETCH syntax) to be solved so that a coverage
specification holds (Appendix 5 and 7).  We reproduce the idea with a small,
dependency-free synthesiser:

* a :class:`Hole` is a named integer unknown with a finite domain,
* an :class:`Affine` expression is ``c0 + c1*x1 + c2*x2 + ...`` where each
  coefficient is either a concrete integer or a hole, and each variable is a
  runtime quantity (the loop induction variable ``i``, the unit size ``m``,
  constants),
* :func:`affine_min` mirrors the ``min(...)`` bounds the paper uses for the
  triangular SWAP regions of Fig. 3.

The enumerative solver itself lives in :mod:`repro.synthesis.sketch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = ["Hole", "Affine", "MinExpr", "Assignment", "evaluate"]

Assignment = Dict[str, int]


@dataclass(frozen=True)
class Hole:
    """A named integer unknown with an inclusive finite domain."""

    name: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"hole {self.name}: empty domain [{self.low}, {self.high}]")

    @property
    def domain(self) -> range:
        return range(self.low, self.high + 1)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"??{self.name}[{self.low}..{self.high}]"


Coefficient = Union[int, Hole]


@dataclass(frozen=True)
class Affine:
    """``constant + sum(coeff_v * value_of(v))`` over named variables."""

    constant: Coefficient = 0
    terms: Tuple[Tuple[str, Coefficient], ...] = ()

    def holes(self) -> List[Hole]:
        out = []
        if isinstance(self.constant, Hole):
            out.append(self.constant)
        for _, coeff in self.terms:
            if isinstance(coeff, Hole):
                out.append(coeff)
        return out

    def evaluate(self, variables: Mapping[str, int], assignment: Assignment) -> int:
        def val(c: Coefficient) -> int:
            if isinstance(c, Hole):
                return assignment[c.name]
            return c

        total = val(self.constant)
        for var, coeff in self.terms:
            if var not in variables:
                raise KeyError(f"unbound variable {var!r} in affine expression")
            total += val(coeff) * variables[var]
        return total

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        parts = [str(self.constant)]
        parts.extend(f"{coeff}*{var}" for var, coeff in self.terms)
        return " + ".join(parts)


@dataclass(frozen=True)
class MinExpr:
    """``min(e1, e2, ...)`` of affine expressions (the paper's piecewise-linear
    SWAP bounds)."""

    parts: Tuple[Affine, ...]

    def holes(self) -> List[Hole]:
        out: List[Hole] = []
        for p in self.parts:
            out.extend(p.holes())
        return out

    def evaluate(self, variables: Mapping[str, int], assignment: Assignment) -> int:
        return min(p.evaluate(variables, assignment) for p in self.parts)


Expr = Union[int, Affine, MinExpr]


def evaluate(expr: Expr, variables: Mapping[str, int], assignment: Assignment) -> int:
    if isinstance(expr, int):
        return expr
    return expr.evaluate(variables, assignment)


def expr_holes(expr: Expr) -> List[Hole]:
    if isinstance(expr, int):
        return []
    return expr.holes()
