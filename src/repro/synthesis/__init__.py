"""Program synthesis of inter-unit schedules (SKETCH substitute)."""

from .holes import Affine, Assignment, Hole, MinExpr, evaluate
from .library import (
    grid_ie_sketch,
    grid_vertical_links,
    sycamore_ie_sketch,
    sycamore_links,
    synthesize_grid_ie,
    synthesize_sycamore_ie,
)
from .sketch import Sketch, SynthesisResult, SynthesisTimeout
from .specs import (
    all_cross_pairs,
    covers_all_but_same_column,
    covers_all_pairs,
    same_start_pairs,
    simulate_two_line_pattern,
)

__all__ = [
    "Affine",
    "Assignment",
    "Hole",
    "MinExpr",
    "evaluate",
    "grid_ie_sketch",
    "grid_vertical_links",
    "sycamore_ie_sketch",
    "sycamore_links",
    "synthesize_grid_ie",
    "synthesize_sycamore_ie",
    "Sketch",
    "SynthesisResult",
    "SynthesisTimeout",
    "all_cross_pairs",
    "covers_all_but_same_column",
    "covers_all_pairs",
    "same_start_pairs",
    "simulate_two_line_pattern",
]
