"""A miniature SKETCH-style enumerative synthesiser.

A :class:`Sketch` bundles

* a list of :class:`~repro.synthesis.holes.Hole` unknowns,
* a *template* -- a callable that, given a hole assignment and a parameter
  dict (e.g. the unit size ``m``), produces an artifact (for us: the pair
  coverage achieved by a candidate travel schedule),
* a *specification* -- a predicate over (artifact, parameters).

:meth:`Sketch.solve` enumerates hole assignments (smallest-domain-first, with
optional early termination) and returns every assignment -- or just the first
-- for which the specification holds on **all** given parameter sets.  This is
exactly the role SKETCH plays in the paper (Appendix 5/7): the search space is
tiny (a handful of small integer holes) once the human supplies the loop
shape, and the solver's job is only to pin down the bounds/offsets.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .holes import Assignment, Hole

__all__ = ["Sketch", "SynthesisResult", "SynthesisTimeout"]


class SynthesisTimeout(TimeoutError):
    """Raised when enumeration exceeds the time budget."""


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run."""

    solutions: List[Assignment]
    explored: int
    elapsed_s: float

    @property
    def found(self) -> bool:
        return bool(self.solutions)

    @property
    def first(self) -> Optional[Assignment]:
        return self.solutions[0] if self.solutions else None


@dataclass
class Sketch:
    """An affine-loop template with integer holes and a specification."""

    name: str
    holes: Sequence[Hole]
    template: Callable[[Assignment, Mapping[str, int]], object]
    spec: Callable[[object, Mapping[str, int]], bool]

    def __post_init__(self) -> None:
        names = [h.name for h in self.holes]
        if len(names) != len(set(names)):
            raise ValueError("hole names must be unique")

    def search_space_size(self) -> int:
        size = 1
        for h in self.holes:
            size *= len(h.domain)
        return size

    def check(self, assignment: Assignment, param_sets: Iterable[Mapping[str, int]]) -> bool:
        """True if the assignment satisfies the spec for every parameter set."""

        for params in param_sets:
            artifact = self.template(assignment, params)
            if not self.spec(artifact, params):
                return False
        return True

    def solve(
        self,
        param_sets: Sequence[Mapping[str, int]],
        *,
        find_all: bool = False,
        timeout_s: float = 60.0,
    ) -> SynthesisResult:
        """Enumerate hole assignments until the spec holds on all parameters.

        Holes are enumerated smallest-domain first so that "boolean-ish" holes
        (offsets, parities) are decided before wide numeric ranges; candidates
        failing the *first* parameter set are rejected without evaluating the
        rest, which keeps the common case fast.
        """

        if not param_sets:
            raise ValueError("need at least one parameter set to synthesise against")
        ordered = sorted(self.holes, key=lambda h: len(h.domain))
        domains = [list(h.domain) for h in ordered]
        names = [h.name for h in ordered]

        start = time.monotonic()
        solutions: List[Assignment] = []
        explored = 0
        for values in itertools.product(*domains):
            if time.monotonic() - start > timeout_s:
                raise SynthesisTimeout(
                    f"sketch {self.name!r}: exceeded {timeout_s:.0f}s after exploring "
                    f"{explored} candidates"
                )
            explored += 1
            assignment = dict(zip(names, values))
            if self.check(assignment, param_sets):
                solutions.append(assignment)
                if not find_all:
                    break
        return SynthesisResult(solutions, explored, time.monotonic() - start)
