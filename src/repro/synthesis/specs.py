"""Specifications and schedule simulation for the inter-unit sketches.

The artifact a candidate travel schedule produces is the set of (top item,
bottom item) pairs that become adjacent through an inter-unit link at some
CPHASE checkpoint.  The specification of Appendix 5/7 is then simply:

* **regular 2-D grid / lattice surgery** (vertical links): *every* cross pair
  must be covered;
* **Sycamore** (links between columns differing by one): every cross pair
  except the initially same-column ones must be covered (those are fixed up
  separately, Section 5).

``simulate_two_line_pattern`` is a pure position-level simulation (no
builders, no dependence tracking) of the candidate loop:

    for i in range(rounds):
        CPHASE on all inter-unit links            # checkpoint
        unconditional odd-even SWAP layer on the top line    (parity i+off_a)
        unconditional odd-even SWAP layer on the bottom line  (parity i+off_b)

which is exactly the code shape of Fig. 25 / Fig. 29 with the holes being the
two offsets and the number of rounds.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

__all__ = [
    "simulate_two_line_pattern",
    "all_cross_pairs",
    "same_start_pairs",
    "covers_all_pairs",
    "covers_all_but_same_column",
]

Pair = Tuple[int, int]


def _swap_layer(order: List[int], parity: int) -> None:
    for p in range(parity % 2, len(order) - 1, 2):
        order[p], order[p + 1] = order[p + 1], order[p]


def simulate_two_line_pattern(
    length: int,
    links: Sequence[Pair],
    offset_a: int,
    offset_b: int,
    rounds: int,
) -> Set[Pair]:
    """Return the set of (top item, bottom item) pairs covered by the pattern.

    Items of the top line are ``0..length-1`` (initial positions); items of
    the bottom line are likewise ``0..length-1``.  ``links`` are positional
    ``(top position, bottom position)`` pairs.
    """

    top = list(range(length))
    bottom = list(range(length))
    covered: Set[Pair] = set()
    for pa, pb in links:
        if not (0 <= pa < length and 0 <= pb < length):
            raise ValueError(f"link ({pa}, {pb}) out of range for length {length}")

    for t in range(rounds + 1):
        for pa, pb in links:
            covered.add((top[pa], bottom[pb]))
        if t < rounds:
            _swap_layer(top, t + offset_a)
            _swap_layer(bottom, t + offset_b)
    return covered


def all_cross_pairs(length: int) -> Set[Pair]:
    return {(a, b) for a in range(length) for b in range(length)}


def same_start_pairs(length: int) -> Set[Pair]:
    return {(a, a) for a in range(length)}


def covers_all_pairs(covered: Set[Pair], length: int) -> bool:
    return all_cross_pairs(length) <= covered


def covers_all_but_same_column(covered: Set[Pair], length: int) -> bool:
    required = all_cross_pairs(length) - same_start_pairs(length)
    return required <= covered
