"""Structural verification of mapped QFT circuits.

A mapped circuit is a *correct* hardware QFT kernel iff

1. every two-qubit op acts on coupled physical qubits,
2. the logical stamps on every op are consistent with replaying the SWAPs
   from the initial layout (i.e. the mapper's own bookkeeping is honest),
3. every logical qubit receives exactly one Hadamard,
4. every unordered logical pair ``(i, j)`` receives exactly one CPHASE with
   the correct QFT angle ``pi / 2^(j-i)``,
5. the execution order satisfies the Type II dependence
   ``H(i) < CPHASE(i, j) < H(j)`` (and additionally Type I when a mapper
   claims strict ordering).

These checks are cheap (linear in the number of ops) so they run on every
size used in the evaluation, including 1024-qubit lattice-surgery instances.
The statevector cross-check lives in :mod:`repro.verify.checker` and is only
applied to small instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..circuit.dag import qft_type1_order_ok, qft_type2_order_ok
from ..circuit.gates import GateKind, qft_angle
from ..circuit.schedule import MappedCircuit

__all__ = ["CoverageReport", "check_mapped_qft_structure"]


@dataclass
class CoverageReport:
    """Result of the structural checks.

    ``ok`` is True iff ``errors`` is empty.  ``errors`` holds human-readable
    messages for the first few violations of each category (capped so that a
    badly broken mapper does not produce a gigabyte of output).
    """

    num_logical: int
    ok: bool = True
    errors: List[str] = field(default_factory=list)
    h_count: int = 0
    cphase_count: int = 0
    swap_count: int = 0
    missing_pairs: int = 0
    duplicate_pairs: int = 0

    MAX_ERRORS_PER_CATEGORY = 5

    def add_error(self, msg: str) -> None:
        self.ok = False
        if len(self.errors) < 50:
            self.errors.append(msg)

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"QFT structural verification: {status}",
            f"  logical qubits : {self.num_logical}",
            f"  H gates        : {self.h_count}",
            f"  CPHASE gates   : {self.cphase_count}",
            f"  SWAP gates     : {self.swap_count}",
        ]
        if not self.ok:
            lines.append(f"  missing pairs  : {self.missing_pairs}")
            lines.append(f"  duplicate pairs: {self.duplicate_pairs}")
            lines.extend("  - " + e for e in self.errors[:10])
        return "\n".join(lines)


def check_mapped_qft_structure(
    mapped: MappedCircuit,
    num_qubits: Optional[int] = None,
    *,
    strict_order: bool = False,
    angle_atol: float = 1e-9,
) -> CoverageReport:
    """Run all structural checks on a mapped QFT circuit."""

    n = num_qubits if num_qubits is not None else mapped.num_logical
    report = CoverageReport(num_logical=n)
    topo = mapped.topology

    # 1 + 2: adjacency and honest logical stamps -------------------------------
    if len(set(mapped.initial_layout)) != len(mapped.initial_layout):
        report.add_error("initial layout is not injective")
    phys_to_log: Dict[int, int] = {
        p: l for l, p in enumerate(mapped.initial_layout)
    }

    adjacency_errors = 0
    stamp_errors = 0
    for pos, op in enumerate(mapped.ops):
        if op.kind == GateKind.BARRIER:
            continue
        if op.is_two_qubit:
            a, b = op.physical
            if not topo.has_edge(a, b):
                adjacency_errors += 1
                if adjacency_errors <= CoverageReport.MAX_ERRORS_PER_CATEGORY:
                    report.add_error(
                        f"op {pos}: {op.kind} on non-adjacent physical qubits ({a}, {b})"
                    )
                else:
                    report.ok = False
        expected = tuple(phys_to_log.get(p, -1) for p in op.physical)
        if expected != op.logical:
            stamp_errors += 1
            if stamp_errors <= CoverageReport.MAX_ERRORS_PER_CATEGORY:
                report.add_error(
                    f"op {pos}: logical stamp {op.logical} does not match tracked "
                    f"layout {expected}"
                )
            else:
                report.ok = False
        if op.kind == GateKind.SWAP:
            a, b = op.physical
            la = phys_to_log.get(a)
            lb = phys_to_log.get(b)
            if lb is None:
                phys_to_log.pop(a, None)
            else:
                phys_to_log[a] = lb
            if la is None:
                phys_to_log.pop(b, None)
            else:
                phys_to_log[b] = la

    # 3 + 4: H and CPHASE coverage -------------------------------------------
    h_seen: Dict[int, int] = {}
    pair_seen: Dict[Tuple[int, int], int] = {}
    events: List[Tuple[str, Tuple[int, ...]]] = []
    for pos, op in enumerate(mapped.ops):
        if op.kind == GateKind.H:
            (lq,) = op.logical
            if lq < 0 or lq >= n:
                report.add_error(f"op {pos}: H on unknown logical qubit {lq}")
                continue
            h_seen[lq] = h_seen.get(lq, 0) + 1
            events.append(("h", (lq,)))
        elif op.kind == GateKind.CPHASE:
            la, lb = op.logical
            if min(la, lb) < 0 or max(la, lb) >= n:
                report.add_error(f"op {pos}: CPHASE on unknown logical qubits {op.logical}")
                continue
            lo, hi = (la, lb) if la < lb else (lb, la)
            pair_seen[(lo, hi)] = pair_seen.get((lo, hi), 0) + 1
            expected_angle = qft_angle(lo, hi)
            if op.angle is None or not math.isclose(
                op.angle, expected_angle, rel_tol=0.0, abs_tol=angle_atol
            ):
                report.add_error(
                    f"op {pos}: CPHASE({lo},{hi}) has angle {op.angle}, expected "
                    f"{expected_angle}"
                )
            events.append(("cphase", (lo, hi)))

    report.h_count = sum(h_seen.values())
    report.cphase_count = sum(pair_seen.values())
    report.swap_count = mapped.swap_count()

    missing_h = [q for q in range(n) if h_seen.get(q, 0) == 0]
    extra_h = [q for q, c in h_seen.items() if c > 1]
    for q in missing_h[: CoverageReport.MAX_ERRORS_PER_CATEGORY]:
        report.add_error(f"missing H on logical qubit {q}")
    for q in extra_h[: CoverageReport.MAX_ERRORS_PER_CATEGORY]:
        report.add_error(f"logical qubit {q} received {h_seen[q]} H gates")
    if missing_h or extra_h:
        report.ok = False

    expected_pairs: Set[Tuple[int, int]] = {
        (i, j) for i in range(n) for j in range(i + 1, n)
    }
    missing_pairs = expected_pairs - set(pair_seen)
    duplicate_pairs = {p: c for p, c in pair_seen.items() if c > 1}
    unexpected_pairs = set(pair_seen) - expected_pairs
    report.missing_pairs = len(missing_pairs)
    report.duplicate_pairs = len(duplicate_pairs)
    for p in sorted(missing_pairs)[: CoverageReport.MAX_ERRORS_PER_CATEGORY]:
        report.add_error(f"missing CPHASE for pair {p}")
    for p in sorted(duplicate_pairs)[: CoverageReport.MAX_ERRORS_PER_CATEGORY]:
        report.add_error(f"pair {p} received {duplicate_pairs[p]} CPHASE gates")
    for p in sorted(unexpected_pairs)[: CoverageReport.MAX_ERRORS_PER_CATEGORY]:
        report.add_error(f"unexpected CPHASE pair {p}")
    if missing_pairs or duplicate_pairs or unexpected_pairs:
        report.ok = False

    # 5: dependence order -------------------------------------------------
    ok2, msg2 = qft_type2_order_ok(n, events)
    if not ok2:
        report.add_error(f"Type II dependence violated: {msg2}")
    if strict_order:
        ok1, msg1 = qft_type1_order_ok(n, events)
        if not ok1:
            report.add_error(f"Type I dependence violated: {msg1}")

    return report
