"""Workload-agnostic structural verification of mapped circuits.

:mod:`repro.verify.coverage` knows what a *QFT* must look like; this module
checks a mapped circuit against an arbitrary source :class:`Circuit` instead,
which is what the non-QFT workloads (QAOA, random circuits) use as their
paper-style verification path:

1. every two-qubit op acts on coupled physical qubits,
2. the logical stamps on every op are consistent with replaying the SWAPs
   from the initial layout (the mapper's bookkeeping is honest),
3. the logical (non-SWAP) event stream executes *exactly* the gates of the
   source circuit, each exactly once, in an order that respects the
   per-qubit dependence chains of the program (the reordering freedom every
   router is allowed: gates on disjoint qubits may commute past each other,
   gates sharing a qubit may not).

The checks are linear in the number of ops, so they run at every size; the
dense statevector cross-check for small instances lives with the workloads
(:meth:`repro.workloads.Workload.verify`).

Source circuits must be SWAP-free: mapped streams cannot distinguish a
program SWAP from a routing SWAP, so workloads express data movement through
the mapper, never as program gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.circuit import Circuit
from ..circuit.gates import GateKind
from ..circuit.schedule import MappedCircuit

__all__ = ["ReplayReport", "check_mapped_matches_circuit"]

#: gate kinds that are symmetric in their qubit arguments
_SYMMETRIC_KINDS = frozenset({GateKind.CPHASE, GateKind.SWAP})

_MAX_ERRORS = 10


@dataclass
class ReplayReport:
    """Result of checking a mapped circuit against its source circuit."""

    num_logical: int
    ok: bool = True
    errors: List[str] = field(default_factory=list)
    matched_gates: int = 0
    swap_count: int = 0

    def add_error(self, msg: str) -> None:
        self.ok = False
        if len(self.errors) < _MAX_ERRORS:
            self.errors.append(msg)

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"mapped-vs-circuit replay: {status}",
            f"  logical qubits : {self.num_logical}",
            f"  matched gates  : {self.matched_gates}",
            f"  SWAP gates     : {self.swap_count}",
        ]
        lines.extend("  - " + e for e in self.errors)
        return "\n".join(lines)


def _signature(kind: str, qubits: Tuple[int, ...], angle: Optional[float]):
    qs = tuple(sorted(qubits)) if kind in _SYMMETRIC_KINDS else tuple(qubits)
    ang = None if angle is None else round(angle, 9)
    return (kind, qs, ang)


def check_mapped_matches_circuit(
    mapped: MappedCircuit, circuit: Circuit
) -> ReplayReport:
    """Check that ``mapped`` is a hardware-compliant execution of ``circuit``."""

    n = circuit.num_qubits
    report = ReplayReport(num_logical=n)
    topo = mapped.topology

    if any(g.kind == GateKind.SWAP for g in circuit.gates):
        report.add_error(
            "source circuit contains SWAP gates; the generic replay check "
            "requires SWAP-free programs"
        )
        return report

    # 1 + 2: adjacency and honest logical stamps ---------------------------
    if len(set(mapped.initial_layout)) != len(mapped.initial_layout):
        report.add_error("initial layout is not injective")
    phys_to_log: Dict[int, int] = {p: l for l, p in enumerate(mapped.initial_layout)}
    adjacency_errors = stamp_errors = 0
    for pos, op in enumerate(mapped.ops):
        if op.kind == GateKind.BARRIER:
            continue
        if op.is_two_qubit:
            a, b = op.physical
            if not topo.has_edge(a, b):
                adjacency_errors += 1
                report.ok = False
                if adjacency_errors <= 5:
                    report.add_error(
                        f"op {pos}: {op.kind} on non-adjacent physical qubits ({a}, {b})"
                    )
        expected = tuple(phys_to_log.get(p, -1) for p in op.physical)
        if expected != op.logical:
            stamp_errors += 1
            report.ok = False
            if stamp_errors <= 5:
                report.add_error(
                    f"op {pos}: logical stamp {op.logical} does not match "
                    f"tracked layout {expected}"
                )
        if op.kind == GateKind.SWAP:
            a, b = op.physical
            la, lb = phys_to_log.get(a), phys_to_log.get(b)
            if lb is None:
                phys_to_log.pop(a, None)
            else:
                phys_to_log[a] = lb
            if la is None:
                phys_to_log.pop(b, None)
            else:
                phys_to_log[b] = la
            report.swap_count += 1

    # 3: gate-for-gate replay through the per-qubit dependence chains ------
    # Build indegrees/successors of the per-qubit-chain DAG, then consume
    # mapped events greedily: each event must match a *ready* program gate
    # (all predecessors on its qubits already executed) with the same kind,
    # operands and angle.
    last_on_qubit: Dict[int, int] = {}
    successors: List[List[int]] = [[] for _ in circuit.gates]
    indegree = [0] * len(circuit.gates)
    for idx, gate in enumerate(circuit.gates):
        preds = set()
        for q in gate.qubits:
            if q in last_on_qubit:
                preds.add(last_on_qubit[q])
            last_on_qubit[q] = idx
        for p in preds:
            successors[p].append(idx)
            indegree[idx] += 1

    ready: Dict[Tuple, List[int]] = {}
    for idx, gate in enumerate(circuit.gates):
        if indegree[idx] == 0:
            ready.setdefault(_signature(gate.kind, gate.qubits, gate.angle), []).append(idx)

    event_errors = 0
    for pos, (kind, logical, angle) in enumerate(mapped.logical_gate_events()):
        sig = _signature(kind, logical, angle)
        queue = ready.get(sig)
        if not queue:
            event_errors += 1
            report.ok = False
            if event_errors <= 5:
                report.add_error(
                    f"event {pos}: {kind}{logical} (angle={angle}) matches no "
                    "ready program gate (wrong gate, duplicate, or dependence "
                    "violation)"
                )
            continue
        idx = queue.pop(0)
        if not queue:
            del ready[sig]
        report.matched_gates += 1
        for succ in successors[idx]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                g = circuit.gates[succ]
                ready.setdefault(_signature(g.kind, g.qubits, g.angle), []).append(succ)

    if report.matched_gates != len(circuit.gates):
        report.add_error(
            f"mapped circuit executed {report.matched_gates} of "
            f"{len(circuit.gates)} program gates"
        )
        report.ok = False

    return report
