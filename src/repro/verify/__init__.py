"""Correctness verification: structural coverage checks and statevector simulation."""

from .coverage import CoverageReport, check_mapped_qft_structure
from .checker import VerificationResult, verify_mapped_qft
from .statevector import (
    apply_gate,
    circuit_unitary,
    mapped_events_unitary,
    qft_reference_unitary,
    random_state,
    simulate_circuit,
    states_equal_up_to_phase,
    unitaries_equal_up_to_phase,
)

__all__ = [
    "CoverageReport",
    "check_mapped_qft_structure",
    "VerificationResult",
    "verify_mapped_qft",
    "apply_gate",
    "circuit_unitary",
    "mapped_events_unitary",
    "qft_reference_unitary",
    "random_state",
    "simulate_circuit",
    "states_equal_up_to_phase",
    "unitaries_equal_up_to_phase",
]
