"""Dense statevector simulation for correctness checking.

The paper states (Section 7) that the authors "write an open-source simulator
to check the correctness of our outcome".  This module is that simulator for
our reproduction: it can

* apply logical gates (H, CPHASE, SWAP, CNOT, RZ) to a dense statevector,
* build the full unitary of a circuit (for <= ~10 qubits),
* produce the reference QFT unitary directly from its definition
  ``F[j, k] = omega^(jk) / sqrt(2^n)``,
* replay a *mapped* circuit on the logical state (using the logical stamps on
  each op, so SWAP tracking is already folded in) and compare against the
  reference.

Everything is vectorised with numpy reshape/transpose tricks; a 10-qubit
unitary check takes milliseconds, which keeps the property-based tests fast.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from ..circuit.circuit import Circuit
from ..circuit.gates import Gate, GateKind, Op

__all__ = [
    "apply_gate",
    "simulate_circuit",
    "circuit_unitary",
    "qft_reference_unitary",
    "mapped_events_unitary",
    "states_equal_up_to_phase",
    "unitaries_equal_up_to_phase",
    "random_state",
]

_H_MATRIX = np.array([[1.0, 1.0], [1.0, -1.0]], dtype=complex) / math.sqrt(2.0)


def _single_qubit_matrix(kind: str, angle: Optional[float]) -> np.ndarray:
    if kind == GateKind.H:
        return _H_MATRIX
    if kind == GateKind.RZ:
        if angle is None:
            raise ValueError("RZ needs an angle")
        return np.diag([1.0, np.exp(1j * angle)]).astype(complex)
    raise ValueError(f"unsupported single-qubit gate {kind!r}")


def _apply_single(state: np.ndarray, n: int, q: int, mat: np.ndarray) -> np.ndarray:
    """Apply a 2x2 matrix to qubit ``q`` of an ``n``-qubit state.

    Qubit 0 is the most significant bit of the basis-state index (the usual
    "qubit 0 on top of the circuit diagram" convention).
    """

    state = state.reshape((2,) * n)
    state = np.moveaxis(state, q, 0)
    shape = state.shape
    state = state.reshape(2, -1)
    state = mat @ state
    state = state.reshape(shape)
    state = np.moveaxis(state, 0, q)
    return state.reshape(-1)


def _apply_two(state: np.ndarray, n: int, a: int, b: int, mat4: np.ndarray) -> np.ndarray:
    """Apply a 4x4 matrix to qubits (a, b); ``a`` indexes the first factor."""

    state = state.reshape((2,) * n)
    state = np.moveaxis(state, (a, b), (0, 1))
    shape = state.shape
    state = state.reshape(4, -1)
    state = mat4 @ state
    state = state.reshape(shape)
    state = np.moveaxis(state, (0, 1), (a, b))
    return state.reshape(-1)


def _cphase_matrix(angle: float) -> np.ndarray:
    return np.diag([1.0, 1.0, 1.0, np.exp(1j * angle)]).astype(complex)


_SWAP_MATRIX = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

_CNOT_MATRIX = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=complex,
)


def apply_gate(state: np.ndarray, n: int, kind: str, qubits: Sequence[int],
               angle: Optional[float] = None) -> np.ndarray:
    """Apply one gate to an ``n``-qubit statevector and return the new state."""

    if kind in (GateKind.H, GateKind.RZ):
        (q,) = qubits
        return _apply_single(state, n, q, _single_qubit_matrix(kind, angle))
    if kind == GateKind.CPHASE:
        a, b = qubits
        if angle is None:
            raise ValueError("CPHASE needs an angle")
        return _apply_two(state, n, a, b, _cphase_matrix(angle))
    if kind == GateKind.SWAP:
        a, b = qubits
        return _apply_two(state, n, a, b, _SWAP_MATRIX)
    if kind == GateKind.CNOT:
        c, t = qubits
        return _apply_two(state, n, c, t, _CNOT_MATRIX)
    if kind == GateKind.BARRIER:
        return state
    raise ValueError(f"unsupported gate kind {kind!r}")


def simulate_circuit(circuit: Circuit, state: Optional[np.ndarray] = None) -> np.ndarray:
    """Run a logical circuit on ``state`` (default ``|0...0>``)."""

    n = circuit.num_qubits
    if state is None:
        state = np.zeros(2 ** n, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(state, dtype=complex).copy()
        if state.shape != (2 ** n,):
            raise ValueError("state has wrong dimension")
    for gate in circuit.gates:
        state = apply_gate(state, n, gate.kind, gate.qubits, gate.angle)
    return state


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Full unitary of a logical circuit (dimension ``2^n``; keep n small)."""

    n = circuit.num_qubits
    dim = 2 ** n
    unitary = np.eye(dim, dtype=complex)
    for gate in circuit.gates:
        # apply the gate to every column at once
        unitary = unitary.reshape(dim, dim)
        cols = []
        # vectorised: treat the unitary's columns as a batch of states
        state_batch = unitary.T.reshape(dim, dim)
        new_batch = np.empty_like(state_batch)
        for i in range(dim):
            new_batch[i] = apply_gate(state_batch[i], n, gate.kind, gate.qubits, gate.angle)
        unitary = new_batch.T
    return unitary


def mapped_events_unitary(n: int, events: Iterable[Tuple[str, Tuple[int, ...], Optional[float]]]) -> np.ndarray:
    """Unitary of a sequence of logical events (kind, logical qubits, angle)."""

    dim = 2 ** n
    basis = np.eye(dim, dtype=complex)
    out = np.empty((dim, dim), dtype=complex)
    for col in range(dim):
        state = basis[:, col].copy()
        for kind, qubits, angle in events:
            state = apply_gate(state, n, kind, qubits, angle)
        out[:, col] = state
    return out


def qft_reference_unitary(n: int, *, bit_reversed_output: bool = True) -> np.ndarray:
    """The reference QFT matrix.

    With the textbook circuit of Fig. 2 (H + controlled phases, *without* the
    final SWAP network) the output register appears in bit-reversed order;
    ``bit_reversed_output=True`` (default) returns that convention so it can
    be compared directly against the circuit's unitary.  Pass ``False`` for
    the plain DFT matrix ``F[j, k] = omega^(j*k) / sqrt(2^n)``.
    """

    dim = 2 ** n
    j = np.arange(dim).reshape(-1, 1)
    k = np.arange(dim).reshape(1, -1)
    omega = np.exp(2j * math.pi / dim)
    dft = np.power(omega, (j * k) % dim) / math.sqrt(dim)
    if not bit_reversed_output:
        return dft
    # Reorder rows by bit-reversal of the output index.
    rev = np.array([int(format(i, f"0{n}b")[::-1], 2) for i in range(dim)])
    return dft[rev, :][:, :]


def states_equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-9) -> bool:
    """True if two statevectors are equal up to a global phase."""

    a = np.asarray(a, dtype=complex).ravel()
    b = np.asarray(b, dtype=complex).ravel()
    if a.shape != b.shape:
        return False
    idx = int(np.argmax(np.abs(a)))
    if abs(a[idx]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = b[idx] / a[idx]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a * phase, b, atol=atol))


def unitaries_equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    """True if two unitaries are equal up to a global phase."""

    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    flat_a = a.ravel()
    flat_b = b.ravel()
    idx = int(np.argmax(np.abs(flat_a)))
    if abs(flat_a[idx]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = flat_b[idx] / flat_a[idx]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a * phase, b, atol=atol))


def random_state(n: int, seed: Optional[int] = None) -> np.ndarray:
    """A Haar-ish random normalised statevector (for property tests)."""

    rng = np.random.default_rng(seed)
    vec = rng.normal(size=2 ** n) + 1j * rng.normal(size=2 ** n)
    return vec / np.linalg.norm(vec)
