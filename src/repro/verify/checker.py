"""One-call verification entry point used by tests, examples and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..circuit.qft import qft_circuit
from ..circuit.schedule import MappedCircuit
from .coverage import CoverageReport, check_mapped_qft_structure
from .statevector import (
    circuit_unitary,
    mapped_events_unitary,
    unitaries_equal_up_to_phase,
)

__all__ = ["VerificationResult", "verify_mapped_qft"]

#: above this qubit count the dense unitary cross-check is skipped
DEFAULT_STATEVECTOR_LIMIT = 8


@dataclass
class VerificationResult:
    """Combined result of the structural and (optional) unitary checks."""

    structure: CoverageReport
    unitary_checked: bool
    unitary_ok: Optional[bool]

    @property
    def ok(self) -> bool:
        if not self.structure.ok:
            return False
        if self.unitary_checked and not self.unitary_ok:
            return False
        return True

    def summary(self) -> str:
        lines = [self.structure.summary()]
        if self.unitary_checked:
            lines.append(
                "Unitary equivalence check: " + ("OK" if self.unitary_ok else "FAILED")
            )
        else:
            lines.append("Unitary equivalence check: skipped (instance too large)")
        return "\n".join(lines)


def verify_mapped_qft(
    mapped: MappedCircuit,
    num_qubits: Optional[int] = None,
    *,
    strict_order: bool = False,
    statevector_limit: int = DEFAULT_STATEVECTOR_LIMIT,
) -> VerificationResult:
    """Verify that ``mapped`` implements the QFT kernel.

    Structural checks (coverage, adjacency, dependences) always run; if the
    instance has at most ``statevector_limit`` logical qubits the mapped
    circuit is additionally replayed on the logical state and its unitary is
    compared (up to global phase) with the textbook QFT circuit's unitary.
    """

    n = num_qubits if num_qubits is not None else mapped.num_logical
    structure = check_mapped_qft_structure(mapped, n, strict_order=strict_order)

    unitary_checked = False
    unitary_ok: Optional[bool] = None
    if structure.ok and n <= statevector_limit:
        unitary_checked = True
        reference = circuit_unitary(qft_circuit(n))
        actual = mapped_events_unitary(n, mapped.logical_gate_events())
        unitary_ok = unitaries_equal_up_to_phase(actual, reference)

    return VerificationResult(structure=structure, unitary_checked=unitary_checked, unitary_ok=unitary_ok)
