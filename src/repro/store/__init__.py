"""`repro.store`: the SQLite-backed experiment store.

One WAL-mode database unifying the three result formats that grew up
separately -- the JSON-file-per-key ``ResultCache``, append-only JSONL run
journals, and committed ``BENCH_*.json`` snapshots -- behind indexed
queries and a conflict-checked merge enforced as a SQL constraint.

The existing APIs are views over it: ``ResultCache`` opened on a ``.db``
path stores cells here, the shard coordinator and dispatcher grow a store
sink alongside their JSONL journals (``--store``), and
``scripts/bench.py`` / ``scripts/perf_gate.py`` write/read bench history
as rows.  CLI: ``python -m repro.store`` (``query``, ``history``,
``import-legacy``, ``gc``, ``info``).
"""

from .schema import SCHEMA_VERSION, ensure_schema
from .store import (
    ExperimentStore,
    JournalTee,
    RunRecorder,
    comparable_result,
    identity_columns,
    result_fingerprint,
)

__all__ = [
    "ExperimentStore",
    "JournalTee",
    "RunRecorder",
    "SCHEMA_VERSION",
    "comparable_result",
    "ensure_schema",
    "identity_columns",
    "result_fingerprint",
]
