"""CLI for the experiment store: ``python -m repro.store <cmd> DB ...``.

Subcommands
-----------
``query``
    Indexed cell query over the cache table:
    ``python -m repro.store query results.db --approach sabre --min-qubits 576``
``history``
    Wall-clock trend for pinned bench cells across recordings:
    ``python -m repro.store history results.db --approach sabre --size 16``
``runs``
    Recorded runs (journal store sink), newest first.
``import-legacy``
    Ingest committed ``BENCH_*.json`` snapshots and/or cache/journal
    directories, so history starts at PR 1 rather than empty:
    ``python -m repro.store import-legacy results.db --bench BENCH_*.json``
``gc``
    Drop cells of superseded code versions (``--keep-codes N`` or
    explicit ``--code V``); runs and bench history are never collected.
``info``
    Row counts per table and known code versions.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .store import ExperimentStore

__all__ = ["main"]


def _print_table(rows: List[dict], columns: Sequence[str]) -> None:
    if not rows:
        print("(no rows)")
        return
    data = [[_fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in data))
        for i, col in enumerate(columns)
    ]
    print("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    for line in data:
        print("  ".join(val.ljust(w) for val, w in zip(line, widths)))


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _emit(rows: List[dict], columns: Sequence[str], as_json: bool) -> None:
    if as_json:
        json.dump(rows, sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        _print_table(rows, columns)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="query and maintain a SQLite experiment store",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    q = sub.add_parser("query", help="indexed query over cached cells")
    q.add_argument("db")
    q.add_argument("--workload")
    q.add_argument("--approach")
    q.add_argument("--kind")
    q.add_argument("--size", type=int)
    q.add_argument("--min-qubits", type=int)
    q.add_argument("--status")
    q.add_argument("--code")
    q.add_argument("--limit", type=int)
    q.add_argument("--json", action="store_true", help="emit JSON rows")

    h = sub.add_parser("history", help="bench wall-clock trend per cell")
    h.add_argument("db")
    h.add_argument("--suite")
    h.add_argument("--group", dest="grp")
    h.add_argument("--workload")
    h.add_argument("--approach")
    h.add_argument("--kind")
    h.add_argument("--size", type=int)
    h.add_argument("--limit", type=int)
    h.add_argument("--json", action="store_true", help="emit JSON rows")

    r = sub.add_parser("runs", help="recorded runs, newest first")
    r.add_argument("db")
    r.add_argument("--limit", type=int)
    r.add_argument("--json", action="store_true", help="emit JSON rows")

    imp = sub.add_parser(
        "import-legacy",
        help="ingest BENCH_*.json snapshots and cache/journal directories",
    )
    imp.add_argument("db")
    imp.add_argument("--bench", nargs="*", default=[], metavar="FILE")
    imp.add_argument("--cache", nargs="*", default=[], metavar="DIR")
    imp.add_argument("--journal", nargs="*", default=[], metavar="DIR")

    g = sub.add_parser("gc", help="drop cells of superseded code versions")
    g.add_argument("db")
    g.add_argument("--keep-codes", type=int, help="keep the newest N versions")
    g.add_argument("--code", action="append", default=[], metavar="VERSION",
                   help="drop this version explicitly (repeatable)")
    g.add_argument("--dry-run", action="store_true")

    i = sub.add_parser("info", help="row counts and code versions")
    i.add_argument("db")

    args = parser.parse_args(argv)

    if args.cmd == "import-legacy" and not (
        args.bench or args.cache or args.journal
    ):
        parser.error("import-legacy needs at least one --bench/--cache/--journal")
    if args.cmd == "gc" and args.keep_codes is None and not args.code:
        parser.error("gc needs --keep-codes N or --code VERSION")

    with ExperimentStore(args.db) as store:
        if args.cmd == "query":
            rows = store.query_cells(
                workload=args.workload,
                approach=args.approach,
                kind=args.kind,
                size=args.size,
                min_qubits=args.min_qubits,
                status=args.status,
                code=args.code,
                limit=args.limit,
            )
            _emit(
                rows,
                ("workload", "approach", "kind", "size", "num_qubits",
                 "status", "depth", "swap_count", "compile_time_s", "code"),
                args.json,
            )
            print(f"{len(rows)} cell(s)", file=sys.stderr)
        elif args.cmd == "history":
            rows = store.bench_history(
                suite=args.suite,
                grp=args.grp,
                workload=args.workload,
                approach=args.approach,
                kind=args.kind,
                size=args.size,
                limit=args.limit,
            )
            _emit(
                rows,
                ("timestamp", "commit_hash", "suite", "grp", "workload",
                 "approach", "kind", "size", "status", "wall_s"),
                args.json,
            )
            print(f"{len(rows)} bench cell(s)", file=sys.stderr)
        elif args.cmd == "runs":
            rows = store.list_runs(limit=args.limit)
            _emit(
                rows,
                ("id", "experiment", "profile", "shard", "executor", "code",
                 "appended", "status_counts", "wall_s", "started_at",
                 "finished_at"),
                args.json,
            )
        elif args.cmd == "import-legacy":
            from . import legacy

            for path in args.bench:
                try:
                    info = legacy.import_bench_file(store, path)
                except ValueError as exc:
                    print(f"bench {path}: skipped ({exc})")
                    continue
                print(
                    f"bench {path}: recorded as id {info['bench_id']} "
                    f"({info['cells']} cells, suite {info['suite']})"
                )
            for path in args.cache:
                stats = legacy.import_cache_dir(store, path)
                print(
                    f"cache {path}: {stats['imported']} imported, "
                    f"{stats['skipped']} skipped, {stats['invalid']} invalid"
                )
            for path in args.journal:
                info = legacy.import_journal_dir(store, path)
                print(f"journal {path}: run {info['run_id']}, {info['cells']} cells")
        elif args.cmd == "gc":
            out = store.gc(
                keep_codes=args.keep_codes,
                codes=tuple(args.code),
                dry_run=args.dry_run,
            )
            verb = "would drop" if args.dry_run else "dropped"
            print(
                f"gc: {verb} {out['cells_deleted']} cell(s) across "
                f"{len(out['codes_dropped'])} code version(s)"
            )
        elif args.cmd == "info":
            counts = store.counts()
            for table in sorted(counts):
                print(f"{table:>14}: {counts[table]}")
            versions = store.code_versions()
            if versions:
                print("code versions (newest first):")
                for v in versions:
                    print(
                        f"  {v['version']}  first seen {v['first_seen']}  "
                        f"{v['cells']} cell(s)"
                    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit quietly like cat(1).
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)
