"""`ExperimentStore`: one SQLite database under cache + journal + bench.

The store is the queryable hub the ROADMAP calls for: cells (cache
entries), run journals, and bench history land in one WAL-mode SQLite
file with indexed spec columns, so cross-run questions ("all sabre cells
>= 576q across commits", "wall-clock trend for this cell since PR 5")
are single queries instead of directory spelunking.

Design rules, inherited from the formats it replaces:

* **Same keys.**  Cells are stored under the exact 24-hex content hash
  :meth:`ResultCache.key` computes; :func:`identity_columns` denormalizes
  the same spec fields into indexed columns, applying the same
  ``ENGINE_KWARGS`` filter -- engine-selection options are bit-identical
  by contract and must never fork a cell's identity, in columns any more
  than in keys.
* **Same bytes.**  The full result payload is stored verbatim as JSON, so
  a store-backed read deserializes into a :class:`CompilationResult`
  bit-equal to the directory cache's.
* **Merge conflicts are a constraint, not a convention.**  ``cells`` has
  ``UNIQUE (cell_key)``; :meth:`ExperimentStore.merge_cell` inserts and
  lets SQLite raise, then compares deterministic fingerprints to decide
  "duplicate shard result, skip" from "divergent result, raise
  :class:`~repro.eval.cache.CacheMergeConflict`".  Wall-clock and engine
  provenance are excluded from the fingerprint exactly as the directory
  merge excludes them from its comparison.
* **Durability like the journal.**  ``synchronous=FULL`` by default, so a
  committed cell survives power loss; WAL mode keeps concurrent shard
  writers and mid-run readers from blocking each other.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import uuid
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..approaches import ENGINE_KWARGS
from .schema import SCHEMA_VERSION, ensure_schema

__all__ = [
    "ExperimentStore",
    "RunRecorder",
    "JournalTee",
    "identity_columns",
    "comparable_result",
    "result_fingerprint",
]

#: result fields excluded from fingerprints/conflict checks: wall-clock is
#: a property of the machine, not the spec (mirrors ``ResultCache``).
VOLATILE_FIELDS = ("compile_time_s",)
#: ``extra`` keys likewise excluded: which routing engine ran (``kernel``)
#: and the cache-hit marker (``cache``) are provenance, not results.
VOLATILE_EXTRA = ("kernel", "cache")

#: numeric result fields mirrored into the long-form ``metrics`` table
METRIC_FIELDS = (
    "depth",
    "unit_depth",
    "swap_count",
    "cphase_count",
    "total_ops",
    "compile_time_s",
)


def _utc_now() -> str:
    """ISO-8601 UTC timestamp for provenance columns (never identity)."""

    from datetime import datetime, timezone

    now = datetime.now(timezone.utc)
    return now.isoformat(timespec="seconds")


def identity_columns(
    approach: str,
    kind: str,
    size: int,
    kwargs: Iterable[Tuple[str, object]] = (),
    rename: Optional[str] = None,
    timeout_s: Optional[float] = None,
    workload: str = "qft",
    workload_params: Iterable[Tuple[str, object]] = (),
    verify: str = "full",
) -> Dict[str, object]:
    """Denormalized spec columns for one cell, mirroring ``ResultCache.key``.

    These columns are what the store indexes queries on, so they carry the
    same identity contract as the key itself: engine-selection options
    (``ENGINE_KWARGS``, e.g. the SABRE routing kernel) are filtered out --
    engines are bit-identical by contract, and a store populated on a
    machine with the compiled kernel must answer queries identically to
    one populated by the Python fallback.
    """

    return {
        "approach": approach,
        "kind": kind,
        "size": int(size),
        "kwargs": json.dumps(
            sorted(
                (str(k), repr(v))
                for k, v in kwargs
                if str(k) not in ENGINE_KWARGS
            )
        ),
        "rename": rename,
        "timeout_s": timeout_s,
        "workload": workload,
        "workload_params": json.dumps(
            sorted((str(k), repr(v)) for k, v in workload_params)
        ),
        "verify": verify,
    }


def comparable_result(data: Dict[str, object]) -> Dict[str, object]:
    """The deterministic view of a result dict (volatile fields dropped)."""

    out = {k: v for k, v in data.items() if k not in VOLATILE_FIELDS}
    extra = out.get("extra")
    if isinstance(extra, dict):
        out["extra"] = {k: v for k, v in extra.items() if k not in VOLATILE_EXTRA}
    return out


def result_fingerprint(data: Dict[str, object]) -> str:
    """Content hash of the deterministic result fields (16 hex chars)."""

    payload = json.dumps(comparable_result(data), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class ExperimentStore:
    """SQLite-backed experiment store (WAL mode, safe for concurrent use).

    Parameters
    ----------
    path:
        Database file.  Created (with parents) on first open.
    timeout_s:
        Lock-wait budget (``busy_timeout``): how long a writer blocks on a
        concurrent transaction before giving up.
    page_size:
        Page size for *freshly created* databases (ignored on existing
        files -- SQLite fixes it at creation).  The torn-write tests use a
        small page so a single cell spans several pages.
    synchronous:
        ``"FULL"`` (default: a committed cell survives power loss, the
        journal's durability bar) or ``"NORMAL"`` (WAL-safe but a late
        commit may roll back after power loss) for throwaway runs.
    """

    def __init__(
        self,
        path,
        *,
        timeout_s: float = 30.0,
        page_size: Optional[int] = None,
        synchronous: str = "FULL",
    ) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        # isolation_level=None: autocommit with explicit BEGIN IMMEDIATE in
        # _tx(), so transaction boundaries are ours, not the driver's.
        self._conn = sqlite3.connect(
            str(self.path),
            timeout=timeout_s,
            isolation_level=None,
            check_same_thread=False,
        )
        self._conn.row_factory = sqlite3.Row
        cur = self._conn
        cur.execute(f"PRAGMA busy_timeout = {int(timeout_s * 1000)}")
        if page_size is not None:
            cur.execute(f"PRAGMA page_size = {int(page_size)}")
        cur.execute("PRAGMA journal_mode = WAL")
        if synchronous.upper() not in ("FULL", "NORMAL"):
            raise ValueError(f"synchronous must be FULL or NORMAL, not {synchronous!r}")
        cur.execute(f"PRAGMA synchronous = {synchronous.upper()}")
        cur.execute("PRAGMA foreign_keys = ON")
        with self._lock:
            ensure_schema(self._conn)

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _tx(self):
        """Serialized write transaction (``BEGIN IMMEDIATE`` ... commit)."""

        return _Transaction(self._conn, self._lock)

    # -- cells (the cache) ---------------------------------------------
    def record_code_version(self, version: Optional[str]) -> None:
        if not version:
            return
        with self._tx() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO code_versions (version, first_seen) "
                "VALUES (?, ?)",
                (version, _utc_now()),
            )

    def _cell_row(
        self,
        key: str,
        data: Dict[str, object],
        *,
        code: Optional[str],
        identity: Optional[Dict[str, object]],
    ) -> Dict[str, object]:
        identity = dict(identity or {})
        row = {
            "cell_key": key,
            "code": code,
            "workload": identity.get("workload", data.get("workload")),
            "approach": identity.get("approach", data.get("approach")),
            "kind": identity.get("kind"),
            "size": identity.get("size"),
            "kwargs": identity.get("kwargs"),
            "rename": identity.get("rename"),
            "timeout_s": identity.get("timeout_s"),
            "workload_params": identity.get("workload_params"),
            "verify": identity.get("verify"),
            "architecture": data.get("architecture"),
            "num_qubits": data.get("num_qubits"),
            "status": data.get("status", "ok"),
            "verified": (
                None if data.get("verified") is None else int(bool(data["verified"]))
            ),
            "fingerprint": result_fingerprint(data),
            "result": json.dumps(data, sort_keys=True),
            "created_at": _utc_now(),
        }
        return row

    @staticmethod
    def _clean(result) -> Dict[str, object]:
        """Result as a plain dict with the cache-hit marker stripped."""

        data = result if isinstance(result, dict) else result.to_dict()
        data = dict(data)
        extra = data.get("extra")
        if isinstance(extra, dict) and "cache" in extra:
            data["extra"] = {k: v for k, v in extra.items() if k != "cache"}
        return data

    def put_cell(
        self,
        key: str,
        result,
        *,
        code: Optional[str] = None,
        identity: Optional[Dict[str, object]] = None,
    ) -> None:
        """Insert-or-overwrite one cell (the directory cache's ``put``)."""

        data = self._clean(result)
        row = self._cell_row(key, data, code=code, identity=identity)
        cols = ", ".join(row)
        marks = ", ".join("?" for _ in row)
        sets = ", ".join(f"{c} = excluded.{c}" for c in row if c != "cell_key")
        with self._tx() as conn:
            if code:
                conn.execute(
                    "INSERT OR IGNORE INTO code_versions (version, first_seen) "
                    "VALUES (?, ?)",
                    (code, _utc_now()),
                )
            conn.execute(
                f"INSERT INTO cells ({cols}) VALUES ({marks}) "
                f"ON CONFLICT (cell_key) DO UPDATE SET {sets}",
                tuple(row.values()),
            )
            self._refresh_metrics(conn, key, data)

    def _refresh_metrics(self, conn, key: str, data: Dict[str, object]) -> None:
        cell_id = conn.execute(
            "SELECT id FROM cells WHERE cell_key = ?", (key,)
        ).fetchone()[0]
        conn.execute("DELETE FROM metrics WHERE cell_id = ?", (cell_id,))
        rows = [
            (cell_id, name, float(data[name]))
            for name in METRIC_FIELDS
            if isinstance(data.get(name), (int, float))
            and not isinstance(data.get(name), bool)
        ]
        conn.executemany(
            "INSERT INTO metrics (cell_id, name, value) VALUES (?, ?, ?)", rows
        )

    def merge_cell(
        self,
        key: str,
        result,
        *,
        code: Optional[str] = None,
        identity: Optional[Dict[str, object]] = None,
        origin: str = "merge source",
    ) -> str:
        """Conflict-checked insert: the SQL-constraint form of cache merge.

        Returns ``"imported"`` or ``"skipped"`` (key already present with an
        equal deterministic fingerprint).  A present-but-divergent key
        raises :class:`~repro.eval.cache.CacheMergeConflict`, triggered by
        the ``UNIQUE (cell_key)`` constraint rather than a read-then-write
        convention -- concurrent mergers cannot slip a divergent row past
        the check.
        """

        data = self._clean(result)
        row = self._cell_row(key, data, code=code, identity=identity)
        cols = ", ".join(row)
        marks = ", ".join("?" for _ in row)
        try:
            with self._tx() as conn:
                if code:
                    conn.execute(
                        "INSERT OR IGNORE INTO code_versions "
                        "(version, first_seen) VALUES (?, ?)",
                        (code, _utc_now()),
                    )
                conn.execute(
                    f"INSERT INTO cells ({cols}) VALUES ({marks})",
                    tuple(row.values()),
                )
                self._refresh_metrics(conn, key, data)
        except sqlite3.IntegrityError:
            existing = self.get_cell(key)
            if existing is not None and comparable_result(
                existing
            ) == comparable_result(data):
                return "skipped"
            from ..eval.cache import CacheMergeConflict

            existing = existing or {}
            differing = sorted(
                k
                for k in set(existing) | set(data)
                if k not in VOLATILE_FIELDS and existing.get(k) != data.get(k)
            )
            raise CacheMergeConflict(
                f"store cell {key} from {origin} disagrees with the "
                f"existing row on field(s) {', '.join(differing)}; same key "
                "+ same code version must mean identical results -- one of "
                "the stores is corrupt"
            ) from None
        return "imported"

    def get_cell(self, key: str) -> Optional[Dict[str, object]]:
        """The stored result dict for ``key``, or ``None``."""

        with self._lock:
            row = self._conn.execute(
                "SELECT result FROM cells WHERE cell_key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except ValueError:
            return None

    def iter_cells(self) -> Iterator[Dict[str, object]]:
        """Every cell row (identity columns + parsed result), by key order."""

        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM cells ORDER BY cell_key"
            ).fetchall()
        for row in rows:
            out = dict(row)
            out["result"] = json.loads(out["result"])
            yield out

    def merge_from(self, source) -> Dict[str, int]:
        """Union another store (``.db``) or cache directory into this one.

        Same contract as :meth:`ResultCache.merge`: sorted key order,
        unreadable entries counted as ``invalid``, present-and-equal keys
        ``skipped``, divergent keys raise ``CacheMergeConflict``.
        """

        src = Path(source)
        imported = skipped = invalid = 0
        if src.suffix == ".db":
            if not src.is_file():
                raise FileNotFoundError(f"store {src} does not exist")
            with ExperimentStore(src) as other:
                for cell in other.iter_cells():
                    identity = {
                        k: cell[k]
                        for k in (
                            "workload", "approach", "kind", "size", "kwargs",
                            "rename", "timeout_s", "workload_params", "verify",
                        )
                    }
                    outcome = self.merge_cell(
                        cell["cell_key"],
                        cell["result"],
                        code=cell["code"],
                        identity=identity,
                        origin=str(src),
                    )
                    if outcome == "imported":
                        imported += 1
                    else:
                        skipped += 1
            return {"imported": imported, "skipped": skipped, "invalid": invalid}
        if not src.is_dir():
            raise FileNotFoundError(f"cache directory {src} does not exist")
        from ..eval.metrics import CompilationResult

        for path in sorted(src.glob("*.json")):
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                CompilationResult.from_dict(data)
            except (OSError, ValueError, TypeError):
                invalid += 1
                continue
            outcome = self.merge_cell(path.stem, data, origin=str(src))
            if outcome == "imported":
                imported += 1
            else:
                skipped += 1
        return {"imported": imported, "skipped": skipped, "invalid": invalid}

    def query_cells(
        self,
        *,
        workload: Optional[str] = None,
        approach: Optional[str] = None,
        kind: Optional[str] = None,
        size: Optional[int] = None,
        min_qubits: Optional[int] = None,
        status: Optional[str] = None,
        code: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """Indexed cell query; each row is identity columns + result fields."""

        clauses, params = [], []
        for col, val in (
            ("workload", workload),
            ("approach", approach),
            ("kind", kind),
            ("size", size),
            ("status", status),
            ("code", code),
        ):
            if val is not None:
                clauses.append(f"{col} = ?")
                params.append(val)
        if min_qubits is not None:
            clauses.append("num_qubits >= ?")
            params.append(min_qubits)
        sql = "SELECT * FROM cells"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY workload, approach, kind, size, cell_key"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        out = []
        for row in rows:
            rec = dict(row)
            result = json.loads(rec.pop("result"))
            for field_name in METRIC_FIELDS:
                rec[field_name] = result.get(field_name)
            rec["message"] = result.get("message")
            out.append(rec)
        return out

    # -- runs (the journal's store sink) --------------------------------
    def begin_run(
        self,
        meta: Dict[str, object],
        *,
        executor: Optional[str] = None,
        jobs: Optional[int] = None,
        source: Optional[str] = None,
    ) -> int:
        """Open a run row mirroring the JSONL journal's meta line."""

        shard = meta.get("shard")
        with self._tx() as conn:
            if meta.get("code"):
                conn.execute(
                    "INSERT OR IGNORE INTO code_versions (version, first_seen) "
                    "VALUES (?, ?)",
                    (meta["code"], _utc_now()),
                )
            cur = conn.execute(
                "INSERT INTO runs (run_uid, experiment, profile, verify, "
                "shard, executor, jobs, code, plan, source, started_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    uuid.uuid4().hex[:16],
                    meta.get("experiment"),
                    meta.get("profile"),
                    meta.get("verify"),
                    None if shard is None else str(shard),
                    executor,
                    jobs,
                    meta.get("code"),
                    meta.get("plan"),
                    source,
                    _utc_now(),
                ),
            )
            return int(cur.lastrowid)

    def append_run_cell(self, run_id: int, key: str, result) -> None:
        """Record one journaled cell append (append order preserved)."""

        data = self._clean(result)
        with self._tx() as conn:
            seq = conn.execute(
                "SELECT COALESCE(MAX(seq), -1) + 1 FROM run_cells "
                "WHERE run_id = ?",
                (run_id,),
            ).fetchone()[0]
            conn.execute(
                "INSERT INTO run_cells (run_id, seq, cell_key, status, "
                "result, created_at) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    seq,
                    key,
                    data.get("status"),
                    json.dumps(data, sort_keys=True),
                    _utc_now(),
                ),
            )

    def finish_run(self, run_id: int, *, wall_s: Optional[float] = None) -> None:
        """Close a run row; status counts come from its own appended cells."""

        with self._tx() as conn:
            counts = dict(
                conn.execute(
                    "SELECT status, COUNT(*) FROM ("
                    "  SELECT cell_key, status, MAX(seq) FROM run_cells "
                    "  WHERE run_id = ? GROUP BY cell_key"
                    ") GROUP BY status ORDER BY status",
                    (run_id,),
                ).fetchall()
            )
            conn.execute(
                "UPDATE runs SET finished_at = ?, wall_s = ?, "
                "status_counts = ? WHERE id = ?",
                (_utc_now(), wall_s, json.dumps(counts, sort_keys=True), run_id),
            )

    def run_results(self, run_id: int) -> Dict[str, Dict[str, object]]:
        """Journaled results by cell key (last append wins, like JSONL)."""

        with self._lock:
            rows = self._conn.execute(
                "SELECT cell_key, result FROM run_cells WHERE run_id = ? "
                "ORDER BY seq",
                (run_id,),
            ).fetchall()
        out: Dict[str, Dict[str, object]] = {}
        for key, payload in rows:
            out[key] = json.loads(payload)
        return out

    def list_runs(self, *, limit: Optional[int] = None) -> List[Dict[str, object]]:
        sql = (
            "SELECT r.*, COUNT(rc.cell_key) AS appended FROM runs r "
            "LEFT JOIN run_cells rc ON rc.run_id = r.id "
            "GROUP BY r.id ORDER BY r.id DESC"
        )
        params: List[object] = []
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            return [dict(r) for r in self._conn.execute(sql, params).fetchall()]

    # -- bench history ---------------------------------------------------
    def record_bench(self, payload: Dict[str, object], *, source: Optional[str] = None) -> int:
        """Ingest one ``scripts/bench.py`` payload (cells kept verbatim)."""

        with self._tx() as conn:
            cur = conn.execute(
                "INSERT INTO bench (suite, label, commit_hash, dirty, "
                "timestamp, python, jobs, total_wall_s, source, imported_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    payload.get("suite"),
                    payload.get("label"),
                    payload.get("commit"),
                    None if payload.get("dirty") is None else int(bool(payload["dirty"])),
                    payload.get("timestamp"),
                    payload.get("python"),
                    payload.get("jobs"),
                    payload.get("total_wall_s"),
                    source,
                    _utc_now(),
                ),
            )
            bench_id = int(cur.lastrowid)
            for group in payload.get("groups", ()):
                for seq, cell in enumerate(group.get("cells", ())):
                    conn.execute(
                        "INSERT INTO bench_cells (bench_id, grp, seq, "
                        "workload, approach, kind, size, qubits, status, "
                        "wall_s, cell) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            bench_id,
                            group.get("name"),
                            seq,
                            cell.get("workload"),
                            cell.get("approach"),
                            cell.get("kind"),
                            cell.get("size"),
                            cell.get("qubits"),
                            cell.get("status"),
                            cell.get("compile_time_s"),
                            json.dumps(cell, sort_keys=True),
                        ),
                    )
            return bench_id

    def bench_payload(self, bench_id: int) -> Optional[Dict[str, object]]:
        """Reconstruct a bench payload bit-equal in cells to its source."""

        with self._lock:
            head = self._conn.execute(
                "SELECT * FROM bench WHERE id = ?", (bench_id,)
            ).fetchone()
            rows = self._conn.execute(
                "SELECT grp, cell FROM bench_cells WHERE bench_id = ? "
                "ORDER BY rowid",
                (bench_id,),
            ).fetchall()
        if head is None:
            return None
        groups: List[Dict[str, object]] = []
        by_name: Dict[str, Dict[str, object]] = {}
        for grp, cell in rows:
            bucket = by_name.get(grp)
            if bucket is None:
                bucket = {"name": grp, "cells": []}
                by_name[grp] = bucket
                groups.append(bucket)
            bucket["cells"].append(json.loads(cell))
        return {
            "suite": head["suite"],
            "label": head["label"],
            "commit": head["commit_hash"],
            "dirty": None if head["dirty"] is None else bool(head["dirty"]),
            "timestamp": head["timestamp"],
            "python": head["python"],
            "jobs": head["jobs"],
            "total_wall_s": head["total_wall_s"],
            "groups": groups,
        }

    def latest_baseline(
        self, suite: str, *, commit: Optional[str] = None
    ) -> Optional[Dict[str, object]]:
        """Latest recorded bench payload for ``suite`` (optionally pinned
        to a commit) -- the perf gate's baseline query."""

        sql = "SELECT id FROM bench WHERE suite = ?"
        params: List[object] = [suite]
        if commit is not None:
            sql += " AND commit_hash = ?"
            params.append(commit)
        sql += " ORDER BY timestamp DESC, id DESC LIMIT 1"
        with self._lock:
            row = self._conn.execute(sql, params).fetchone()
        return None if row is None else self.bench_payload(int(row[0]))

    def bench_history(
        self,
        *,
        suite: Optional[str] = None,
        grp: Optional[str] = None,
        workload: Optional[str] = None,
        approach: Optional[str] = None,
        kind: Optional[str] = None,
        size: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """Wall-clock trend rows for pinned bench cells across recordings."""

        clauses, params = [], []
        for col, val in (
            ("b.suite", suite),
            ("c.grp", grp),
            ("c.workload", workload),
            ("c.approach", approach),
            ("c.kind", kind),
            ("c.size", size),
        ):
            if val is not None:
                clauses.append(f"{col} = ?")
                params.append(val)
        sql = (
            "SELECT b.timestamp, b.commit_hash, b.label, b.suite, c.grp, "
            "c.workload, c.approach, c.kind, c.size, c.status, c.wall_s "
            "FROM bench_cells c JOIN bench b ON b.id = c.bench_id"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += (
            " ORDER BY b.timestamp, b.id, c.grp, c.seq"
        )
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            return [dict(r) for r in self._conn.execute(sql, params).fetchall()]

    # -- maintenance -----------------------------------------------------
    def counts(self) -> Dict[str, int]:
        out = {}
        with self._lock:
            for table in ("cells", "metrics", "runs", "run_cells", "bench",
                          "bench_cells", "code_versions"):
                out[table] = self._conn.execute(
                    f"SELECT COUNT(*) FROM {table}"
                ).fetchone()[0]
        return out

    def code_versions(self) -> List[Dict[str, object]]:
        """Known code versions, newest first, with their cell counts."""

        with self._lock:
            rows = self._conn.execute(
                "SELECT v.version, v.first_seen, COUNT(c.id) AS cells "
                "FROM code_versions v LEFT JOIN cells c ON c.code = v.version "
                "GROUP BY v.version "
                "ORDER BY v.first_seen DESC, v.version DESC"
            ).fetchall()
        return [dict(r) for r in rows]

    def gc(
        self,
        *,
        keep_codes: Optional[int] = None,
        codes: Sequence[str] = (),
        dry_run: bool = False,
    ) -> Dict[str, object]:
        """Drop cells of superseded code versions (and the versions).

        Either name versions explicitly (``codes``) or keep the newest
        ``keep_codes`` versions by first-seen time and drop the rest.
        Runs and bench history are never collected: they are the historical
        record the store exists to keep.
        """

        if codes:
            drop = sorted(set(codes))
        elif keep_codes is not None:
            if keep_codes < 1:
                raise ValueError("keep_codes must be >= 1")
            known = [v["version"] for v in self.code_versions()]
            drop = known[keep_codes:]
        else:
            raise ValueError("gc needs either codes or keep_codes")
        marks = ", ".join("?" for _ in drop) or "NULL"
        with self._lock:
            doomed = self._conn.execute(
                f"SELECT COUNT(*) FROM cells WHERE code IN ({marks})", drop
            ).fetchone()[0]
        if not dry_run and drop:
            with self._tx() as conn:
                conn.execute(f"DELETE FROM cells WHERE code IN ({marks})", drop)
                conn.execute(
                    f"DELETE FROM code_versions WHERE version IN ({marks})", drop
                )
            with self._lock:
                self._conn.execute("VACUUM")
        return {"codes_dropped": drop, "cells_deleted": doomed, "dry_run": dry_run}


class _Transaction:
    """``BEGIN IMMEDIATE`` ... ``COMMIT``/``ROLLBACK``, under the store lock."""

    def __init__(self, conn: sqlite3.Connection, lock: threading.RLock) -> None:
        self._conn = conn
        self._lock = lock

    def __enter__(self) -> sqlite3.Connection:
        self._lock.acquire()
        try:
            self._conn.execute("BEGIN IMMEDIATE")
        except BaseException:
            self._lock.release()
            raise
        return self._conn

    def __exit__(self, exc_type, *exc) -> None:
        try:
            if exc_type is None:
                self._conn.execute("COMMIT")
            else:
                self._conn.execute("ROLLBACK")
        finally:
            self._lock.release()


class RunRecorder:
    """The journal's store sink: one ``runs`` row plus per-cell appends.

    Mirrors the :class:`~repro.eval.journal.RunJournal` lifecycle --
    created before the first cell, appended per finished cell, finished in
    the executor's ``finally`` -- so a crashed run leaves a run row whose
    ``run_cells`` prefix is exactly the set of durably finished cells.
    """

    def __init__(
        self,
        store: ExperimentStore,
        meta: Dict[str, object],
        *,
        executor: Optional[str] = None,
        jobs: Optional[int] = None,
        source: Optional[str] = None,
        owns_store: bool = True,
    ) -> None:
        import time

        self.store = store
        self._owns_store = owns_store
        self.run_id = store.begin_run(
            meta, executor=executor, jobs=jobs, source=source
        )
        self.appended = 0
        self._wall_t0 = time.monotonic()
        self._finished = False

    def append(self, key: str, result) -> None:
        self.store.append_run_cell(self.run_id, key, result)
        self.appended += 1

    def finish(self) -> None:
        """Close the run row (idempotent; safe in ``finally`` blocks)."""

        if self._finished:
            return
        self._finished = True
        import time

        wall = time.monotonic() - self._wall_t0
        try:
            self.store.finish_run(self.run_id, wall_s=round(wall, 3))
        finally:
            if self._owns_store:
                self.store.close()


class JournalTee:
    """A ``RunJournal``-shaped sink fanning appends out to JSONL + store.

    The dispatcher and shard coordinator journal through a single object;
    handing them a tee keeps the single-writer discipline (PR 7) while the
    store records the same appends.  The JSONL journal stays the resume
    source of truth; ``close`` here closes only the journal -- the caller
    finishes the recorder in its own ``finally``.
    """

    def __init__(self, journal, recorder: RunRecorder) -> None:
        self._journal = journal
        self._recorder = recorder

    @property
    def meta(self) -> Dict[str, object]:
        return self._journal.meta if self._journal is not None else {}

    @property
    def path(self):
        return self._journal.path if self._journal is not None else None

    def append(self, key: str, result) -> None:
        if self._journal is not None:
            self._journal.append(key, result)
        self._recorder.append(key, result)

    def results(self):
        return self._journal.results() if self._journal is not None else {}

    def __len__(self) -> int:
        return len(self._journal) if self._journal is not None else self._recorder.appended

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
