"""DDL for the SQLite experiment store.

One database holds everything the repo previously scattered over three
ad-hoc formats -- the JSON-file-per-key ``ResultCache``, append-only JSONL
run journals, and committed ``BENCH_*.json`` snapshots:

``cells``
    The cache: one row per (spec, code version), keyed by the same 24-hex
    content hash :meth:`ResultCache.key` computes, with the spec fields
    denormalized into indexed columns so "all sabre cells >= 576q across
    commits" is one ``SELECT``.  The full result payload is kept verbatim
    as JSON (``result``) so store-backed reads are bit-equal to the
    directory cache; ``fingerprint`` hashes the *deterministic* fields
    (wall-clock and engine provenance excluded) and backs the
    conflict-checked merge.  The ``UNIQUE (cell_key)`` constraint is the
    merge-conflict detector: an ``INSERT`` racing an existing divergent row
    raises, and the Python layer turns that into ``CacheMergeConflict``.

``metrics``
    Numeric metrics per cell, long-form ``(cell_id, name, value)``, so new
    metric columns (e.g. a future fidelity score) need no schema change.

``runs`` / ``run_cells``
    The journal: one ``runs`` row per execution (meta mirroring the JSONL
    journal's meta line -- experiment, profile, plan fingerprint, code
    version, shard), and one ``run_cells`` row per journaled cell append,
    in append order (``seq``).  Like the JSONL journal, a cell may appear
    more than once (straggler retries); last-per-key wins at query time.

``bench`` / ``bench_cells``
    Bench history: one ``bench`` row per ``scripts/bench.py`` payload and
    one ``bench_cells`` row per pinned cell, with the original cell JSON
    kept verbatim so the perf gate can reconstruct a baseline payload
    bit-equal to the committed ``BENCH_*.json`` snapshots it replaces.

``code_versions``
    Every code version that ever wrote a cell, with first-seen timestamps;
    ``gc`` drops superseded versions' cells by this table.

All timestamps are ISO-8601 UTC strings; they are provenance, never part
of any key or fingerprint.
"""

from __future__ import annotations

import sqlite3

__all__ = ["SCHEMA_VERSION", "ensure_schema"]

#: Bump when the DDL changes incompatibly; ``ensure_schema`` refuses to
#: open a database written by a different schema version rather than
#: guessing at a migration.
SCHEMA_VERSION = 1

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS code_versions (
    version    TEXT PRIMARY KEY,
    first_seen TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS cells (
    id              INTEGER PRIMARY KEY,
    cell_key        TEXT NOT NULL,
    code            TEXT,
    workload        TEXT,
    approach        TEXT,
    kind            TEXT,
    size            INTEGER,
    kwargs          TEXT,
    rename          TEXT,
    timeout_s       REAL,
    workload_params TEXT,
    verify          TEXT,
    architecture    TEXT,
    num_qubits      INTEGER,
    status          TEXT NOT NULL,
    verified        INTEGER,
    fingerprint     TEXT NOT NULL,
    result          TEXT NOT NULL,
    created_at      TEXT NOT NULL,
    UNIQUE (cell_key)
);
CREATE INDEX IF NOT EXISTS cells_by_spec   ON cells (approach, kind, size);
CREATE INDEX IF NOT EXISTS cells_by_qubits ON cells (num_qubits);
CREATE INDEX IF NOT EXISTS cells_by_code   ON cells (code);

CREATE TABLE IF NOT EXISTS metrics (
    cell_id INTEGER NOT NULL REFERENCES cells (id) ON DELETE CASCADE,
    name    TEXT NOT NULL,
    value   REAL NOT NULL,
    PRIMARY KEY (cell_id, name)
);
CREATE INDEX IF NOT EXISTS metrics_by_name ON metrics (name, value);

CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY,
    run_uid       TEXT NOT NULL UNIQUE,
    experiment    TEXT,
    profile       TEXT,
    verify        TEXT,
    shard         TEXT,
    executor      TEXT,
    jobs          INTEGER,
    code          TEXT,
    plan          TEXT,
    wall_s        REAL,
    status_counts TEXT,
    source        TEXT,
    started_at    TEXT NOT NULL,
    finished_at   TEXT
);
CREATE INDEX IF NOT EXISTS runs_by_experiment ON runs (experiment);

CREATE TABLE IF NOT EXISTS run_cells (
    run_id     INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    seq        INTEGER NOT NULL,
    cell_key   TEXT NOT NULL,
    status     TEXT,
    result     TEXT NOT NULL,
    created_at TEXT NOT NULL,
    PRIMARY KEY (run_id, seq)
);
CREATE INDEX IF NOT EXISTS run_cells_by_key ON run_cells (cell_key);

CREATE TABLE IF NOT EXISTS bench (
    id           INTEGER PRIMARY KEY,
    suite        TEXT,
    label        TEXT,
    commit_hash  TEXT,
    dirty        INTEGER,
    timestamp    TEXT,
    python       TEXT,
    jobs         INTEGER,
    total_wall_s REAL,
    source       TEXT,
    imported_at  TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS bench_by_suite ON bench (suite, timestamp);

CREATE TABLE IF NOT EXISTS bench_cells (
    bench_id INTEGER NOT NULL REFERENCES bench (id) ON DELETE CASCADE,
    grp      TEXT NOT NULL,
    seq      INTEGER NOT NULL,
    workload TEXT,
    approach TEXT,
    kind     TEXT,
    size     INTEGER,
    qubits   INTEGER,
    status   TEXT,
    wall_s   REAL,
    cell     TEXT NOT NULL,
    PRIMARY KEY (bench_id, grp, seq)
);
CREATE INDEX IF NOT EXISTS bench_cells_by_spec
    ON bench_cells (approach, kind, size);
"""


def ensure_schema(conn: sqlite3.Connection) -> None:
    """Create the schema if absent; refuse a mismatched schema version."""

    conn.executescript(_DDL)
    # BEGIN IMMEDIATE so the check-then-stamp below is one atomic unit:
    # two processes opening the same fresh database serialize here instead
    # of racing between the SELECT and the INSERT.
    conn.execute("BEGIN IMMEDIATE")
    try:
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        elif str(row[0]) != str(SCHEMA_VERSION):
            raise ValueError(
                f"store schema version {row[0]} != supported {SCHEMA_VERSION}; "
                "this database was written by an incompatible repro version -- "
                "export with its own tooling, or start a fresh store"
            )
        conn.execute("COMMIT")
    except BaseException:
        conn.execute("ROLLBACK")
        raise
