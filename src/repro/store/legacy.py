"""Legacy ingestion: start store history at PR 1 instead of empty.

``python -m repro.store DB import-legacy`` pulls the three pre-store
formats into one database:

* ``BENCH_*.json`` snapshots -> ``bench``/``bench_cells`` rows, cells kept
  verbatim so the perf gate's reconstructed baseline is bit-equal to the
  committed file it replaces.
* ``ResultCache`` directories -> ``cells`` rows via the same
  conflict-checked merge as ``--cache-merge`` (divergent entries raise
  ``CacheMergeConflict`` rather than silently winning).
* JSONL run-journal directories -> ``runs``/``run_cells`` rows.  Journals
  are parsed **read-only** here -- unlike ``RunJournal.open`` (which
  repairs torn tails in place for resumption), importing history must not
  mutate the files it reads.  Journal cell keys are spec-content hashes
  without the code version (the journal's own key space), so they land in
  run history, not the cache table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .store import ExperimentStore

__all__ = ["import_bench_file", "import_cache_dir", "import_journal_dir"]


def import_bench_file(store: ExperimentStore, path) -> Dict[str, object]:
    """Record one committed ``BENCH_*.json`` snapshot as bench history."""

    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if "groups" not in payload:
        raise ValueError(
            f"{path.name} is not a scripts/bench.py payload (no 'groups'); "
            "only suite snapshots become bench history"
        )
    bench_id = store.record_bench(payload, source=path.name)
    cells = sum(len(g.get("cells", ())) for g in payload.get("groups", ()))
    return {"bench_id": bench_id, "cells": cells, "suite": payload.get("suite")}


def import_cache_dir(store: ExperimentStore, path) -> Dict[str, int]:
    """Merge a ``ResultCache`` directory (conflict-checked, like the CLI)."""

    return store.merge_from(path)


def _parse_journal(path: Path) -> Tuple[Dict[str, object], List[Tuple[str, Dict[str, object]]]]:
    """Read-only parse of one ``journal.jsonl``: (meta, appends in order).

    A torn (unterminated) final line is dropped without touching the file;
    mid-file garbage raises ``ValueError`` -- same asymmetry as
    ``RunJournal.open``, minus the in-place repair.
    """

    raw = path.read_bytes()
    text = raw.decode("utf-8", errors="replace")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    elif lines:
        lines.pop()  # unterminated tail: a torn write, not durable
    meta: Dict[str, object] = {}
    appends: List[Tuple[str, Dict[str, object]]] = []
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
        except ValueError:
            raise ValueError(
                f"journal {path} line {i + 1} is unparseable; refusing to "
                "import a corrupt journal"
            ) from None
        if not isinstance(record, dict):
            raise ValueError(f"journal {path} line {i + 1} is not an object")
        if i == 0 and record.get("type") == "meta":
            meta = {k: v for k, v in record.items() if k != "type"}
        elif record.get("type") == "cell":
            appends.append((str(record["key"]), record["result"]))
    return meta, appends


def import_journal_dir(store: ExperimentStore, path) -> Dict[str, object]:
    """Record one journal directory as a finished run (read-only source)."""

    from ..eval.journal import JOURNAL_FILENAME

    root = Path(path)
    journal_path = root / JOURNAL_FILENAME
    if not journal_path.is_file():
        raise FileNotFoundError(f"no journal at {journal_path}")
    meta, appends = _parse_journal(journal_path)
    run_id = store.begin_run(
        meta, executor="import-legacy", source=str(journal_path)
    )
    for key, result in appends:
        store.append_run_cell(run_id, key, result)
    store.finish_run(run_id)
    return {"run_id": run_id, "cells": len(appends), "meta": meta}


def default_bench_snapshots(repo_root) -> List[Path]:
    """The committed ``BENCH_*.json`` suite snapshots, sorted by name.

    Only files in the ``scripts/bench.py`` payload shape qualify; other
    ``BENCH_``-prefixed artifacts (e.g. the kernel micro-bench table) are
    not suite history and are skipped.
    """

    out = []
    for path in sorted(Path(repo_root).glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict) and "groups" in payload:
            out.append(path)
    return out
