"""Small shared utilities."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, TypeVar

__all__ = ["BoundedCache", "clear_process_caches"]

V = TypeVar("V")

# Every BoundedCache instance; they are all process-wide module singletons,
# so one hook can drop them together under memory pressure (see
# repro.arch.topology.clear_distance_cache).
_ALL_CACHES: "List[BoundedCache]" = []


def clear_process_caches() -> None:
    """Empty every process-wide BoundedCache (tests / memory pressure)."""

    for cache in _ALL_CACHES:
        cache.clear()


class BoundedCache(OrderedDict):
    """A tiny bounded LRU mapping.

    Used for the process-wide caches keyed by coupling-graph identity
    (distance matrices, SABRE routing tables, topology instances): lookups
    refresh recency, and storing beyond ``max_entries`` evicts the least
    recently used entry, so a paper-profile sweep over dozens of large
    graphs cannot pin them all in memory for the life of the process.
    """

    def __init__(self, max_entries: int) -> None:
        super().__init__()
        self.max_entries = max_entries
        _ALL_CACHES.append(self)

    def lookup(self, key) -> Optional[V]:
        """Value for ``key`` (refreshing its recency), or None."""

        hit = self.get(key)
        if hit is not None:
            self.move_to_end(key)
        return hit

    def store(self, key, value: V) -> V:
        """Insert ``value`` under ``key``, evicting the LRU entry if full."""

        self[key] = value
        if len(self) > self.max_entries:
            self.popitem(last=False)
        return value
