"""Small shared utilities."""

from __future__ import annotations

import signal
import sys
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import List, Optional, TypeVar

__all__ = [
    "BoundedCache",
    "clear_process_caches",
    "CellBudgetExceeded",
    "cell_budget",
]

V = TypeVar("V")

# Every BoundedCache instance; they are all process-wide module singletons,
# so one hook can drop them together under memory pressure (see
# repro.arch.topology.clear_distance_cache).
_ALL_CACHES: "List[BoundedCache]" = []


def clear_process_caches() -> None:
    """Empty every process-wide BoundedCache (tests / memory pressure)."""

    for cache in _ALL_CACHES:
        cache.clear()


class BoundedCache(OrderedDict):
    """A tiny bounded LRU mapping.

    Used for the process-wide caches keyed by coupling-graph identity
    (distance matrices, SABRE routing tables, topology instances): lookups
    refresh recency, and storing beyond ``max_entries`` evicts the least
    recently used entry, so a paper-profile sweep over dozens of large
    graphs cannot pin them all in memory for the life of the process.
    """

    def __init__(self, max_entries: int) -> None:
        super().__init__()
        self.max_entries = max_entries
        _ALL_CACHES.append(self)

    def lookup(self, key) -> Optional[V]:
        """Value for ``key`` (refreshing its recency), or None."""

        hit = self.get(key)
        if hit is not None:
            self.move_to_end(key)
        return hit

    def store(self, key, value: V) -> V:
        """Insert ``value`` under ``key``, evicting the LRU entry if full."""

        self[key] = value
        if len(self) > self.max_entries:
            self.popitem(last=False)
        return value


class CellBudgetExceeded(Exception):
    """Raised inside a compilation whose harness-level time budget ran out."""


@contextmanager
def cell_budget(seconds: Optional[float]):
    """Enforce a wall-clock budget on the enclosed block via ``SIGALRM``.

    Yields True when the budget is armed.  Yields False -- and enforces
    nothing -- when no budget was requested or the platform cannot deliver
    SIGALRM here (non-main thread, non-Unix); callers may then fall back to
    approach-internal deadline checks.
    """

    can_alarm = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        yield False
        return

    def _on_alarm(signum, frame):
        # While a CellBudgetExceeded is already in flight (the stack is
        # unwinding through finally blocks -- including this context
        # manager's own disarm/restore below), a re-fired alarm must NOT
        # raise a second one: it would abort the cleanup mid-way, leaving
        # the repeating timer and this handler installed to crash arbitrary
        # later code.  An in-flight exception also means the first raise
        # was *delivered*, so no re-raise is needed.
        if isinstance(sys.exc_info()[1], CellBudgetExceeded):
            return
        raise CellBudgetExceeded(f"cell exceeded its {seconds:g}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    # Repeating timer, not one-shot: if the first alarm lands while an
    # uninterruptible frame is on top of the stack (e.g. a GC callback, where
    # the interpreter swallows the exception with "Exception ignored in"),
    # a one-shot budget would silently never enforce anything -- and a
    # budgeted approach whose internal deadline was disarmed in favour of
    # the harness budget would run forever.  The interval re-delivers until
    # the exception lands in interruptible code (after a swallowed raise the
    # exception is no longer in flight, so the guard above lets it re-fire).
    signal.setitimer(signal.ITIMER_REAL, float(seconds), min(float(seconds), 0.05))
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
