"""The :class:`Workload` protocol and the workload registry.

A *workload* is a named circuit family the compiler can target: it knows how
to build an instance (``build``), how to verify a mapped result the way the
paper verifies its outputs (``verify``: dense statevector cross-check where
small, structural invariants at every size), and how to drive a mapper
(``map_with``, which lets a workload expose an analytic fast path -- the QFT
workload hands QFT-specialist mappers their ``map_qft`` entry directly
instead of materialising half a million gate objects first).

New families plug in with::

    @register_workload
    class MyWorkload(Workload):
        name = "mine"
        defaults = {"seed": 0}

        def build(self, num_qubits, *, seed=0):
            ...

Everything downstream -- :func:`repro.compile`, ``run_cell``,
``python -m repro.eval --workload mine`` -- picks the name up from the
registry; there is no second list to update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Type

from ..circuit.circuit import Circuit
from ..circuit.schedule import MappedCircuit
from ..registry import Registry, UnsupportedWorkload
from ..utils import BoundedCache
from ..verify.generic import check_mapped_matches_circuit
from ..verify.statevector import (
    circuit_unitary,
    mapped_events_unitary,
    unitaries_equal_up_to_phase,
)

__all__ = [
    "VerifyResult",
    "Workload",
    "WORKLOADS",
    "register_workload",
    "get_workload",
    "workload_names",
]

#: above this qubit count the dense unitary cross-check is skipped
DEFAULT_STATEVECTOR_LIMIT = 8


@dataclass
class VerifyResult:
    """Outcome of a workload's verification of a mapped circuit.

    ``ok`` combines every check that ran; ``unitary_checked`` records whether
    the instance was small enough for the dense statevector cross-check (the
    structural invariants run at every size).
    """

    ok: bool
    unitary_checked: bool = False
    detail: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


class Workload:
    """Base class for registered circuit families.

    Subclasses set ``name`` (the registry key), optionally ``synonyms`` and
    ``defaults`` (recognised build parameters with their default values --
    unknown parameters raise, exactly like approach kwargs), and implement
    :meth:`build`.  The default :meth:`verify` replays the mapped circuit
    against the built program (adjacency, honest layout tracking, and
    gate-for-gate dependence-respecting coverage) and cross-checks the
    unitary on small instances; workloads with stronger invariants (QFT)
    override it.
    """

    name: str = ""
    synonyms: tuple = ()
    #: recognised build parameters and their defaults
    defaults: Dict[str, object] = {}

    def __init__(self) -> None:
        # Tiny per-workload memo so one compile() call builds the program
        # once, not once for mapping and again for verification (a 1024-qubit
        # random instance is ~270k gate objects).  Entries are shared; the
        # pipeline never mutates built circuits.
        self._build_memo: BoundedCache = BoundedCache(2)

    # -- parameters --------------------------------------------------------
    def resolve_params(self, **params: object) -> Dict[str, object]:
        """Merge ``params`` over the declared defaults; reject unknown keys."""

        unknown = set(params) - set(self.defaults)
        if unknown:
            raise ValueError(
                f"unknown parameter(s) for workload {self.name!r}: "
                f"{sorted(unknown)} (accepted: {sorted(self.defaults) or 'none'})"
            )
        merged = dict(self.defaults)
        merged.update(params)
        return merged

    # -- construction ------------------------------------------------------
    def build(self, num_qubits: int, **params: object) -> Circuit:
        """Build the ``num_qubits``-qubit instance of this family."""

        raise NotImplementedError

    def build_cached(self, num_qubits: int, **params: object) -> Circuit:
        """:meth:`build` through the per-workload memo (params resolved)."""

        p = self.resolve_params(**params)
        try:
            key = (num_qubits, tuple(sorted(p.items())))
        except TypeError:  # unhashable plugin param: skip the memo
            return self.build(num_qubits, **p)
        hit = self._build_memo.lookup(key)
        if hit is not None:
            return hit
        return self._build_memo.store(key, self.build(num_qubits, **p))

    # -- compilation -------------------------------------------------------
    def map_with(
        self, mapper: object, num_qubits: int, **params: object
    ) -> MappedCircuit:
        """Compile this workload with ``mapper`` (uniform ``map_circuit``).

        Raises :class:`~repro.registry.UnsupportedWorkload` when the mapper
        cannot handle this family.  Subclasses may override to route through
        an analytic fast path (see the QFT workload).
        """

        map_circuit = getattr(mapper, "map_circuit", None)
        if map_circuit is None:
            raise UnsupportedWorkload(
                f"mapper {getattr(mapper, 'name', type(mapper).__name__)!r} has "
                f"no map_circuit surface and cannot compile workload {self.name!r}"
            )
        return map_circuit(self.build_cached(num_qubits, **params))

    # -- verification ------------------------------------------------------
    def verify(
        self,
        mapped: MappedCircuit,
        num_qubits: Optional[int] = None,
        *,
        statevector_limit: int = DEFAULT_STATEVECTOR_LIMIT,
        **params: object,
    ) -> VerifyResult:
        n = num_qubits if num_qubits is not None else mapped.num_logical
        circuit = self.build_cached(n, **params)
        report = check_mapped_matches_circuit(mapped, circuit)
        if not report.ok:
            return VerifyResult(ok=False, detail=report.summary())
        if n <= statevector_limit:
            reference = circuit_unitary(circuit)
            actual = mapped_events_unitary(n, mapped.logical_gate_events())
            if not unitaries_equal_up_to_phase(actual, reference):
                return VerifyResult(
                    ok=False,
                    unitary_checked=True,
                    detail="unitary differs from the program circuit",
                )
            return VerifyResult(ok=True, unitary_checked=True)
        return VerifyResult(ok=True)


#: the process-wide workload registry (instances, not classes)
WORKLOADS: Registry[Workload] = Registry("workload")


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator: instantiate and register a :class:`Workload`."""

    instance = cls()
    if not instance.name:
        raise ValueError(f"workload class {cls.__name__} must set a name")
    WORKLOADS.register(instance.name, instance, synonyms=instance.synonyms)
    return cls


def get_workload(name: str) -> Workload:
    """Resolve a workload by any registered spelling (raises with hints)."""

    return WORKLOADS.get(name)


def workload_names() -> tuple:
    """Canonical names of every registered workload."""

    return WORKLOADS.names()
