"""Pluggable workload families for the compiler (see :mod:`.base`).

Importing this package registers the built-in families (``qft``, ``qaoa``,
``random``); third-party families register themselves with
:func:`register_workload` at import time and become addressable everywhere a
workload name is accepted (:func:`repro.compile`, ``run_cell``,
``python -m repro.eval --workload ...``).
"""

from ..registry import UnsupportedWorkload
from .base import (
    VerifyResult,
    Workload,
    WORKLOADS,
    get_workload,
    register_workload,
    workload_names,
)
from .qft import QFTWorkload
from .qaoa import QAOAWorkload, qaoa_graph
from .random_circuit import RandomCircuitWorkload

__all__ = [
    "UnsupportedWorkload",
    "VerifyResult",
    "Workload",
    "WORKLOADS",
    "get_workload",
    "register_workload",
    "workload_names",
    "QFTWorkload",
    "QAOAWorkload",
    "qaoa_graph",
    "RandomCircuitWorkload",
]
