"""Seeded random two-qubit-gate circuits.

The classic router benchmark: layers of a random near-perfect matching over
the logical qubits, each matched pair receiving a random two-qubit gate
(CPHASE with a random angle, or CNOT), interleaved with sparse single-qubit
gates.  Like QAOA, the wide random layers give routers a large, slowly
turning front layer -- the regime where SABRE's cross-iteration score cache
was designed to amortise.

Instances are a pure function of ``(num_qubits, seed, layers,
single_qubit_prob)``.  ``layers=None`` (the default) scales the depth with
the width as ``max(4, num_qubits // 2)``, so sweeps over device sizes keep
the gate count roughly proportional to qubits^2 / 2 -- the same growth as
the QFT kernel, which keeps per-size comparisons across workloads fair.
"""

from __future__ import annotations

import math
import random

from ..circuit.circuit import Circuit
from .base import Workload, register_workload

__all__ = ["RandomCircuitWorkload"]


@register_workload
class RandomCircuitWorkload(Workload):
    """Layers of random two-qubit gates over random qubit pairings."""

    name = "random"
    synonyms = ("random-circuit", "random_circuit")
    defaults = {"seed": 0, "layers": None, "single_qubit_prob": 0.2}

    def build(self, num_qubits: int, **params: object) -> Circuit:
        p = self.resolve_params(**params)
        seed = p["seed"]
        layers = p["layers"]
        sq_prob = float(p["single_qubit_prob"])
        if num_qubits < 2:
            raise ValueError("random circuits need at least two qubits")
        if layers is None:
            layers = max(4, num_qubits // 2)
        layers = int(layers)
        if layers < 1:
            raise ValueError("need at least one layer")

        rng = random.Random(f"random-circuit:{num_qubits}:{seed}")
        circ = Circuit(num_qubits, name=f"random_{num_qubits}_d{layers}_s{seed}")
        qubits = list(range(num_qubits))
        for _ in range(layers):
            rng.shuffle(qubits)
            for k in range(0, num_qubits - 1, 2):
                a, b = qubits[k], qubits[k + 1]
                if rng.random() < 0.75:
                    circ.cphase(a, b, rng.uniform(0.05, math.pi))
                else:
                    circ.cnot(a, b)
            for q in range(num_qubits):
                if rng.random() < sq_prob:
                    if rng.random() < 0.5:
                        circ.h(q)
                    else:
                        circ.rz(q, rng.uniform(0.05, math.pi))
        return circ
