"""The QFT workload: the paper's kernel, ported onto the workload protocol.

Verification keeps the paper-faithful path from :mod:`repro.verify`: the
QFT-specific structural invariants (exactly one H per qubit, exactly one
CPHASE per pair at the right angle, Type-II dependence order) at every size,
plus the dense unitary cross-check on small instances.

``map_with`` is the *workload-aware fast path* of the redesign: mappers that
expose ``map_qft`` (every QFT specialist, and the baselines) are driven
through it directly, so the analytic constructions never materialise the
O(n^2) textbook gate list.  Mappers without it fall back to the uniform
``map_circuit`` surface.
"""

from __future__ import annotations

from typing import Optional

from ..circuit.circuit import Circuit
from ..circuit.qft import qft_circuit
from ..circuit.schedule import MappedCircuit
from .base import DEFAULT_STATEVECTOR_LIMIT, VerifyResult, Workload, register_workload

__all__ = ["QFTWorkload"]


@register_workload
class QFTWorkload(Workload):
    """Textbook quantum Fourier transform kernel (Fig. 2 of the paper)."""

    name = "qft"
    defaults: dict = {}

    def build(self, num_qubits: int, **params: object) -> Circuit:
        self.resolve_params(**params)
        return qft_circuit(num_qubits)

    def map_with(
        self, mapper: object, num_qubits: int, **params: object
    ) -> MappedCircuit:
        self.resolve_params(**params)
        map_qft = getattr(mapper, "map_qft", None)
        if map_qft is not None:
            return map_qft(num_qubits)
        return super().map_with(mapper, num_qubits, **params)

    def verify(
        self,
        mapped: MappedCircuit,
        num_qubits: Optional[int] = None,
        *,
        statevector_limit: int = DEFAULT_STATEVECTOR_LIMIT,
        **params: object,
    ) -> VerifyResult:
        self.resolve_params(**params)
        # Import here: repro.verify.checker builds on circuit/qft only, but
        # keeping the import local avoids widening the module import graph.
        from ..verify.checker import verify_mapped_qft

        result = verify_mapped_qft(
            mapped, num_qubits, statevector_limit=statevector_limit
        )
        return VerifyResult(
            ok=result.ok,
            unitary_checked=result.unitary_checked,
            detail="" if result.ok else result.summary(),
        )
