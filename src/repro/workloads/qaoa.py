"""QAOA MaxCut workload on seeded random graphs.

This is the "long stable front" family the ROADMAP asks for: each cost layer
is a bag of commuting-in-dependence-terms ZZ interactions over the problem
graph's edges, so a router's front layer stays wide and turns over slowly --
the opposite regime from QFT (whose front is a moving pair).  It is the
workload used to revisit ``SabreMapper(incremental=True)``.

The instance is fully determined by ``(num_qubits, seed, layers,
edge_prob)``: the problem graph is Erdos-Renyi (re-seeded per size, with a
path fallback so tiny/sparse draws never produce an edgeless, trivially
mappable instance), and the per-layer (gamma, beta) parameter set is drawn
from the same seeded stream -- a "seeded parameter set" rather than an
optimiser trace, which is all a mapping benchmark needs.

Gate decomposition over the repo's native set:

* cost term  exp(-i*gamma*Z_a*Z_b)  -> CPHASE(a, b, -4*gamma) + RZ(a, 2*gamma)
  + RZ(b, 2*gamma)  (up to global phase),
* mixer      RX(2*beta)             -> H * RZ(2*beta) * H  (up to global phase).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..circuit.circuit import Circuit
from .base import Workload, register_workload

__all__ = ["QAOAWorkload", "qaoa_graph"]


def qaoa_graph(num_qubits: int, seed: int, edge_prob: float) -> List[Tuple[int, int]]:
    """Seeded Erdos-Renyi edge list (sorted), with a path fallback."""

    rng = random.Random(f"qaoa-graph:{num_qubits}:{seed}")
    edges = [
        (i, j)
        for i in range(num_qubits)
        for j in range(i + 1, num_qubits)
        if rng.random() < edge_prob
    ]
    if not edges:
        edges = [(i, i + 1) for i in range(num_qubits - 1)]
    return edges


@register_workload
class QAOAWorkload(Workload):
    """QAOA MaxCut ansatz on a seeded random graph."""

    name = "qaoa"
    defaults = {"seed": 0, "layers": 2, "edge_prob": 0.5}

    def build(self, num_qubits: int, **params: object) -> Circuit:
        p = self.resolve_params(**params)
        seed, layers, edge_prob = p["seed"], int(p["layers"]), float(p["edge_prob"])
        if num_qubits < 2:
            raise ValueError("QAOA needs at least two qubits")
        if layers < 1:
            raise ValueError("QAOA needs at least one layer")
        edges = qaoa_graph(num_qubits, seed, edge_prob)
        rng = random.Random(f"qaoa-params:{num_qubits}:{seed}:{layers}")
        circ = Circuit(num_qubits, name=f"qaoa_{num_qubits}_p{layers}_s{seed}")
        for q in range(num_qubits):
            circ.h(q)
        for _ in range(layers):
            gamma = rng.uniform(0.1, 1.2)
            beta = rng.uniform(0.1, 1.2)
            for a, b in edges:
                circ.cphase(a, b, -4.0 * gamma)
                circ.rz(a, 2.0 * gamma)
                circ.rz(b, 2.0 * gamma)
            for q in range(num_qubits):
                circ.h(q)
                circ.rz(q, 2.0 * beta)
                circ.h(q)
        return circ
