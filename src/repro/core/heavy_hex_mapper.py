"""Linear-depth QFT on the IBM heavy-hex architecture (Section 4).

The heavy-hex device is first unrolled into a *caterpillar* coupling graph
(one main line plus dangling qubits, Appendix 1).  The mapper then extends the
LNN cascade with two architecture-specific rules:

* **junction stall** -- a qubit occupying a junction node of the main line
  performs the CPHASE with the dangling occupant before it is allowed to move
  on (an extra cycle per junction visit; this is where the complexity grows
  from ``4N`` to ``5N``--``6N``),
* **parking** -- the smallest-index qubit still travelling on the main line is
  swapped *into* the first not-yet-parked dangling position it reaches and
  never moves again; its remaining interactions happen with the qubits that
  later occupy that junction's main-line node.  The original dangling occupant
  is released onto the main line by the same SWAP.

Both rules are exactly the behaviour described in Section 4 / Algorithm 1 and
exploit the relaxed (Type II only) ordering: once ``q0`` is parked, ``q1`` may
interact with high-index qubits *before* ``q0`` does.

A routed fallback guarantees completion on irregular caterpillars (e.g. very
uneven dangling spacing); the number of fallback SWAPs is reported in the
result metadata and is zero on the paper's layouts (tests assert this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..arch.heavy_hex import CaterpillarTopology, HeavyHexTopology
from ..circuit.gates import Op, qft_angle
from ..circuit.schedule import MappedCircuit, MappingBuilder
from .dependence import QFTDependenceTracker
from .routed import complete_remaining
from .qft_specialist import QFTSpecialistMixin

__all__ = ["HeavyHexQFTMapper"]


class HeavyHexQFTMapper(QFTSpecialistMixin):
    """Dangling-point QFT mapper for caterpillar / heavy-hex topologies."""

    name = "our-heavyhex"

    def __init__(self, topology) -> None:
        if isinstance(topology, HeavyHexTopology):
            self._original: Optional[HeavyHexTopology] = topology
            self.caterpillar, self._phys_map = topology.to_caterpillar()
        elif isinstance(topology, CaterpillarTopology):
            self._original = None
            self.caterpillar = topology
            self._phys_map = list(range(topology.num_qubits))
        else:
            raise TypeError(
                "HeavyHexQFTMapper needs a CaterpillarTopology or HeavyHexTopology"
            )
        self.topology = topology

    # ------------------------------------------------------------------
    def map_qft(self, num_qubits: Optional[int] = None) -> MappedCircuit:
        cat = self.caterpillar
        n = num_qubits if num_qubits is not None else cat.num_qubits
        if n > cat.num_qubits:
            raise ValueError("more logical qubits than physical qubits")

        serp = cat.serpentine_order()
        layout = serp[:n]
        builder = MappingBuilder(cat, layout, num_logical=n, name=self.name)
        tracker = QFTDependenceTracker(n)
        stats = self._run_engine(builder, tracker, cat, n)

        if not tracker.all_done():
            raise RuntimeError("heavy-hex mapper finished without completing the kernel")

        mapped = builder.build(metadata={"mapper": self.name, **stats})
        if self._original is not None:
            mapped = self._translate(mapped)
        return mapped

    # ------------------------------------------------------------------
    def _run_engine(
        self,
        builder: MappingBuilder,
        tracker: QFTDependenceTracker,
        cat: CaterpillarTopology,
        n: int,
    ) -> Dict[str, int]:
        L = cat.main_length
        junctions = list(cat.dangling_junctions)
        dangling_of = cat.dangling_of
        parked: Set[int] = set()  # dangling *physical* qubits holding a parked qubit
        layers = 0
        fallback_swaps = 0
        max_layers = 14 * n + 64

        def at(phys: int) -> Optional[int]:
            return builder.logical_at(phys)

        def smallest_on_main() -> Optional[int]:
            best: Optional[int] = None
            for p in range(L):
                lq = at(p)
                if lq is not None and lq >= 0 and (best is None or lq < best):
                    best = lq
            return best

        while not tracker.all_done():
            if layers > max_layers:
                fallback_swaps += complete_remaining(builder, tracker, tag="hh-fallback")
                self._finish_h(builder, tracker)
                break

            claimed: Set[int] = set()
            emitted = False
            small_main = smallest_on_main()

            # 1. Hadamards.
            for phys in range(cat.num_qubits):
                lq = at(phys)
                if lq is None or lq < 0 or phys in claimed:
                    continue
                if tracker.can_h(lq):
                    builder.h(phys, tag="hh")
                    tracker.mark_h(lq)
                    claimed.add(phys)
                    emitted = True

            # 2. Junction CPHASEs (stall rule: take priority over movement).
            for j in junctions:
                d = dangling_of[j]
                if j in claimed or d in claimed:
                    continue
                a, b = at(j), at(d)
                if a is None or b is None or a < 0 or b < 0:
                    continue
                lo, hi = (a, b) if a < b else (b, a)
                if tracker.can_cphase(lo, hi):
                    builder.cphase(j, d, qft_angle(lo, hi), tag="hh-dangling")
                    tracker.mark_cphase(lo, hi)
                    claimed.update((j, d))
                    emitted = True

            # 3. Main-line CPHASEs.
            for p in range(L - 1):
                if p in claimed or p + 1 in claimed:
                    continue
                a, b = at(p), at(p + 1)
                if a is None or b is None or a < 0 or b < 0:
                    continue
                lo, hi = (a, b) if a < b else (b, a)
                if tracker.can_cphase(lo, hi):
                    builder.cphase(p, p + 1, qft_angle(lo, hi), tag="hh")
                    tracker.mark_cphase(lo, hi)
                    claimed.update((p, p + 1))
                    emitted = True

            # 4. Parking SWAPs: the smallest main-line qubit enters the first
            #    unparked dangling position it has reached (and interacted with).
            for j in junctions:
                d = dangling_of[j]
                if d in parked or j in claimed or d in claimed:
                    continue
                a, b = at(j), at(d)
                if a is None or b is None or a < 0 or b < 0:
                    continue
                if a != small_main:
                    continue
                if not tracker.h_done[a]:
                    continue
                if tracker.pair_is_pending(a, b):
                    continue  # the junction CPHASE will fire first
                builder.swap(j, d, tag="hh-park")
                parked.add(d)
                claimed.update((j, d))
                emitted = True

            # 5. Main-line SWAPs (LNN cascade movement).
            for p in range(L - 1):
                if p in claimed or p + 1 in claimed:
                    continue
                a, b = at(p), at(p + 1)
                if a is None or b is None or a < 0 or b < 0:
                    continue
                if a < b and tracker.pair_is_done(a, b) and (
                    tracker.has_pending_pairs(a) or tracker.has_pending_pairs(b)
                ):
                    builder.swap(p, p + 1, tag="hh")
                    claimed.update((p, p + 1))
                    emitted = True

            if not emitted:
                fallback_swaps += complete_remaining(builder, tracker, tag="hh-fallback")
                self._finish_h(builder, tracker)
                break
            layers += 1

        return {
            "layers": layers,
            "fallback_swaps": fallback_swaps,
            "parked": len(parked),
        }

    @staticmethod
    def _finish_h(builder: MappingBuilder, tracker: QFTDependenceTracker) -> None:
        for q in range(tracker.n):
            if tracker.can_h(q):
                builder.h(builder.phys_of(q), tag="hh")
                tracker.mark_h(q)

    # ------------------------------------------------------------------
    def _translate(self, mapped: MappedCircuit) -> MappedCircuit:
        """Rewrite a caterpillar-indexed circuit onto the original heavy-hex
        device (the caterpillar is a subgraph, so every edge stays valid)."""

        pm = self._phys_map
        ops = [
            Op(
                op.kind,
                tuple(pm[p] for p in op.physical),
                op.logical,
                op.angle,
                op.tag,
            )
            for op in mapped.ops
        ]
        return MappedCircuit(
            topology=self._original,
            num_logical=mapped.num_logical,
            initial_layout=[pm[p] for p in mapped.initial_layout],
            ops=ops,
            name=mapped.name,
            metadata=dict(mapped.metadata),
        )
