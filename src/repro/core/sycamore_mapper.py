"""Linear-depth QFT on the Google Sycamore architecture (Section 5).

Units are pairs of rows (``2m`` qubits each, ``m/2`` units per ``m x m``
patch); every unit is internally a line (the zigzag of Fig. 12), the units
themselves form a line, and the mapper is the unit-level LNN QFT of Fig. 14
with three primitives:

* **QFT-IA**  -- the LNN cascade on the unit's zigzag line,
* **QFT-IE**  -- the relaxed synced travel pattern between two adjacent units
  (Fig. 13) with the constant-depth same-column fix-up,
* **unit SWAP** -- three layers of transversal SWAPs over the vertical links
  (the ``parallelSWAP`` sequence of Section 5).

The result has depth ``~7 N + O(sqrt N)`` and never needs recompilation when
``m`` changes -- the construction is purely analytical.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..arch.sycamore import SycamoreTopology
from ..circuit.schedule import MappedCircuit, MappingBuilder
from .cascade import cascade_on_line
from .dependence import QFTDependenceTracker
from .inter_unit import bipartite_all_to_all
from .routed import complete_remaining, finish_hadamards
from .unit import UnitLevelScheduler
from .qft_specialist import QFTSpecialistMixin

__all__ = ["SycamoreQFTMapper"]


class SycamoreQFTMapper(QFTSpecialistMixin):
    """Unit-based QFT mapper for :class:`~repro.arch.sycamore.SycamoreTopology`."""

    name = "our-sycamore"

    def __init__(self, topology: SycamoreTopology, *, strict_ie: bool = False) -> None:
        if not isinstance(topology, SycamoreTopology):
            raise TypeError("SycamoreQFTMapper needs a SycamoreTopology")
        self.topology = topology
        self.strict_ie = strict_ie

    # ------------------------------------------------------------------
    def _inter_unit_links(self, slot: int) -> List[tuple]:
        """Positional links between slot ``slot``'s line and slot ``slot+1``'s.

        Unit lines alternate top row / bottom row by position: position
        ``2c`` is the top-row qubit of column ``c`` and ``2c + 1`` the
        bottom-row qubit.  The physical inter-unit links connect the lower
        unit's bottom row with the upper unit's top row, vertically (same
        column) and diagonally (column + 1), which in positional terms is
        ``(2c + 1, 2c)`` and ``(2c + 1, 2c + 2)``.
        """

        topo = self.topology
        line_a = topo.unit_line(slot)
        line_b = topo.unit_line(slot + 1)
        links = []
        for ia, pa in enumerate(line_a):
            for ib, pb in enumerate(line_b):
                if topo.has_edge(pa, pb):
                    links.append((ia, ib))
        return links

    # ------------------------------------------------------------------
    def map_qft(self, num_qubits: Optional[int] = None) -> MappedCircuit:
        topo = self.topology
        n = num_qubits if num_qubits is not None else topo.num_qubits
        if n != topo.num_qubits:
            raise ValueError(
                "the Sycamore mapper maps the full patch; build a smaller patch "
                "for a smaller QFT"
            )

        unit_size = topo.unit_size
        num_units = topo.num_units
        # Logical unit i starts in slot i; logical qubits fill the unit line
        # in natural order, so the initial layout is simply the concatenation
        # of the unit lines.
        layout: List[int] = []
        for u in range(num_units):
            layout.extend(topo.unit_line(u))
        layout = layout[:n]

        builder = MappingBuilder(topo, layout, num_logical=n, name=self.name)
        tracker = QFTDependenceTracker(n)

        ie_stats_acc: Dict[str, int] = {"missed_after_pattern": 0, "fixup_rounds": 0}

        def ia(slot: int) -> Dict[str, int]:
            return cascade_on_line(builder, tracker, topo.unit_line(slot), tag="ia")

        def ie(slot_a: int, slot_b: int) -> Dict[str, int]:
            stats = bipartite_all_to_all(
                builder,
                tracker,
                topo.unit_line(slot_a),
                topo.unit_line(slot_b),
                self._inter_unit_links(slot_a),
                offset_a=0,
                offset_b=0,
                strict=self.strict_ie,
                tag="ie",
            )
            ie_stats_acc["missed_after_pattern"] += stats["missed_after_pattern"]
            ie_stats_acc["fixup_rounds"] += stats["fixup_rounds"]
            return stats

        def unit_swap(slot_a: int, slot_b: int) -> None:
            # Rows A,B belong to the unit in slot_a; rows C,D to slot_b.
            row_a, row_b = topo.unit_rows(slot_a)
            row_c, row_d = topo.unit_rows(slot_b)
            m = topo.m
            for c in range(m):
                builder.swap(topo.index(row_b, c), topo.index(row_c, c), tag="unit-swap")
            for c in range(m):
                builder.swap(topo.index(row_a, c), topo.index(row_b, c), tag="unit-swap")
                builder.swap(topo.index(row_c, c), topo.index(row_d, c), tag="unit-swap")
            for c in range(m):
                builder.swap(topo.index(row_b, c), topo.index(row_c, c), tag="unit-swap")

        scheduler = UnitLevelScheduler(num_units, ia, ie, unit_swap)
        stats = scheduler.run()

        fallback = 0
        if not tracker.all_done():
            fallback = complete_remaining(builder, tracker, tag="syc-fallback")
            finish_hadamards(builder, tracker)
        if not tracker.all_done():
            raise RuntimeError("Sycamore mapper finished without completing the kernel")

        metadata = {
            "mapper": self.name,
            "strict_ie": self.strict_ie,
            "final_fallback_swaps": fallback,
            **stats,
            **{f"ie_{k}": v for k, v in ie_stats_acc.items()},
        }
        return builder.build(metadata=metadata)
