"""Linear-depth QFT on the lattice-surgery FT backend (Section 6) and on the
regular 2-D grid (Appendix 7).

Both architectures are handled by the same row-unit construction:

* each grid **row is a unit**; within a row the (fast, on lattice surgery)
  horizontal links form the unit line,
* the units themselves form a line connected by the vertical links,
* the unit-level schedule is again the LNN QFT of Fig. 14, with

  - **QFT-IA** = LNN cascade along the row,
  - **QFT-IE** = the offset travel pattern of Fig. 16 / Appendix 7: both rows
    run unconditional odd-even SWAP layers but the second row starts one step
    late, so the same-column vertical links see every cross pair exactly once,
  - **unit SWAP** = one transversal layer of vertical SWAPs (costing three
    CNOTs, i.e. depth 6, per link on the FT backend).

On :class:`~repro.arch.lattice_surgery.LatticeSurgeryTopology` the ASAP depth
is computed with the heterogeneous latencies of Section 2.3 (fast SWAP 2,
CNOT-link SWAP 6, CPHASE 2); on a plain :class:`~repro.arch.grid.GridTopology`
all ops cost one cycle.  The construction itself is identical, which is the
point of the paper's "same framework, different backends" claim.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..arch.grid import GridTopology
from ..arch.lattice_surgery import LatticeSurgeryTopology
from ..circuit.schedule import MappedCircuit, MappingBuilder
from .cascade import cascade_on_line
from .dependence import QFTDependenceTracker
from .inter_unit import bipartite_all_to_all
from .routed import complete_remaining, finish_hadamards
from .unit import UnitLevelScheduler
from .qft_specialist import QFTSpecialistMixin

__all__ = ["RowUnitQFTMapper", "LatticeSurgeryQFTMapper", "GridQFTMapper"]


class RowUnitQFTMapper(QFTSpecialistMixin):
    """Row-unit QFT mapper shared by the FT grid and the regular 2-D grid."""

    name = "our-row-unit"

    def __init__(self, topology, *, strict_ie: bool = False) -> None:
        if not hasattr(topology, "rows") or not hasattr(topology, "cols"):
            raise TypeError("RowUnitQFTMapper needs a grid-like topology (rows/cols)")
        self.topology = topology
        self.strict_ie = strict_ie

    # ------------------------------------------------------------------
    def _row_line(self, r: int) -> List[int]:
        topo = self.topology
        return [r * topo.cols + c for c in range(topo.cols)]

    def map_qft(self, num_qubits: Optional[int] = None) -> MappedCircuit:
        topo = self.topology
        n = num_qubits if num_qubits is not None else topo.num_qubits
        if n != topo.num_qubits:
            raise ValueError(
                "the row-unit mapper maps the full grid; build a smaller grid "
                "for a smaller QFT"
            )

        num_units = topo.rows
        cols = topo.cols
        # Logical unit i starts in row i, qubits left to right.
        layout: List[int] = []
        for r in range(num_units):
            layout.extend(self._row_line(r))
        layout = layout[:n]

        builder = MappingBuilder(topo, layout, num_logical=n, name=self.name)
        tracker = QFTDependenceTracker(n)

        vertical_links = [(c, c) for c in range(cols)]
        ie_stats_acc: Dict[str, int] = {"missed_after_pattern": 0, "fixup_rounds": 0}

        def ia(slot: int) -> Dict[str, int]:
            return cascade_on_line(builder, tracker, self._row_line(slot), tag="ia")

        def ie(slot_a: int, slot_b: int) -> Dict[str, int]:
            stats = bipartite_all_to_all(
                builder,
                tracker,
                self._row_line(slot_a),
                self._row_line(slot_b),
                vertical_links,
                offset_a=0,
                offset_b=1,  # the "one step late" trick of Fig. 16
                strict=self.strict_ie,
                tag="ie",
            )
            ie_stats_acc["missed_after_pattern"] += stats["missed_after_pattern"]
            ie_stats_acc["fixup_rounds"] += stats["fixup_rounds"]
            return stats

        def unit_swap(slot_a: int, slot_b: int) -> None:
            row_a = self._row_line(slot_a)
            row_b = self._row_line(slot_b)
            for pa, pb in zip(row_a, row_b):
                builder.swap(pa, pb, tag="unit-swap")

        scheduler = UnitLevelScheduler(num_units, ia, ie, unit_swap)
        stats = scheduler.run()

        fallback = 0
        if not tracker.all_done():
            fallback = complete_remaining(builder, tracker, tag="row-fallback")
            finish_hadamards(builder, tracker)
        if not tracker.all_done():
            raise RuntimeError("row-unit mapper finished without completing the kernel")

        metadata = {
            "mapper": self.name,
            "strict_ie": self.strict_ie,
            "final_fallback_swaps": fallback,
            **stats,
            **{f"ie_{k}": v for k, v in ie_stats_acc.items()},
        }
        return builder.build(metadata=metadata)


class LatticeSurgeryQFTMapper(RowUnitQFTMapper):
    """Section 6 mapper: row units on the FT lattice-surgery grid."""

    name = "our-lattice-surgery"

    def __init__(self, topology: LatticeSurgeryTopology, *, strict_ie: bool = False) -> None:
        if not isinstance(topology, LatticeSurgeryTopology):
            raise TypeError("LatticeSurgeryQFTMapper needs a LatticeSurgeryTopology")
        super().__init__(topology, strict_ie=strict_ie)


class GridQFTMapper(RowUnitQFTMapper):
    """Appendix 7 mapper: row units on a uniform-latency 2-D grid."""

    name = "our-grid"

    def __init__(self, topology: GridTopology, *, strict_ie: bool = False) -> None:
        if not isinstance(topology, GridTopology):
            raise TypeError("GridQFTMapper needs a GridTopology")
        super().__init__(topology, strict_ie=strict_ie)
