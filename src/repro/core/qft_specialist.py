"""Uniform ``map_circuit`` surface for the analytic QFT-specialist mappers.

The domain-specific mappers of Sections 4-6 never route a gate list: they
*construct* the mapped kernel directly from the QFT's regular structure.
:class:`QFTSpecialistMixin` gives them the same ``map_circuit(circuit)``
surface every generic mapper has, by recognising the textbook QFT (a cheap
O(#gates) scan) and dispatching to the analytic ``map_qft`` construction;
anything else raises the typed
:class:`~repro.registry.UnsupportedWorkload`, which the evaluation harness
records as a ``status == "unsupported"`` cell instead of crashing a sweep.
"""

from __future__ import annotations

from ..circuit.circuit import Circuit
from ..circuit.qft import textbook_qft_qubit_count
from ..circuit.schedule import MappedCircuit
from ..registry import UnsupportedWorkload

__all__ = ["QFTSpecialistMixin"]


class QFTSpecialistMixin:
    """Adds ``map_circuit`` to mappers that only implement ``map_qft``."""

    def map_circuit(self, circuit: Circuit) -> MappedCircuit:
        n = textbook_qft_qubit_count(circuit)
        if n is None:
            name = getattr(self, "name", type(self).__name__)
            raise UnsupportedWorkload(
                f"{name} is a QFT-specialist mapper (analytic construction); "
                f"it cannot compile {circuit.name or 'this circuit'!r}"
            )
        return self.map_qft(n)
