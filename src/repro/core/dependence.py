"""Shared dependence bookkeeping for the constructive QFT mappers.

Every mapper in :mod:`repro.core` tracks the same three pieces of state while
it emits gates:

* which logical qubits have received their Hadamard,
* which logical pairs have received their CPHASE,
* which pairs are still pending for a given qubit.

:class:`QFTDependenceTracker` centralises that bookkeeping together with the
*relaxed* (Type II) eligibility rules of Section 3.1:

* ``H(q)`` may fire once every ``CPHASE(x, q)`` with ``x < q`` has fired,
* ``CPHASE(a, b)`` (``a < b``) may fire once ``H(a)`` has fired (and before
  ``H(b)``, which is guaranteed because ``H(b)`` cannot become eligible while
  the pair is still pending).

The tracker is deliberately independent of any physical placement so the same
instance can be threaded through nested primitives (intra-unit QFT, inter-unit
interactions, fix-ups, routed fallbacks) without double-counting gates.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

__all__ = ["QFTDependenceTracker"]


class QFTDependenceTracker:
    """Tracks H / CPHASE progress for an ``n``-qubit QFT kernel."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one qubit")
        self.n = n
        self.h_done: List[bool] = [False] * n
        # pending_smaller[q] = number of pending CPHASE(x, q) with x < q
        self.pending_smaller: List[int] = list(range(n))
        # pending_larger[q] = number of pending CPHASE(q, y) with y > q
        self.pending_larger: List[int] = [n - 1 - q for q in range(n)]
        self.pair_done: Set[Tuple[int, int]] = set()
        self.total_pairs = n * (n - 1) // 2
        self.pairs_completed = 0
        self.h_completed = 0

    # -- queries -----------------------------------------------------------
    @staticmethod
    def _norm(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def pair_is_done(self, a: int, b: int) -> bool:
        return self._norm(a, b) in self.pair_done

    def pair_is_pending(self, a: int, b: int) -> bool:
        if a == b:
            return False
        return self._norm(a, b) not in self.pair_done

    def can_h(self, q: int) -> bool:
        """H(q) is eligible (all smaller-index interactions done, not yet H'd)."""

        return not self.h_done[q] and self.pending_smaller[q] == 0

    def can_cphase(self, a: int, b: int) -> bool:
        """CPHASE(a, b) is eligible under the relaxed (Type II) rules."""

        if a == b:
            return False
        lo, hi = self._norm(a, b)
        if (lo, hi) in self.pair_done:
            return False
        return self.h_done[lo] and not self.h_done[hi]

    def is_active(self, q: int) -> bool:
        """A qubit is *active* once hadamarded and still owing interactions."""

        return self.h_done[q] and self.pending_larger[q] > 0

    def has_pending_pairs(self, q: int) -> bool:
        return (self.pending_smaller[q] + self.pending_larger[q]) > 0

    def pending_pairs(self) -> List[Tuple[int, int]]:
        return [
            (i, j)
            for i in range(self.n)
            for j in range(i + 1, self.n)
            if (i, j) not in self.pair_done
        ]

    def pending_partners(self, q: int) -> List[int]:
        return [
            p
            for p in range(self.n)
            if p != q and self._norm(p, q) not in self.pair_done
        ]

    def all_done(self) -> bool:
        return self.pairs_completed == self.total_pairs and self.h_completed == self.n

    def all_pairs_done_within(self, qubits: Iterable[int]) -> bool:
        qs = sorted(set(qubits))
        for idx, a in enumerate(qs):
            for b in qs[idx + 1 :]:
                if (a, b) not in self.pair_done:
                    return False
        return True

    # -- state updates ---------------------------------------------------
    def mark_h(self, q: int) -> None:
        if self.h_done[q]:
            raise ValueError(f"H({q}) emitted twice")
        if self.pending_smaller[q] != 0:
            raise ValueError(
                f"H({q}) emitted before its {self.pending_smaller[q]} smaller-index "
                "interactions completed (Type II violation)"
            )
        self.h_done[q] = True
        self.h_completed += 1

    def mark_cphase(self, a: int, b: int) -> None:
        lo, hi = self._norm(a, b)
        if lo == hi:
            raise ValueError("CPHASE needs two distinct qubits")
        if (lo, hi) in self.pair_done:
            raise ValueError(f"CPHASE({lo},{hi}) emitted twice")
        if not self.h_done[lo]:
            raise ValueError(f"CPHASE({lo},{hi}) emitted before H({lo}) (Type II violation)")
        if self.h_done[hi]:
            raise ValueError(f"CPHASE({lo},{hi}) emitted after H({hi}) (Type II violation)")
        self.pair_done.add((lo, hi))
        self.pairs_completed += 1
        self.pending_larger[lo] -= 1
        self.pending_smaller[hi] -= 1

    # -- convenience -----------------------------------------------------
    def progress(self) -> Tuple[int, int]:
        return self.pairs_completed, self.total_pairs

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"QFTDependenceTracker(n={self.n}, pairs={self.pairs_completed}/"
            f"{self.total_pairs}, h={self.h_completed}/{self.n})"
        )
