"""Unit-level orchestration: the sub-kernel partitioning framework in action.

Section 3.2 shows that QFT decomposes into intra-unit QFTs (QFT-IA) and
inter-unit bipartite interactions (QFT-IE) over consecutive qubit groups, and
Fig. 14 observes that scheduling those group-level operations is *itself* an
LNN QFT -- at unit granularity -- when the units sit on a line (which they do
on Sycamore, the lattice-surgery grid and the regular 2-D grid).

:class:`UnitLevelScheduler` replays the abstract LNN schedule produced by
:func:`repro.core.cascade.abstract_line_qft_schedule` with three
architecture-supplied primitives:

* ``ia(slot)``            -- intra-unit QFT on the unit currently in ``slot``,
* ``ie(slot, slot + 1)``  -- inter-unit interaction between adjacent slots,
* ``unit_swap(slot, slot + 1)`` -- physically exchange the two units.

Because ops are emitted into a single stream and depth is recovered by ASAP
scheduling, operations of different unit pairs overlap automatically, exactly
as in the hand-drawn schedule of Fig. 14.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .cascade import AbstractStep, abstract_line_qft_schedule

__all__ = ["UnitLevelScheduler"]


class UnitLevelScheduler:
    """Replay the unit-level LNN QFT schedule with architecture primitives."""

    def __init__(
        self,
        num_units: int,
        ia: Callable[[int], Dict[str, int]],
        ie: Callable[[int, int], Dict[str, int]],
        unit_swap: Callable[[int, int], None],
    ) -> None:
        if num_units < 1:
            raise ValueError("need at least one unit")
        self.num_units = num_units
        self.ia = ia
        self.ie = ie
        self.unit_swap = unit_swap
        #: slot -> logical unit id currently residing there
        self.slot_contents: List[int] = list(range(num_units))

    def run(self) -> Dict[str, int]:
        stats: Dict[str, int] = {
            "ia_calls": 0,
            "ie_calls": 0,
            "unit_swaps": 0,
            "ie_fallback_swaps": 0,
            "ia_fallback_swaps": 0,
        }
        if self.num_units == 1:
            self.ia(0)
            stats["ia_calls"] = 1
            return stats

        schedule = abstract_line_qft_schedule(self.num_units)
        for step in schedule:
            if step.kind == "h":
                (slot,) = step.positions
                sub = self.ia(slot) or {}
                stats["ia_calls"] += 1
                stats["ia_fallback_swaps"] += int(sub.get("fallback_swaps", 0))
            elif step.kind == "cphase":
                s0, s1 = step.positions
                sub = self.ie(s0, s1) or {}
                stats["ie_calls"] += 1
                stats["ie_fallback_swaps"] += int(sub.get("fallback_swaps", 0))
            elif step.kind == "swap":
                s0, s1 = step.positions
                self.unit_swap(s0, s1)
                self.slot_contents[s0], self.slot_contents[s1] = (
                    self.slot_contents[s1],
                    self.slot_contents[s0],
                )
                stats["unit_swaps"] += 1
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown abstract step kind {step.kind!r}")
        return stats
