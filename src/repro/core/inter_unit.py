"""Inter-unit QFT interactions (QFT-IE) between two adjacent unit lines.

This implements the synced / offset travel-path patterns of Section 5 and
Section 6 (discovered in the paper with program synthesis; re-derived by our
synthesiser in :mod:`repro.synthesis.library` and verified by tests):

* both unit lines run *unconditional* odd-even transposition SWAP layers, so
  after ``L`` layers each line is reversed and -- crucially -- each qubit has
  had every position-neighbour exactly once;
* between SWAP layers, CPHASEs fire on every inter-unit link whose two
  resident qubits still owe each other an interaction;
* on Sycamore the two lines move **in sync** (``offset_b == offset_a``)
  because the inter-unit links connect *different* columns (Fig. 13);
* on the lattice-surgery / regular grid the links connect the *same* column,
  so the second line starts **one step late** (``offset_b = offset_a + 1``,
  Fig. 16 / Appendix 7) -- otherwise a qubit would face the same partner
  forever;
* pairs missed by the pattern (the "same column" pairs on Sycamore) are fixed
  up with a constant number of shift / CPHASE / unshift rounds, exactly as
  described at the end of Section 5.

The relaxed variant fires a CPHASE as soon as the pair is available; the
strict variant (QFT-IE-strict, kept for the ablation of Appendix 5/7) only
fires a CPHASE when it is the next one in textbook order for *both* qubits,
which roughly doubles the number of rounds needed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import qft_angle
from ..circuit.schedule import MappingBuilder
from .dependence import QFTDependenceTracker
from .routed import complete_remaining

__all__ = ["bipartite_all_to_all", "InterUnitStats"]


InterUnitStats = Dict[str, int]


def _residents(builder: MappingBuilder, line: Sequence[int]) -> List[int]:
    out = []
    for p in line:
        lq = builder.logical_at(p)
        if lq is not None and lq >= 0:
            out.append(lq)
    return out


def _cross_pending(
    tracker: QFTDependenceTracker, side_a: Iterable[int], side_b: Iterable[int]
) -> Set[Tuple[int, int]]:
    sa, sb = set(side_a), set(side_b)
    pend: Set[Tuple[int, int]] = set()
    for x in sa:
        for y in sb:
            if x != y and tracker.pair_is_pending(x, y):
                pend.add((x, y) if x < y else (y, x))
    return pend


def _strict_ready(
    tracker: QFTDependenceTracker,
    x: int,
    y: int,
    side_of: Dict[int, int],
    side_members: Tuple[List[int], List[int]],
) -> bool:
    """Textbook (Type I) readiness of cross pair (x, y): every cross partner of
    ``x`` with a smaller index than ``y`` (on the other side) must be done, and
    symmetrically for ``y``."""

    other_of_x = side_members[1 - side_of[x]]
    for y2 in other_of_x:
        if y2 < y and tracker.pair_is_pending(x, y2):
            return False
    other_of_y = side_members[1 - side_of[y]]
    for x2 in other_of_y:
        if x2 < x and tracker.pair_is_pending(x2, y):
            return False
    return True


def bipartite_all_to_all(
    builder: MappingBuilder,
    tracker: QFTDependenceTracker,
    line_a: Sequence[int],
    line_b: Sequence[int],
    inter_links: Sequence[Tuple[int, int]],
    *,
    offset_a: int = 0,
    offset_b: int = 0,
    rounds: Optional[int] = None,
    strict: bool = False,
    fixup: bool = True,
    allow_fallback: bool = True,
    tag: str = "ie",
) -> InterUnitStats:
    """Run all pending CPHASEs between the residents of two adjacent unit lines.

    Parameters
    ----------
    line_a, line_b:
        Physical paths holding the two units.
    inter_links:
        Positional links ``(index in line_a, index in line_b)`` whose physical
        endpoints are coupled; only these are used for inter-unit CPHASEs.
    offset_a, offset_b:
        Starting parities of the two lines' unconditional SWAP layers.
    rounds:
        Number of movement rounds (default ``len(line) + 1``); the strict
        variant automatically doubles this.
    strict:
        Use QFT-IE-strict ordering instead of QFT-IE-relaxed.
    fixup:
        Run the constant-depth shift/CPHASE/unshift fix-up rounds for pairs the
        travel pattern misses (e.g. same-column pairs on Sycamore).
    allow_fallback:
        Finish any still-missing pairs with routed completion (recorded in the
        returned stats; zero on the architectures of the paper).
    """

    La, Lb = len(line_a), len(line_b)
    for a, b in zip(line_a, line_a[1:]):
        if not builder.topology.has_edge(a, b):
            raise ValueError("line_a is not a coupled path")
    for a, b in zip(line_b, line_b[1:]):
        if not builder.topology.has_edge(a, b):
            raise ValueError("line_b is not a coupled path")
    for ia, ib in inter_links:
        if not (0 <= ia < La and 0 <= ib < Lb):
            raise ValueError(f"inter link ({ia}, {ib}) out of range")
        if not builder.topology.has_edge(line_a[ia], line_b[ib]):
            raise ValueError(
                f"inter link positions ({ia}, {ib}) are not coupled physically"
            )

    side_a = _residents(builder, line_a)
    side_b = _residents(builder, line_b)
    # `pending` starts as the full target set and shrinks as cphase_pass
    # completes pairs (nothing else marks pairs while this function runs), so
    # membership doubles as the pair_is_pending check and remaining() is O(1)
    # instead of rescanning every target each round.
    pending = _cross_pending(tracker, side_a, side_b)
    stats: InterUnitStats = {
        "target_pairs": len(pending),
        "pattern_rounds": 0,
        "swap_layers": 0,
        "fixup_rounds": 0,
        "fallback_swaps": 0,
        "missed_after_pattern": 0,
    }
    if not pending:
        return stats

    side_of = {q: 0 for q in side_a}
    side_of.update({q: 1 for q in side_b})
    side_members = (sorted(side_a), sorted(side_b))

    if rounds is None:
        rounds = max(La, Lb) + 1
    if strict:
        rounds *= 2

    def cphase_pass() -> None:
        for ia, ib in inter_links:
            pa, pb = line_a[ia], line_b[ib]
            x = builder.logical_at(pa)
            y = builder.logical_at(pb)
            if x is None or y is None or x < 0 or y < 0:
                continue
            lo, hi = (x, y) if x < y else (y, x)
            if (lo, hi) not in pending:
                continue
            if not tracker.can_cphase(lo, hi):
                continue
            if strict and not _strict_ready(tracker, x, y, side_of, side_members):
                continue
            builder.cphase(pa, pb, qft_angle(lo, hi), tag=tag)
            tracker.mark_cphase(lo, hi)
            pending.discard((lo, hi))

    def remaining() -> Set[Tuple[int, int]]:
        return pending

    def swap_layer(line: Sequence[int], parity: int, swap_tag: str) -> None:
        for p in range(parity % 2, len(line) - 1, 2):
            builder.swap(line[p], line[p + 1], tag=swap_tag)

    # -- main travel pattern -----------------------------------------------
    for t in range(rounds + 1):
        cphase_pass()
        stats["pattern_rounds"] = t + 1
        if not remaining():
            break
        if t < rounds:
            swap_layer(line_a, t + offset_a, tag)
            swap_layer(line_b, t + offset_b, tag)
            stats["swap_layers"] += 2

    stats["missed_after_pattern"] = len(remaining())

    # -- constant-depth structured fix-up ----------------------------------
    if fixup and remaining():
        for side_line, parity in ((line_a, 0), (line_b, 0), (line_a, 1), (line_b, 1)):
            if not remaining():
                break
            swap_layer(side_line, parity, tag + "-fixup")
            cphase_pass()
            swap_layer(side_line, parity, tag + "-fixup")
            stats["fixup_rounds"] += 1
            stats["swap_layers"] += 2

    # -- guaranteed completion ----------------------------------------------
    left = remaining()
    if left and allow_fallback:
        stats["fallback_swaps"] = complete_remaining(builder, tracker, left, tag=tag + "-fallback")
    elif left:
        raise RuntimeError(
            f"inter-unit interaction left {len(left)} pairs incomplete and fallback is disabled"
        )
    return stats
