"""The paper's contribution: domain-specific linear-depth QFT mappers."""

from .cascade import AbstractStep, CascadeStalled, abstract_line_qft_schedule, cascade_on_line
from .dependence import QFTDependenceTracker
from .heavy_hex_mapper import HeavyHexQFTMapper
from .inter_unit import bipartite_all_to_all
from .lattice_surgery_mapper import GridQFTMapper, LatticeSurgeryQFTMapper, RowUnitQFTMapper
from .lnn_mapper import LNNQFTMapper, map_qft_on_line
from .mapper import compile_qft, mapper_for, register_specialist
from .qft_specialist import QFTSpecialistMixin
from .partition import partitioned_qft_for, unit_partition_for
from .routed import GreedyRouterMapper, complete_remaining
from .sycamore_mapper import SycamoreQFTMapper
from .unit import UnitLevelScheduler

__all__ = [
    "AbstractStep",
    "CascadeStalled",
    "abstract_line_qft_schedule",
    "cascade_on_line",
    "QFTDependenceTracker",
    "HeavyHexQFTMapper",
    "bipartite_all_to_all",
    "GridQFTMapper",
    "LatticeSurgeryQFTMapper",
    "RowUnitQFTMapper",
    "LNNQFTMapper",
    "map_qft_on_line",
    "compile_qft",
    "mapper_for",
    "register_specialist",
    "QFTSpecialistMixin",
    "partitioned_qft_for",
    "unit_partition_for",
    "GreedyRouterMapper",
    "complete_remaining",
    "SycamoreQFTMapper",
    "UnitLevelScheduler",
]
