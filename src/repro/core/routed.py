"""Routed completion: a guaranteed-correct (but unoptimised) QFT router.

Two roles:

1. **Safety net.**  The constructive mappers (cascade, heavy-hex, unit-based)
   are built around regular hardware structure.  When they are pointed at an
   irregular topology (tests do this on purpose) they may reach a state where
   their local rules make no further progress.  ``complete_remaining`` then
   finishes the kernel by explicit shortest-path routing, so the mapper's
   output is *always* a correct QFT -- only its depth degrades.  Mappers
   record how much work the fallback did in ``MappedCircuit.metadata`` so
   benchmarks can confirm it was not used on the paper's architectures.

2. **Naive baseline.**  ``GreedyRouterMapper`` maps the whole kernel this way
   (the classic "route every gate along a shortest path" strategy).  It is a
   useful sanity baseline in tests and ablations: every smarter mapper should
   beat it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..arch.topology import Topology
from ..circuit.circuit import Circuit
from ..circuit.gates import GateKind, qft_angle
from ..circuit.qft import qft_circuit
from ..circuit.schedule import MappedCircuit, MappingBuilder
from .dependence import QFTDependenceTracker

__all__ = ["complete_remaining", "finish_hadamards", "GreedyRouterMapper"]


def _route_adjacent(builder: MappingBuilder, phys_a: int, phys_b: int, tag: str) -> Tuple[int, int]:
    """SWAP the qubit at ``phys_a`` along a shortest path until it is adjacent
    to ``phys_b``; return the final (phys_a', phys_b) pair."""

    topo: Topology = builder.topology
    if topo.has_edge(phys_a, phys_b) or phys_a == phys_b:
        return phys_a, phys_b
    path = topo.shortest_path(phys_a, phys_b)
    # Move the logical qubit at phys_a along the path, stopping one hop short.
    current = phys_a
    for nxt in path[1:-1]:
        builder.swap(current, nxt, tag=tag)
        current = nxt
    return current, phys_b


def complete_remaining(
    builder: MappingBuilder,
    tracker: QFTDependenceTracker,
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
    *,
    tag: str = "routed",
) -> int:
    """Complete the given pending CPHASE pairs (default: all of them) plus any
    outstanding Hadamards of the involved qubits, by explicit routing.

    Returns the number of SWAP gates inserted.  The routine always terminates:
    at every step the smallest-index qubit appearing in a pending pair has all
    of its smaller-index interactions finished, so either its H or one of its
    pair interactions is eligible.
    """

    if pairs is None:
        wanted: Set[Tuple[int, int]] = set(tracker.pending_pairs())
    else:
        wanted = {tuple(sorted(p)) for p in pairs}
        wanted = {p for p in wanted if tracker.pair_is_pending(*p)}
    swaps_before = sum(1 for op in builder.ops if op.is_swap)

    while wanted:
        # Fire every eligible Hadamard that unblocks a wanted pair.
        fired_h = True
        while fired_h:
            fired_h = False
            lows = {p[0] for p in wanted}
            for q in sorted(lows):
                if tracker.can_h(q):
                    builder.h(builder.phys_of(q), tag=tag)
                    tracker.mark_h(q)
                    fired_h = True

        eligible = [p for p in sorted(wanted) if tracker.can_cphase(*p)]
        if not eligible:
            # No wanted pair is eligible: some wanted pair's low qubit is
            # blocked on a *non-wanted* pending pair.  Pull that pair in.
            blockers: Set[Tuple[int, int]] = set()
            for lo, hi in sorted(wanted):
                if not tracker.h_done[lo]:
                    for x in range(lo):
                        if tracker.pair_is_pending(x, lo):
                            blockers.add((x, lo))
            if not blockers:
                raise RuntimeError(
                    "routed completion is stuck: no eligible pair and no blocking "
                    "pair found -- dependence state is inconsistent"
                )
            wanted |= blockers
            continue

        # Route the most constrained eligible pair (smallest low index first,
        # mirroring the textbook order so the fallback stays deterministic).
        lo, hi = eligible[0]
        pa = builder.phys_of(lo)
        pb = builder.phys_of(hi)
        pa, pb = _route_adjacent(builder, pa, pb, tag)
        builder.cphase(pa, pb, qft_angle(lo, hi), tag=tag)
        tracker.mark_cphase(lo, hi)
        wanted.discard((lo, hi))

    swaps_after = sum(1 for op in builder.ops if op.is_swap)
    return swaps_after - swaps_before


def finish_hadamards(
    builder: MappingBuilder, tracker: QFTDependenceTracker, tag: str = "routed"
) -> int:
    """Emit every still-missing, eligible Hadamard (used at the very end of a
    mapper when all pairs are complete).  Returns the number emitted."""

    emitted = 0
    for q in range(tracker.n):
        if tracker.can_h(q):
            builder.h(builder.phys_of(q), tag=tag)
            tracker.mark_h(q)
            emitted += 1
    return emitted


class GreedyRouterMapper:
    """Naive baseline: map any circuit by routing every interaction on demand.

    Gates are executed in program order, each two-qubit gate enabled by
    SWAPping its first qubit along a shortest path.  Initial layout is the
    identity (logical i on physical i) unless given.  For the QFT this
    reproduces the classic strict Type I + II routing baseline (the textbook
    circuit *is* its program order), but the router is workload-agnostic:
    it is the approach of last resort for any circuit on any topology.
    """

    name = "greedy-router"

    def __init__(self, topology: Topology, initial_layout: Optional[Sequence[int]] = None):
        self.topology = topology
        self.initial_layout = list(initial_layout) if initial_layout is not None else None

    def map_qft(self, num_qubits: Optional[int] = None) -> MappedCircuit:
        n = num_qubits if num_qubits is not None else self.topology.num_qubits
        return self.map_circuit(qft_circuit(n))

    def map_circuit(self, circuit: Circuit) -> MappedCircuit:
        from ..registry import UnsupportedWorkload

        n = circuit.num_qubits
        if n > self.topology.num_qubits:
            raise ValueError("more logical qubits than physical qubits")
        layout = self.initial_layout if self.initial_layout is not None else list(range(n))
        builder = MappingBuilder(self.topology, layout, num_logical=n, name=self.name)
        for gate in circuit.gates:
            if gate.kind == GateKind.H:
                builder.h(builder.phys_of(gate.qubits[0]), tag="routed")
            elif gate.kind == GateKind.RZ:
                builder.rz(builder.phys_of(gate.qubits[0]), gate.angle, tag="routed")
            elif gate.kind == GateKind.SWAP:
                # A program-level SWAP cannot be told apart from a routing
                # SWAP in the mapped stream (verification replays treat every
                # SWAP as data movement), so compiling it silently would
                # yield a circuit that drops the gate.  Workloads express
                # permutations through relabelling instead.
                raise UnsupportedWorkload(
                    f"{self.name} cannot compile program-level SWAP gates; "
                    "express the permutation as a relabelling"
                )
            elif gate.is_two_qubit:
                a, b = gate.qubits
                pa, pb = _route_adjacent(
                    builder, builder.phys_of(a), builder.phys_of(b), "routed"
                )
                if gate.kind == GateKind.CPHASE:
                    builder.cphase(pa, pb, gate.angle, tag="routed")
                else:
                    builder.cnot(pa, pb, tag="routed")
            else:
                raise ValueError(f"unsupported gate kind {gate.kind!r}")
        return builder.build(metadata={"mapper": self.name})
