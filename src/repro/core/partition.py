"""Helpers tying the k-partition framework (Section 3.2) to hardware units.

The logical-level partition machinery lives in :mod:`repro.circuit.qft`
(:class:`~repro.circuit.qft.PartitionRange`, :func:`~repro.circuit.qft.qft_partitioned`).
This module derives the partition that a unit-based mapper implicitly uses for
a given architecture, so that tests and examples can demonstrate the
correctness argument of Section 3.2 end-to-end:

    textbook QFT  ==  partitioned QFT (same gates, reordered)
                  ==  what the unit-based hardware mapper executes.
"""

from __future__ import annotations

from typing import List, Optional

from ..arch.grid import GridTopology
from ..arch.lattice_surgery import LatticeSurgeryTopology
from ..arch.sycamore import SycamoreTopology
from ..circuit.circuit import Circuit
from ..circuit.qft import PartitionRange, qft_partitioned

__all__ = ["unit_partition_for", "partitioned_qft_for"]


def unit_partition_for(topology) -> PartitionRange:
    """The consecutive-qubit partition induced by a topology's unit structure.

    * Sycamore: one unit per pair of rows (``2m`` qubits each),
    * lattice surgery / regular grid: one unit per row (``cols`` qubits each),
    * anything else: a single unit (no partition).
    """

    n = topology.num_qubits
    if isinstance(topology, SycamoreTopology):
        sizes = [topology.unit_size] * topology.num_units
        return PartitionRange.from_sizes(sizes)
    if isinstance(topology, (LatticeSurgeryTopology, GridTopology)):
        sizes = [topology.cols] * topology.rows
        return PartitionRange.from_sizes(sizes)
    return PartitionRange(0, n)


def partitioned_qft_for(topology, *, relaxed_ie: bool = False) -> Circuit:
    """The logical k-partition QFT circuit matching a topology's units."""

    part = unit_partition_for(topology)
    return qft_partitioned(topology.num_qubits, part, relaxed_ie=relaxed_ie)
