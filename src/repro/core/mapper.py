"""Facade: pick the right domain-specific QFT mapper for a topology.

Dispatch is registry-driven: each topology class registers its specialist
mapper factory with :func:`register_specialist`, and :func:`mapper_for`
resolves an instance by walking the topology's MRO (most specific class
wins) -- exactly the uniform-interface-over-per-backend-constructions story
of the paper, with no ``isinstance`` chain to keep in sync.  Topologies with
no registered specialist fall back to the naive-but-correct
:class:`~repro.core.routed.GreedyRouterMapper`.

``compile_qft(topology)`` survives as a thin shim over the registry-driven
:func:`repro.compile` entry point for existing callers.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Type

from ..arch.grid import GridTopology
from ..arch.heavy_hex import CaterpillarTopology, HeavyHexTopology
from ..arch.lattice_surgery import LatticeSurgeryTopology
from ..arch.lnn import LNNTopology
from ..arch.sycamore import SycamoreTopology
from ..arch.topology import Topology
from ..circuit.schedule import MappedCircuit
from ..registry import DuplicateRegistrationError
from .heavy_hex_mapper import HeavyHexQFTMapper
from .lattice_surgery_mapper import GridQFTMapper, LatticeSurgeryQFTMapper
from .lnn_mapper import LNNQFTMapper
from .routed import GreedyRouterMapper
from .sycamore_mapper import SycamoreQFTMapper

__all__ = ["compile_qft", "mapper_for", "register_specialist"]

#: topology class -> factory(topology, strict_ie) for its specialist mapper
_SPECIALISTS: Dict[Type[Topology], Callable[[Topology, bool], object]] = {}


def register_specialist(*topology_types: Type[Topology]):
    """Register a specialist mapper factory for the given topology classes.

    The factory is called as ``factory(topology, strict_ie)`` and must
    return a mapper exposing the uniform ``map_circuit`` surface (the QFT
    specialists get it from
    :class:`~repro.core.qft_specialist.QFTSpecialistMixin`).  Subclasses of
    a registered topology inherit its specialist unless they register their
    own (MRO lookup, most specific first).
    """

    def _register(factory: Callable[[Topology, bool], object]):
        for cls in topology_types:
            if cls in _SPECIALISTS:
                raise DuplicateRegistrationError(
                    f"topology class {cls.__name__} already has a specialist mapper"
                )
            _SPECIALISTS[cls] = factory
        return factory

    return _register


def mapper_for(topology: Topology, *, strict_ie: bool = False):
    """Return the domain-specific mapper instance for ``topology``."""

    for cls in type(topology).__mro__:
        factory = _SPECIALISTS.get(cls)
        if factory is not None:
            return factory(topology, strict_ie)
    # Unknown architecture: fall back to the naive-but-correct router.
    return GreedyRouterMapper(topology)


@register_specialist(LNNTopology)
def _lnn_specialist(topology: Topology, strict_ie: bool):
    """Analytic QFT cascade along the line (Section 4)."""

    return LNNQFTMapper(topology)


@register_specialist(CaterpillarTopology, HeavyHexTopology)
def _heavy_hex_specialist(topology: Topology, strict_ie: bool):
    """Caterpillar/heavy-hex QFT construction (Section 5)."""

    return HeavyHexQFTMapper(topology)


@register_specialist(SycamoreTopology)
def _sycamore_specialist(topology: Topology, strict_ie: bool):
    """Sycamore diagonal-sweep QFT construction (Section 6)."""

    return SycamoreQFTMapper(topology, strict_ie=strict_ie)


@register_specialist(LatticeSurgeryTopology)
def _lattice_specialist(topology: Topology, strict_ie: bool):
    """Lattice-surgery QFT via patch-row cascades (Section 6.2)."""

    return LatticeSurgeryQFTMapper(topology, strict_ie=strict_ie)


@register_specialist(GridTopology)
def _grid_specialist(topology: Topology, strict_ie: bool):
    """Square-grid QFT via boustrophedon row cascades."""

    return GridQFTMapper(topology, strict_ie=strict_ie)


def compile_qft(
    topology: Topology,
    num_qubits: Optional[int] = None,
    *,
    strict_ie: bool = False,
) -> MappedCircuit:
    """Compile an ``n``-qubit QFT kernel for ``topology``.

    .. deprecated::
        ``compile_qft`` is kept as a thin shim over the registry-driven
        :func:`repro.compile` entry point (``repro.compile(workload="qft",
        architecture=topology, approach="ours")``), which also exposes the
        other workloads, approaches and result metadata.  New code should
        call :func:`repro.compile`.

    ``num_qubits`` defaults to the full device size (the paper always maps a
    QFT as large as the patch).  ``strict_ie=True`` selects the QFT-IE-strict
    inter-unit schedules, kept only for the relaxed-vs-strict ablation.
    """

    import warnings

    warnings.warn(
        "compile_qft is deprecated; use repro.compile(workload='qft', "
        "architecture=<topology>, approach='ours')",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..compile_api import compile as _compile

    result = _compile(
        workload="qft",
        architecture=topology,
        approach="ours",
        num_qubits=num_qubits,
        verify=False,
        strict_ie=strict_ie,
    )
    if result.mapped is None:  # pragma: no cover - "ours" always supports QFT
        raise RuntimeError(f"QFT compilation failed: {result.status} {result.message}")
    return result.mapped
