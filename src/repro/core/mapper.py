"""Facade: pick the right domain-specific QFT mapper for a topology.

``compile_qft(topology)`` is the one-call public entry point used by the
examples, the evaluation harness and most tests.  It dispatches on the
architecture type (exactly as the paper's framework does -- the construction
differs per backend but the interface is uniform) and returns a verified-by
-construction :class:`~repro.circuit.schedule.MappedCircuit`.
"""

from __future__ import annotations

from typing import Optional

from ..arch.grid import GridTopology
from ..arch.heavy_hex import CaterpillarTopology, HeavyHexTopology
from ..arch.lattice_surgery import LatticeSurgeryTopology
from ..arch.lnn import LNNTopology
from ..arch.sycamore import SycamoreTopology
from ..arch.topology import Topology
from ..circuit.schedule import MappedCircuit
from .heavy_hex_mapper import HeavyHexQFTMapper
from .lattice_surgery_mapper import GridQFTMapper, LatticeSurgeryQFTMapper
from .lnn_mapper import LNNQFTMapper
from .routed import GreedyRouterMapper
from .sycamore_mapper import SycamoreQFTMapper

__all__ = ["compile_qft", "mapper_for"]


def mapper_for(topology: Topology, *, strict_ie: bool = False):
    """Return the domain-specific mapper instance for ``topology``."""

    if isinstance(topology, LNNTopology):
        return LNNQFTMapper(topology)
    if isinstance(topology, (CaterpillarTopology, HeavyHexTopology)):
        return HeavyHexQFTMapper(topology)
    if isinstance(topology, SycamoreTopology):
        return SycamoreQFTMapper(topology, strict_ie=strict_ie)
    if isinstance(topology, LatticeSurgeryTopology):
        return LatticeSurgeryQFTMapper(topology, strict_ie=strict_ie)
    if isinstance(topology, GridTopology):
        return GridQFTMapper(topology, strict_ie=strict_ie)
    # Unknown architecture: fall back to the naive-but-correct router.
    return GreedyRouterMapper(topology)


def compile_qft(
    topology: Topology,
    num_qubits: Optional[int] = None,
    *,
    strict_ie: bool = False,
) -> MappedCircuit:
    """Compile an ``n``-qubit QFT kernel for ``topology``.

    ``num_qubits`` defaults to the full device size (the paper always maps a
    QFT as large as the patch).  ``strict_ie=True`` selects the QFT-IE-strict
    inter-unit schedules, kept only for the relaxed-vs-strict ablation.
    """

    mapper = mapper_for(topology, strict_ie=strict_ie)
    return mapper.map_qft(num_qubits)
