"""The LNN cascade: linear-depth QFT on a line (Section 2.2, Fig. 3).

The known linear-depth LNN solution can be phrased as a pipeline of
*fronts*: qubit ``q0`` is hadamarded and then travels toward the far end of
the line through repeated (CPHASE, SWAP) steps with every qubit it meets; each
subsequent qubit launches its own front as soon as all of its smaller-index
interactions are complete (at which point it sits at the head of the line and
its H is legal).  After ``4N + O(1)`` layers every pair has interacted exactly
once and the line order is reversed -- exactly the pattern of Fig. 3.

This module implements the cascade twice, deliberately:

* :func:`abstract_line_qft_schedule` produces the schedule for ``k`` *virtual*
  items on a virtual line.  The unit-based mappers (Sycamore, lattice surgery,
  2-D grid) replay it with units in place of qubits: virtual "H" becomes an
  intra-unit QFT, virtual "CPHASE" becomes an inter-unit interaction and
  virtual "SWAP" becomes a unit swap (Fig. 14).

* :func:`cascade_on_line` runs the same rules directly against a
  :class:`~repro.circuit.schedule.MappingBuilder` for the logical qubits
  currently resident on a physical line.  It is the QFT-IA primitive of every
  unit-based mapper and, on its own, the full LNN mapper.

Both engines use the relaxed (Type II only) dependence rules through
:class:`~repro.core.dependence.QFTDependenceTracker`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import qft_angle
from ..circuit.schedule import MappingBuilder
from .dependence import QFTDependenceTracker
from .routed import complete_remaining

__all__ = [
    "AbstractStep",
    "abstract_line_qft_schedule",
    "cascade_on_line",
    "CascadeStalled",
]


class CascadeStalled(RuntimeError):
    """Raised when the cascade's local rules cannot make progress.

    On the paper's architectures this never happens; it indicates either a
    misuse (e.g. running an intra-unit QFT before the unit's cross
    interactions completed) or an irregular topology, in which case the caller
    may fall back to routed completion.
    """


@dataclass(frozen=True)
class AbstractStep:
    """One action of the abstract (virtual-line) schedule.

    ``kind`` is ``"h"``, ``"cphase"`` or ``"swap"``; ``items`` holds the
    virtual item ids (length 1 or 2, smaller id first for two-item actions)
    and ``positions`` the line positions they occupy when the action runs.
    ``layer`` is the parallel time step the action belongs to.
    """

    kind: str
    items: Tuple[int, ...]
    positions: Tuple[int, ...]
    layer: int


def abstract_line_qft_schedule(k: int) -> List[AbstractStep]:
    """Linear-depth QFT schedule for ``k`` virtual items on a ``k``-slot line.

    The returned steps respect the QFT Type II dependence at item granularity
    (every pair "interacts" exactly once, item ``i``'s "H" precedes all of its
    interactions with larger items, and follows all interactions with smaller
    items) and consecutive items of a two-item step always occupy adjacent
    positions.  The final arrangement is the reversal of the initial one.
    """

    if k < 1:
        raise ValueError("need at least one virtual item")
    tracker = QFTDependenceTracker(k)
    line: List[int] = list(range(k))  # line[pos] = virtual item id
    steps: List[AbstractStep] = []
    layer = 0
    max_layers = 8 * k + 16

    while not tracker.all_done():
        if layer > max_layers:
            raise CascadeStalled(
                f"abstract cascade did not converge within {max_layers} layers"
            )
        claimed: Set[int] = set()
        actions: List[AbstractStep] = []

        # Hadamards first: an item's H is on the critical path of its front.
        for pos, item in enumerate(line):
            if pos in claimed:
                continue
            if tracker.can_h(item):
                actions.append(AbstractStep("h", (item,), (pos,), layer))
                claimed.add(pos)

        # CPHASE then SWAP on adjacent position pairs, scanning the line.
        for pos in range(k - 1):
            if pos in claimed or pos + 1 in claimed:
                continue
            a, b = line[pos], line[pos + 1]
            lo, hi = (a, b) if a < b else (b, a)
            if tracker.can_cphase(lo, hi):
                actions.append(AbstractStep("cphase", (lo, hi), (pos, pos + 1), layer))
                claimed.update((pos, pos + 1))
            elif (
                a < b
                and tracker.pair_is_done(a, b)
                and (tracker.has_pending_pairs(a) or tracker.has_pending_pairs(b))
            ):
                actions.append(AbstractStep("swap", (a, b), (pos, pos + 1), layer))
                claimed.update((pos, pos + 1))

        if not actions:
            raise CascadeStalled("abstract cascade stalled with pending interactions")

        for step in actions:
            if step.kind == "h":
                tracker.mark_h(step.items[0])
            elif step.kind == "cphase":
                tracker.mark_cphase(*step.items)
            else:  # swap: smaller item moves toward higher positions
                p, q = step.positions
                line[p], line[q] = line[q], line[p]
        steps.extend(actions)
        layer += 1
    return steps


def cascade_on_line(
    builder: MappingBuilder,
    tracker: QFTDependenceTracker,
    line: Sequence[int],
    participants: Optional[Sequence[int]] = None,
    *,
    tag: str = "ia",
    allow_fallback: bool = True,
    opportunistic: bool = True,
) -> Dict[str, int]:
    """Run the LNN cascade for the logical qubits resident on ``line``.

    Parameters
    ----------
    builder, tracker:
        Shared emission / dependence state.
    line:
        Physical qubits forming a path (consecutive entries must be coupled).
    participants:
        Logical qubits whose mutual interactions this call must complete
        (default: every logical qubit currently on the line).  The cascade
        terminates once all participant pairs are done and every participant
        received its Hadamard.
    tag:
        Provenance tag stamped on emitted ops.
    allow_fallback:
        Finish via routed completion if the local rules stall (never needed on
        a genuine line; kept for robustness on irregular inputs).
    opportunistic:
        Also emit eligible CPHASEs between a participant and a non-participant
        neighbour when they happen to be adjacent (harmless and occasionally
        saves work for the caller).

    Returns a small stats dict (layers, swaps, fallback swaps).
    """

    positions = list(line)
    L = len(positions)
    for a, b in zip(positions, positions[1:]):
        if not builder.topology.has_edge(a, b):
            raise ValueError(f"line entries {a} and {b} are not coupled")

    if participants is None:
        part: Set[int] = set()
        for p in positions:
            lq = builder.logical_at(p)
            if lq is not None and lq >= 0:
                part.add(lq)
    else:
        part = set(participants)
    if not part:
        return {"layers": 0, "swaps": 0, "fallback_swaps": 0}

    # Pending-work counters, maintained alongside every mark_* call in the
    # loop below so the per-layer predicates are O(1) instead of rescanning
    # all participant pairs (which made large lines O(n^3) overall):
    # pend_in[q]   = #pending pairs between q and the other participants,
    # pending_pair_count = #pending pairs within the participant set,
    # h_missing    = #participants still owed their Hadamard.
    part_sorted = sorted(part)
    pend_in: Dict[int, int] = {q: 0 for q in part_sorted}
    pending_pair_count = 0
    if len(part) == tracker.n:
        # whole-circuit cascade (the LNN mapper): the tracker's own per-qubit
        # counters already hold the within-part pending counts
        for q in part_sorted:
            pend_in[q] = tracker.pending_smaller[q] + tracker.pending_larger[q]
        pending_pair_count = tracker.total_pairs - tracker.pairs_completed
    else:
        for i, a in enumerate(part_sorted):
            for b in part_sorted[i + 1 :]:
                if tracker.pair_is_pending(a, b):
                    pend_in[a] += 1
                    pend_in[b] += 1
                    pending_pair_count += 1
    h_missing = sum(1 for q in part if not tracker.h_done[q])

    def note_cphase(lo: int, hi: int) -> None:
        nonlocal pending_pair_count
        if lo in part and hi in part:
            pend_in[lo] -= 1
            pend_in[hi] -= 1
            pending_pair_count -= 1

    def participant_pending(q: int) -> bool:
        # == q in part and any(tracker.pair_is_pending(q, r) for r in part)
        return q in part and pend_in[q] > 0

    def finished() -> bool:
        # == tracker.all_pairs_done_within(part) and all participants H'd
        return pending_pair_count == 0 and h_missing == 0

    swaps = 0
    fallback_swaps = 0
    layer = 0
    flips = 0
    acted_since_flip = True
    max_layers = 8 * max(L, len(part)) + 16

    while not finished():
        if layer > max_layers:
            if allow_fallback:
                pairs = [
                    (a, b)
                    for i, a in enumerate(sorted(part))
                    for b in sorted(part)[i + 1 :]
                    if tracker.pair_is_pending(a, b)
                ]
                fallback_swaps += complete_remaining(builder, tracker, pairs, tag=tag + "-fallback")
                for q in sorted(part):
                    if tracker.can_h(q):
                        builder.h(builder.phys_of(q), tag=tag)
                        tracker.mark_h(q)
                break
            raise CascadeStalled("cascade_on_line exceeded its layer budget")

        claimed: Set[int] = set()
        emitted_any = False

        # Hadamards first.
        for pos in range(L):
            phys = positions[pos]
            lq = builder.logical_at(phys)
            if lq is None or lq < 0 or pos in claimed:
                continue
            if lq in part and tracker.can_h(lq):
                builder.h(phys, tag=tag)
                tracker.mark_h(lq)
                h_missing -= 1
                claimed.add(pos)
                emitted_any = True

        # CPHASE / SWAP over adjacent line positions.
        for pos in range(L - 1):
            if pos in claimed or pos + 1 in claimed:
                continue
            pa, pb = positions[pos], positions[pos + 1]
            a = builder.logical_at(pa)
            b = builder.logical_at(pb)
            if a is None or b is None or a < 0 or b < 0:
                continue
            lo, hi = (a, b) if a < b else (b, a)
            both_participants = a in part and b in part
            if tracker.can_cphase(lo, hi) and (both_participants or opportunistic):
                builder.cphase(pa, pb, qft_angle(lo, hi), tag=tag)
                tracker.mark_cphase(lo, hi)
                note_cphase(lo, hi)
                claimed.update((pos, pos + 1))
                emitted_any = True
            elif (
                a < b
                and tracker.pair_is_done(a, b)
                and (participant_pending(a) or participant_pending(b))
            ):
                builder.swap(pa, pb, tag=tag)
                swaps += 1
                claimed.update((pos, pos + 1))
                emitted_any = True

        if emitted_any:
            acted_since_flip = True
        else:
            # The cascade moves smaller-index qubits toward the high end of the
            # line.  After an inter-unit interaction the residents can arrive
            # already in descending order with interactions still pending, in
            # which case the movement rule has nothing to do.  Running the same
            # rules with the line orientation reversed resolves this; the flip
            # itself costs no gates.  Only if a flip yields no progress either
            # do we resort to routed completion.
            if acted_since_flip:
                positions.reverse()
                flips += 1
                acted_since_flip = False
                continue
            if allow_fallback:
                pairs = [
                    (a, b)
                    for i, a in enumerate(sorted(part))
                    for b in sorted(part)[i + 1 :]
                    if tracker.pair_is_pending(a, b)
                ]
                fallback_swaps += complete_remaining(builder, tracker, pairs, tag=tag + "-fallback")
                for q in sorted(part):
                    if tracker.can_h(q):
                        builder.h(builder.phys_of(q), tag=tag)
                        tracker.mark_h(q)
                break
            raise CascadeStalled(
                "cascade_on_line stalled; participants' interactions incomplete"
            )
        layer += 1

    return {
        "layers": layer,
        "swaps": swaps,
        "fallback_swaps": fallback_swaps,
        "orientation_flips": flips,
    }
