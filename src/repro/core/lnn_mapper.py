"""Linear-depth QFT mapper for the LNN (line) architecture.

This is the base case of the paper's framework (Section 2.2): on a line of
``N`` qubits the QFT kernel maps to a hardware circuit of depth ``4N + O(1)``
with ``N(N-1)/2`` CPHASE gates and roughly ``N(N-1)/2`` SWAPs, and the final
placement is the reversal of the initial one.

The mapper also accepts an explicit physical ``line`` through an arbitrary
topology, which is how the "LNN on a Hamiltonian path" baseline of the
lattice-surgery evaluation (Fig. 19) reuses it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..arch.lnn import LNNTopology
from ..arch.topology import Topology
from ..circuit.schedule import MappedCircuit, MappingBuilder
from .cascade import cascade_on_line
from .dependence import QFTDependenceTracker
from .qft_specialist import QFTSpecialistMixin

__all__ = ["LNNQFTMapper", "map_qft_on_line"]


def map_qft_on_line(
    topology: Topology,
    line: Sequence[int],
    num_qubits: Optional[int] = None,
    *,
    name: str = "lnn-cascade",
) -> MappedCircuit:
    """Map an ``n``-qubit QFT onto the physical path ``line`` of ``topology``.

    Logical qubit ``i`` starts at ``line[i]``.  ``num_qubits`` defaults to the
    length of the line.
    """

    n = num_qubits if num_qubits is not None else len(line)
    if n > len(line):
        raise ValueError("more logical qubits than positions on the line")
    layout = list(line[:n])
    builder = MappingBuilder(topology, layout, num_logical=n, name=name)
    tracker = QFTDependenceTracker(n)
    stats = cascade_on_line(builder, tracker, line[:n], tag="lnn")
    if not tracker.all_done():
        raise RuntimeError("LNN cascade finished without completing the kernel")
    return builder.build(metadata={"mapper": name, **stats})


class LNNQFTMapper(QFTSpecialistMixin):
    """QFT mapper for :class:`~repro.arch.lnn.LNNTopology` (or any explicit line)."""

    name = "our-lnn"

    def __init__(self, topology: Topology, line: Optional[Sequence[int]] = None) -> None:
        self.topology = topology
        if line is not None:
            self.line: List[int] = list(line)
        elif isinstance(topology, LNNTopology):
            self.line = topology.line_order()
        elif hasattr(topology, "serpentine_order"):
            self.line = list(topology.serpentine_order())
        else:
            raise ValueError(
                "topology has no obvious line; pass an explicit `line` of physical qubits"
            )
        for a, b in zip(self.line, self.line[1:]):
            if not topology.has_edge(a, b):
                raise ValueError(f"line entries {a} and {b} are not coupled")

    def map_qft(self, num_qubits: Optional[int] = None) -> MappedCircuit:
        return map_qft_on_line(self.topology, self.line, num_qubits, name=self.name)
