"""Regression test: pytest collection must work from the repo root.

The seed repo failed ``python -m pytest -x -q`` at collection because ten
test modules did ``from conftest import assert_valid_qft`` and resolved
``benchmarks/conftest.py`` instead of ``tests/conftest.py``.  This test runs
a real collection pass from the repo root so that bug class cannot silently
return.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_pytest_collects_from_repo_root():
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    # the seed suite had 596 tests; collection must never shrink below that
    summary = [l for l in proc.stdout.splitlines() if "collected" in l]
    assert summary, proc.stdout
    count = int(summary[-1].split()[0])
    assert count >= 596, summary[-1]


def test_benchmarks_collect_when_targeted():
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "--collect-only", "-q"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    summary = [l for l in proc.stdout.splitlines() if "collected" in l]
    assert summary and int(summary[-1].split()[0]) > 0, proc.stdout
