"""Equivalence of the vectorized SABRE fast path with the reference path.

The vectorized implementation must be *bit-identical* to the reference --
same emitted op sequence, not just the same metrics -- because the eval
harness caches results keyed by code version and the paper's seed-variance
figure (Fig. 27) depends on exact RNG consumption.
"""

import pytest

from repro.arch import (
    CaterpillarTopology,
    GridTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
    clear_distance_cache,
)
from repro.baselines import SabreMapper
from repro.circuit.circuit import Circuit

from helpers import assert_valid_qft

TOPOLOGIES = [
    pytest.param(lambda: LNNTopology(6), id="lnn6"),
    pytest.param(lambda: GridTopology(3, 3), id="grid33"),
    pytest.param(lambda: GridTopology(4, 4), id="grid44"),
    pytest.param(lambda: SycamoreTopology(4), id="sycamore4"),
    pytest.param(lambda: CaterpillarTopology.regular_groups(3), id="heavyhex3"),
    pytest.param(lambda: LatticeSurgeryTopology(4), id="lattice4"),
]

# Larger instances exercising the delta-scored fast path (and its opt-in
# cross-iteration cache) where front layers, extended sets and candidate sets
# interact non-trivially; gate-for-gate equivalence with the reference loop
# is the contract that lets the eval harness treat the paths interchangeably.
LARGE_TOPOLOGIES = [
    pytest.param(lambda: GridTopology(5, 5), id="grid55"),
    pytest.param(lambda: SycamoreTopology(6), id="sycamore6"),
    pytest.param(lambda: CaterpillarTopology.regular_groups(5), id="heavyhex5"),
]


@pytest.mark.parametrize("make_topo", TOPOLOGIES)
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_vectorized_ops_bit_identical(make_topo, seed):
    topo = make_topo()
    ref = SabreMapper(topo, seed=seed, vectorized=False).map_qft(topo.num_qubits)
    vec = SabreMapper(topo, seed=seed, vectorized=True).map_qft(topo.num_qubits)
    assert vec.ops == ref.ops
    assert vec.depth() == ref.depth()
    assert vec.swap_count() == ref.swap_count()


@pytest.mark.parametrize("make_topo", TOPOLOGIES + LARGE_TOPOLOGIES)
@pytest.mark.parametrize("seed", [0, 5])
def test_incremental_scorer_bit_identical(make_topo, seed):
    topo = make_topo()
    ref = SabreMapper(topo, seed=seed, vectorized=False).map_qft(topo.num_qubits)
    inc = SabreMapper(topo, seed=seed, incremental=True).map_qft(topo.num_qubits)
    assert inc.ops == ref.ops
    assert inc.depth() == ref.depth()
    assert inc.swap_count() == ref.swap_count()


@pytest.mark.parametrize("make_topo", LARGE_TOPOLOGIES)
@pytest.mark.parametrize("seed", [1, 7])
def test_default_fast_path_bit_identical_on_larger_instances(make_topo, seed):
    topo = make_topo()
    ref = SabreMapper(topo, seed=seed, vectorized=False).map_qft(topo.num_qubits)
    vec = SabreMapper(topo, seed=seed).map_qft(topo.num_qubits)
    assert vec.ops == ref.ops


def test_sabre_tables_shared_across_mapper_instances():
    from repro.baselines.sabre import sabre_tables_for

    topo_a = GridTopology(4, 4)
    topo_b = GridTopology(4, 4)  # same coupling graph, different instance
    assert sabre_tables_for(topo_a) is sabre_tables_for(topo_b)
    adj, edge_list, edge_arr, edge_bits = sabre_tables_for(topo_a)
    assert not adj.flags.writeable
    assert not edge_bits.flags.writeable
    assert edge_list == sorted(topo_a.edge_set)
    assert sabre_tables_for(GridTopology(4, 5)) is not sabre_tables_for(topo_a)


def test_vectorized_output_is_a_valid_qft():
    topo = GridTopology(4, 4)
    mapped = SabreMapper(topo, seed=3).map_qft(topo.num_qubits)
    assert_valid_qft(mapped, topo.num_qubits)


def test_single_pass_and_trivial_layout_match_reference():
    topo = GridTopology(3, 3)
    kwargs = dict(seed=5, passes=1, trivial_initial_layout=True)
    ref = SabreMapper(topo, vectorized=False, **kwargs).map_qft(topo.num_qubits)
    vec = SabreMapper(topo, vectorized=True, **kwargs).map_qft(topo.num_qubits)
    assert vec.ops == ref.ops


def test_logical_swap_circuit_falls_back_and_matches_reference():
    # Circuits containing *logical* SWAP gates take the reference path (a
    # SWAP changes the layout mid-sweep, which the batched executability
    # check does not model); results must still agree.
    topo = GridTopology(3, 3)
    circ = Circuit(4)
    circ.h(0).cnot(0, 1).swap(1, 2).cnot(2, 3).cphase(0, 3).h(3)
    ref = SabreMapper(topo, seed=2, vectorized=False).map_circuit(circ)
    vec = SabreMapper(topo, seed=2, vectorized=True).map_circuit(circ)
    assert vec.ops == ref.ops


def test_distance_matrix_shared_across_instances():
    clear_distance_cache()
    a = GridTopology(5, 5).distance_matrix()
    b = GridTopology(5, 5).distance_matrix()
    assert a is b  # cache hit: same object, Dijkstra ran once
    assert not a.flags.writeable
    # different graphs do not collide
    c = GridTopology(5, 6).distance_matrix()
    assert c is not a
    clear_distance_cache()


def test_distance_cache_is_lru_bounded():
    from repro.arch.topology import _DIST_CACHE, _DIST_CACHE_MAX

    clear_distance_cache()
    for n in range(2, 2 + _DIST_CACHE_MAX + 4):
        LNNTopology(n).distance_matrix()
    assert len(_DIST_CACHE) == _DIST_CACHE_MAX
    clear_distance_cache()
