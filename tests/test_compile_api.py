"""The ``repro.compile`` entry point and its cross-product guarantees."""

import pytest

import repro
from repro import GridTopology, UnknownNameError
from repro.core import compile_qft  # repro-lint: ignore[deprecated-api] -- shim-contract test


class TestCompileBasics:
    def test_defaults_compile_qft_on_grid(self):
        res = repro.compile(size=3)
        assert res.ok and res.workload == "qft" and res.approach == "ours"
        assert res.num_qubits == 9
        assert res.mapped is not None and res.verified
        assert res.wall_s is not None and res.wall_s >= 0

    def test_accepts_topology_instance(self):
        topo = GridTopology(2, 2)
        res = repro.compile(architecture=topo, approach="sabre", seed=1)
        assert res.ok and res.num_qubits == 4
        assert res.architecture == topo.name

    def test_size_required_for_named_architecture(self):
        with pytest.raises(ValueError, match="size is required"):
            repro.compile(architecture="grid")

    def test_unknown_names_raise(self):
        with pytest.raises(UnknownNameError):
            repro.compile(workload="qtf", size=2)
        with pytest.raises(UnknownNameError):
            repro.compile(approach="sabr", size=2)
        with pytest.raises(UnknownNameError):
            repro.compile(architecture="gird", size=2)

    def test_unknown_approach_option_raises(self):
        with pytest.raises(ValueError, match="unknown option"):
            repro.compile(size=2, approach="sabre", sede=3)

    def test_workload_params_flow_to_builder(self):
        a = repro.compile(
            workload="qaoa", size=3, approach="sabre", workload_params={"seed": 1}
        )
        b = repro.compile(
            workload="qaoa", size=3, approach="sabre", workload_params={"seed": 2}
        )
        assert a.ok and b.ok
        assert a.params["seed"] == 1 and b.params["seed"] == 2

    def test_timeout_returns_typed_result(self):
        res = repro.compile(
            workload="qft", architecture="sycamore", size=4, approach="satmap",
            timeout_s=0.2,
        )
        assert res.status == "timeout"

    def test_size_cap_reports_skipped(self):
        res = repro.compile(size=5, approach="sabre", max_qubits=9)
        assert res.status == "skipped"
        assert "cap" in res.message

    def test_satmap_default_cap_applies(self):
        # 100 qubits is far beyond the registered satmap cap: skipped, not
        # hours of branch-and-bound.
        res = repro.compile(architecture="lattice", size=10, approach="satmap")
        assert res.status == "skipped"

    def test_cap_considers_device_size_not_just_workload_size(self):
        # A small kernel on a huge device still makes SATMAP search every
        # placement site; the cap must catch it.
        res = repro.compile(
            architecture="lattice", size=16, approach="satmap", num_qubits=32
        )
        assert res.status == "skipped"

    def test_metrics_row_matches_mapped(self):
        res = repro.compile(size=3, approach="greedy")
        row = res.metrics()
        assert row.ok
        assert row.depth == res.mapped.depth()
        assert row.swap_count == res.mapped.swap_count()
        assert row.workload == "qft"

    def test_compile_qft_shim_warns_and_matches_direct_compile(self):
        """The retired shim still works, but announces its replacement."""

        topo = GridTopology(3, 3)
        with pytest.warns(DeprecationWarning, match="repro.compile"):
            shim = compile_qft(topo)  # repro-lint: ignore[deprecated-api]
        direct = repro.compile(architecture=topo, verify=False).mapped
        assert [str(op) for op in shim.ops] == [str(op) for op in direct.ops]
        assert "deprecated" in (compile_qft.__doc__ or "").lower()  # repro-lint: ignore[deprecated-api]


# The acceptance criterion of the redesign: the full cross-product of
# workloads x architectures x approaches either compiles or comes back as a
# *typed* non-ok result -- never an exception, never an untyped crash.
SIZES = {"sycamore": 2, "heavyhex": 2, "lattice": 3, "grid": 2, "lnn": 5}


class TestCrossProduct:
    @pytest.mark.parametrize("workload", ["qft", "qaoa", "random"])
    @pytest.mark.parametrize(
        "architecture", ["sycamore", "heavyhex", "lattice", "grid", "lnn"]
    )
    @pytest.mark.parametrize(
        "approach", ["ours", "sabre", "satmap", "lnn", "greedy"]
    )
    def test_cell_is_ok_or_typed(self, workload, architecture, approach):
        res = repro.compile(
            workload=workload,
            architecture=architecture,
            size=SIZES[architecture],
            approach=approach,
            timeout_s=5.0,
        )
        assert res.status in ("ok", "unsupported", "timeout", "skipped")
        if res.status == "ok":
            assert res.mapped is not None
            assert res.verified, (workload, architecture, approach)
        if res.status == "unsupported":
            assert res.message  # the typed refusal carries a reason

    def test_every_workload_has_at_least_one_full_coverage_approach(self):
        # SABRE must compile every workload on every architecture.
        for workload in ["qft", "qaoa", "random"]:
            for architecture, size in SIZES.items():
                res = repro.compile(
                    workload=workload,
                    architecture=architecture,
                    size=size,
                    approach="sabre",
                )
                assert res.ok and res.verified, (workload, architecture)
