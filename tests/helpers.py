"""Importable test helpers.

Lives in a regular module (not ``conftest.py``) so that test modules can
``from helpers import assert_valid_qft`` without depending on which
``conftest`` pytest happens to put first on ``sys.path`` — the seed repo
broke root-level collection because ``benchmarks/conftest.py`` shadowed
``tests/conftest.py`` under the shared module name ``conftest``.
"""

from __future__ import annotations

from repro.verify import verify_mapped_qft

__all__ = ["assert_valid_qft"]


def assert_valid_qft(mapped, n=None, *, strict=False, statevector_limit=7):
    """Assert a mapped circuit is a correct QFT (structure + small-n unitary)."""

    result = verify_mapped_qft(
        mapped, n, strict_order=strict, statevector_limit=statevector_limit
    )
    assert result.ok, result.summary()
    return result
