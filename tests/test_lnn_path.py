"""Tests for the LNN-on-a-Hamiltonian-path baseline (Fig. 19's 'LNN')."""

import pytest

from helpers import assert_valid_qft
from repro.arch import (
    CaterpillarTopology,
    GridTopology,
    LatticeSurgeryTopology,
    LNNTopology,
)
from repro.baselines import LNNPathMapper


class TestLNNPathBaseline:
    @pytest.mark.parametrize("m", [2, 3, 4, 5])
    def test_correct_on_lattice_surgery(self, m):
        topo = LatticeSurgeryTopology(m)
        mapped = LNNPathMapper(topo).map_qft()
        assert_valid_qft(mapped, topo.num_qubits)

    def test_correct_on_plain_grid(self):
        topo = GridTopology(3, 4)
        mapped = LNNPathMapper(topo).map_qft()
        assert_valid_qft(mapped, 12)

    def test_uses_the_serpentine_path(self):
        topo = LatticeSurgeryTopology(3)
        mapper = LNNPathMapper(topo)
        assert mapper.path == topo.serpentine_order()

    def test_charged_with_slow_links_on_ft_backend(self):
        """The serpentine's turns use vertical (slow) links, so the weighted
        depth exceeds the uniform-latency depth -- the effect Section 6 exploits."""

        topo = LatticeSurgeryTopology(4)
        mapped = LNNPathMapper(topo).map_qft()
        assert mapped.depth() > mapped.unit_depth()

    def test_ours_beats_lnn_baseline_on_swap_count(self):
        import repro

        topo = LatticeSurgeryTopology(8)
        lnn = LNNPathMapper(topo).map_qft()
        ours = repro.compile(
            workload="qft", architecture=topo, approach="ours", verify=False
        ).mapped
        # Fig. 19(b): our approach uses fewer SWAPs than LNN.  (The paper also
        # wins on weighted depth thanks to its hand-optimised 2xN mixed
        # schedule; our simpler row-unit schedule has a larger depth constant,
        # a documented gap -- see EXPERIMENTS.md.)
        assert ours.swap_count() < lnn.swap_count()

    def test_no_hamiltonian_path_on_heavy_hex(self):
        """Matches the paper: LNN is not applicable to heavy-hex/Sycamore."""

        topo = CaterpillarTopology.regular_groups(3)
        with pytest.raises(ValueError):
            LNNPathMapper(topo)

    def test_explicit_path_must_cover_every_qubit(self):
        topo = GridTopology(2, 2)
        with pytest.raises(ValueError):
            LNNPathMapper(topo, path=[0, 1])

    def test_explicit_path_must_be_coupled(self):
        topo = GridTopology(2, 2)
        with pytest.raises(ValueError):
            LNNPathMapper(topo, path=[0, 3, 1, 2])

    def test_topology_without_serpentine_needs_explicit_path(self):
        topo = LNNTopology(5)
        mapper = LNNPathMapper(topo, path=[0, 1, 2, 3, 4])
        assert_valid_qft(mapper.map_qft(), 5)
