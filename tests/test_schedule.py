"""Tests for mapped circuits, the MappingBuilder and ASAP scheduling."""

import math

import pytest

from repro.arch import LatticeSurgeryTopology, LNNTopology
from repro.circuit import GateKind, MappingBuilder, Op, asap_depth, asap_layers


def _builder(n=4):
    topo = LNNTopology(n)
    return MappingBuilder(topo, list(range(n)), name="test")


class TestMappingBuilder:
    def test_initial_tracking(self):
        b = _builder()
        assert b.logical_at(2) == 2
        assert b.phys_of(3) == 3

    def test_rejects_duplicate_layout(self):
        topo = LNNTopology(3)
        with pytest.raises(ValueError):
            MappingBuilder(topo, [0, 0, 1])

    def test_rejects_out_of_range_layout(self):
        topo = LNNTopology(3)
        with pytest.raises(ValueError):
            MappingBuilder(topo, [0, 1, 7])

    def test_swap_updates_tracking(self):
        b = _builder()
        b.swap(1, 2)
        assert b.logical_at(1) == 2
        assert b.logical_at(2) == 1
        assert b.phys_of(1) == 2

    def test_cphase_stamps_logicals(self):
        b = _builder()
        b.swap(0, 1)
        op = b.cphase(0, 1, 0.5)
        assert op.logical == (1, 0)

    def test_two_qubit_on_non_adjacent_raises(self):
        b = _builder()
        with pytest.raises(ValueError):
            b.cphase(0, 3, 0.5)

    def test_adjacency_check_can_be_disabled(self):
        topo = LNNTopology(4)
        b = MappingBuilder(topo, [0, 1, 2, 3], check_adjacency=False)
        b.cphase(0, 3, 0.5)  # no exception

    def test_partial_layout_leaves_empty_positions(self):
        topo = LNNTopology(4)
        b = MappingBuilder(topo, [0, 1], num_logical=2)
        assert b.logical_at(3) is None
        b.swap(1, 2)
        assert b.logical_at(2) == 1
        assert b.logical_at(1) is None

    def test_build_produces_mapped_circuit(self):
        b = _builder()
        b.h(0)
        mc = b.build(metadata={"x": 1})
        assert mc.num_logical == 4
        assert mc.metadata["x"] == 1
        assert len(mc.ops) == 1


class TestAsapScheduling:
    def test_depth_of_disjoint_ops_is_one(self):
        ops = [Op(GateKind.H, (i,), (i,)) for i in range(5)]
        assert asap_depth(ops, lambda op: 1) == 1

    def test_depth_of_chained_ops(self):
        ops = [
            Op(GateKind.CPHASE, (0, 1), (0, 1), 0.1),
            Op(GateKind.CPHASE, (1, 2), (1, 2), 0.1),
            Op(GateKind.CPHASE, (2, 3), (2, 3), 0.1),
        ]
        assert asap_depth(ops, lambda op: 1) == 3

    def test_latency_weighting(self):
        ops = [
            Op(GateKind.SWAP, (0, 1), (0, 1)),
            Op(GateKind.SWAP, (1, 2), (1, 2)),
        ]
        assert asap_depth(ops, lambda op: 6) == 12

    def test_barrier_synchronises(self):
        ops = [
            Op(GateKind.H, (0,), (0,)),
            Op(GateKind.H, (0,), (0,)),
            Op(GateKind.BARRIER, (), ()),
            Op(GateKind.H, (1,), (1,)),
        ]
        assert asap_depth(ops, lambda op: 1) == 3

    def test_layers_partition_ops(self):
        ops = [
            Op(GateKind.H, (0,), (0,)),
            Op(GateKind.H, (1,), (1,)),
            Op(GateKind.CPHASE, (0, 1), (0, 1), 0.1),
        ]
        layers = asap_layers(ops)
        assert len(layers) == 2
        assert len(layers[0]) == 2 and len(layers[1]) == 1

    def test_empty_stream(self):
        assert asap_depth([], lambda op: 1) == 0
        assert asap_layers([]) == []


class TestMappedCircuit:
    def test_counts_and_depths(self):
        b = _builder()
        b.h(0)
        b.cphase(0, 1, 0.5)
        b.swap(1, 2)
        mc = b.build()
        assert mc.swap_count() == 1
        assert mc.cphase_count() == 1
        assert mc.two_qubit_count() == 2
        assert mc.unit_depth() == 3
        assert mc.gate_counts()[GateKind.H] == 1

    def test_final_layout_tracks_swaps(self):
        b = _builder()
        b.swap(0, 1)
        b.swap(1, 2)
        mc = b.build()
        # logical 0 travelled 0 -> 1 -> 2
        assert mc.final_layout()[0] == 2
        assert mc.final_layout()[1] == 0
        assert mc.final_layout()[2] == 1

    def test_logical_events_skip_swaps(self):
        b = _builder()
        b.h(0)
        b.swap(0, 1)
        b.cphase(0, 1, 0.5)
        mc = b.build()
        events = mc.logical_events()
        assert events == [("h", (0,)), ("cphase", (1, 0))]

    def test_logical_gate_events_include_angles(self):
        b = _builder()
        b.cphase(0, 1, 0.25)
        mc = b.build()
        assert mc.logical_gate_events() == [("cphase", (0, 1), 0.25)]

    def test_swaps_by_tag(self):
        b = _builder()
        b.swap(0, 1, tag="ia")
        b.swap(1, 2, tag="ie")
        b.swap(2, 3, tag="ie")
        mc = b.build()
        assert mc.swaps_by_tag() == {"ia": 1, "ie": 2}

    def test_weighted_depth_on_lattice_surgery(self):
        topo = LatticeSurgeryTopology(2)
        b = MappingBuilder(topo, [0, 1, 2, 3])
        b.swap(0, 1)   # horizontal: fast, latency 2
        b.swap(0, 2)   # vertical: slow, latency 6
        b.cphase(2, 3, 0.1)  # latency 2
        mc = b.build()
        # qubit 0: 2 + 6 = 8; qubit 2: swap(6, after t=2) ends at 8, then cphase 2 -> 10
        assert mc.depth() == 10
        assert mc.unit_depth() == 3
