"""Tests for the Sycamore unit-based mapper (Section 5)."""

import pytest

from helpers import assert_valid_qft
from repro.arch import GridTopology, SycamoreTopology
from repro.circuit import GateKind
from repro.core import SycamoreQFTMapper


class TestSycamoreMapper:
    @pytest.mark.parametrize("m", [2, 4, 6])
    def test_produces_verified_qft(self, m):
        topo = SycamoreTopology(m)
        mapped = SycamoreQFTMapper(topo).map_qft()
        assert_valid_qft(mapped, topo.num_qubits)

    @pytest.mark.parametrize("m", [2, 4, 6, 8])
    def test_no_routed_fallback_on_sycamore(self, m):
        mapped = SycamoreQFTMapper(SycamoreTopology(m)).map_qft()
        assert mapped.metadata["final_fallback_swaps"] == 0
        assert mapped.metadata["ie_fallback_swaps"] == 0
        assert mapped.metadata["ia_fallback_swaps"] == 0

    @pytest.mark.parametrize("m", [4, 6, 8, 10])
    def test_depth_is_linear_in_qubit_count(self, m):
        topo = SycamoreTopology(m)
        n = topo.num_qubits
        mapped = SycamoreQFTMapper(topo).map_qft()
        # paper: 7N + O(sqrt N); allow implementation slack but stay linear
        assert mapped.depth() <= 12 * n + 40

    def test_cphase_count_matches_kernel(self):
        topo = SycamoreTopology(6)
        mapped = SycamoreQFTMapper(topo).map_qft()
        n = topo.num_qubits
        assert mapped.cphase_count() == n * (n - 1) // 2

    def test_unit_swaps_are_three_layers_of_transversal_swaps(self):
        topo = SycamoreTopology(4)
        mapped = SycamoreQFTMapper(topo).map_qft()
        unit_swap_count = mapped.swaps_by_tag().get("unit-swap", 0)
        # each unit swap exchanges two 2m-qubit units with 4m SWAPs in 3 layers
        # (the four parallelSWAP groups of Section 5)
        assert unit_swap_count % (4 * topo.m) == 0
        assert mapped.metadata["unit_swaps"] == unit_swap_count // (4 * topo.m)

    def test_strict_ie_variant_is_correct_but_deeper(self):
        topo = SycamoreTopology(4)
        relaxed = SycamoreQFTMapper(topo, strict_ie=False).map_qft()
        strict = SycamoreQFTMapper(topo, strict_ie=True).map_qft()
        assert_valid_qft(strict, topo.num_qubits)
        assert strict.depth() >= 1.5 * relaxed.depth()

    def test_partial_mapping_not_supported(self):
        topo = SycamoreTopology(4)
        with pytest.raises(ValueError):
            SycamoreQFTMapper(topo).map_qft(5)

    def test_requires_sycamore_topology(self):
        with pytest.raises(TypeError):
            SycamoreQFTMapper(GridTopology(4, 4))

    def test_two_qubit_ops_respect_coupling(self):
        topo = SycamoreTopology(4)
        mapped = SycamoreQFTMapper(topo).map_qft()
        for op in mapped.ops:
            if op.is_two_qubit:
                assert topo.has_edge(*op.physical)

    def test_ia_and_ie_phases_both_present(self):
        topo = SycamoreTopology(4)
        mapped = SycamoreQFTMapper(topo).map_qft()
        tags = {op.tag for op in mapped.ops if op.kind == GateKind.CPHASE}
        assert "ia" in tags and "ie" in tags
