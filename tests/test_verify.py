"""Tests for the QFT verifier: it must accept correct circuits and pinpoint
every class of defect (the paper's 'open-source simulator to check correctness')."""

import pytest

from repro.arch import LNNTopology
from repro.circuit import GateKind, MappingBuilder, Op, qft_angle
from repro.core import LNNQFTMapper
from repro.verify import (
    VerificationResult,
    check_mapped_qft_structure,
    verify_mapped_qft,
)


def good_mapped_qft(n=4):
    return LNNQFTMapper(LNNTopology(n)).map_qft()


class TestAcceptsCorrectCircuits:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_structure_ok(self, n):
        rep = check_mapped_qft_structure(good_mapped_qft(n), n)
        assert rep.ok, rep.summary()
        assert rep.h_count == n
        assert rep.cphase_count == n * (n - 1) // 2

    @pytest.mark.parametrize("n", [2, 3, 5, 7])
    def test_unitary_check_runs_for_small_instances(self, n):
        res = verify_mapped_qft(good_mapped_qft(n), n)
        assert res.ok and res.unitary_checked and res.unitary_ok

    def test_unitary_check_skipped_for_large_instances(self):
        res = verify_mapped_qft(good_mapped_qft(12), 12, statevector_limit=8)
        assert res.ok and not res.unitary_checked
        assert "skipped" in res.summary()

    def test_summary_mentions_ok(self):
        rep = check_mapped_qft_structure(good_mapped_qft(3), 3)
        assert "OK" in rep.summary()


def _manual_builder(n=3):
    topo = LNNTopology(n)
    return topo, MappingBuilder(topo, list(range(n)))


class TestDetectsDefects:
    def test_missing_pair(self):
        topo, b = _manual_builder(3)
        b.h(0)
        b.cphase(0, 1, qft_angle(0, 1))
        b.h(1)
        b.cphase(1, 2, qft_angle(1, 2))
        b.h(2)
        # pair (0, 2) missing
        rep = check_mapped_qft_structure(b.build(), 3)
        assert not rep.ok
        assert rep.missing_pairs == 1
        assert any("missing CPHASE" in e for e in rep.errors)

    def test_duplicate_pair(self):
        topo, b = _manual_builder(2)
        b.h(0)
        b.cphase(0, 1, qft_angle(0, 1))
        b.cphase(0, 1, qft_angle(0, 1))
        b.h(1)
        rep = check_mapped_qft_structure(b.build(), 2)
        assert not rep.ok and rep.duplicate_pairs == 1

    def test_missing_hadamard(self):
        topo, b = _manual_builder(2)
        b.h(0)
        b.cphase(0, 1, qft_angle(0, 1))
        rep = check_mapped_qft_structure(b.build(), 2)
        assert not rep.ok
        assert any("missing H" in e for e in rep.errors)

    def test_double_hadamard(self):
        topo, b = _manual_builder(2)
        b.h(0)
        b.cphase(0, 1, qft_angle(0, 1))
        b.h(1)
        b.h(1)
        rep = check_mapped_qft_structure(b.build(), 2)
        assert not rep.ok

    def test_wrong_angle(self):
        topo, b = _manual_builder(2)
        b.h(0)
        b.cphase(0, 1, 0.123)
        b.h(1)
        rep = check_mapped_qft_structure(b.build(), 2)
        assert not rep.ok
        assert any("angle" in e for e in rep.errors)

    def test_type2_violation_cphase_before_h(self):
        topo, b = _manual_builder(2)
        b.cphase(0, 1, qft_angle(0, 1))
        b.h(0)
        b.h(1)
        rep = check_mapped_qft_structure(b.build(), 2)
        assert not rep.ok
        assert any("Type II" in e for e in rep.errors)

    def test_type2_violation_cphase_after_h_of_larger(self):
        topo, b = _manual_builder(2)
        b.h(0)
        b.h(1)
        b.cphase(0, 1, qft_angle(0, 1))
        rep = check_mapped_qft_structure(b.build(), 2)
        assert not rep.ok

    def test_non_adjacent_two_qubit_op(self):
        topo = LNNTopology(3)
        mapped = LNNQFTMapper(topo).map_qft()
        # tamper: replace the first CPHASE with one on non-adjacent qubits
        bad_ops = list(mapped.ops)
        for i, op in enumerate(bad_ops):
            if op.kind == GateKind.CPHASE:
                bad_ops[i] = Op(GateKind.CPHASE, (0, 2), op.logical, op.angle)
                break
        mapped.ops = bad_ops
        rep = check_mapped_qft_structure(mapped, 3)
        assert not rep.ok
        assert any("non-adjacent" in e for e in rep.errors)

    def test_dishonest_logical_stamp(self):
        mapped = good_mapped_qft(3)
        bad_ops = list(mapped.ops)
        for i, op in enumerate(bad_ops):
            if op.kind == GateKind.CPHASE:
                bad_ops[i] = Op(op.kind, op.physical, (op.logical[1], op.logical[0]), op.angle)
                break
        mapped.ops = bad_ops
        rep = check_mapped_qft_structure(mapped, 3)
        assert not rep.ok

    def test_strict_order_check_flags_relaxed_schedules(self):
        # our mappers use relaxed ordering; a strict-order check should
        # eventually flag some circuit produced from the relaxed rules
        mapped = LNNQFTMapper(LNNTopology(6)).map_qft()
        relaxed = check_mapped_qft_structure(mapped, 6, strict_order=False)
        assert relaxed.ok
        # (the LNN cascade actually follows textbook order per qubit, so use a
        # hand-built counterexample for the strict check)
        topo, b = _manual_builder(3)
        b.h(0)
        b.cphase(0, 1, qft_angle(0, 1))
        b.swap(1, 2)
        b.cphase(0, 1, qft_angle(0, 2))   # physically adjacent: logical (0, 2)
        b.swap(1, 2)
        b.h(1)
        b.cphase(1, 2, qft_angle(1, 2))
        b.h(2)
        ok_relaxed = check_mapped_qft_structure(b.build(), 3, strict_order=False)
        assert ok_relaxed.ok

    def test_verification_result_ok_property(self):
        res = verify_mapped_qft(good_mapped_qft(3), 3)
        assert isinstance(res, VerificationResult)
        assert res.ok == (res.structure.ok and res.unitary_ok)
